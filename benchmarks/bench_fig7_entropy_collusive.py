"""Figure 7: secure routing under a collusive setting.

Coalition entropy vs. fraction of colluding routing nodes.  Paper shape:
entropy decreases as more nodes collude, collapsing to S_act when all
collude; at realistic collusion (10-20%) the apparent entropy stays well
above S_act.
"""

from repro.harness.reporting import format_table
from repro.routing.experiment import RoutingExperimentConfig, sweep_collusion

CONFIG = RoutingExperimentConfig(events=8000)
FRACTIONS = [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0]


def test_fig7_entropy_collusive(benchmark, report):
    rows = benchmark.pedantic(
        lambda: sweep_collusion(CONFIG, fractions=FRACTIONS, ind_max=5),
        rounds=1,
        iterations=1,
    )
    report(
        "fig7_entropy_collusive",
        format_table(
            ["colluding fraction", "S_app", "S_act", "S_max"],
            [
                (fraction, entropy, result.s_act, result.s_max)
                for fraction, entropy, result in rows
            ],
            title="Figure 7: Collusive Apparent Entropy (ind_max = 5, bits)",
        ),
    )
    baseline = rows[0][1]
    full_collusion = rows[-1][1]
    s_act = rows[-1][2].s_act
    # Full collusion recovers the actual distribution.
    assert abs(full_collusion - s_act) < 0.15
    # Collusion strictly hurts relative to the non-collusive view.
    assert full_collusion < baseline
    # Overall decreasing trend across the sweep.
    first_half = sum(entropy for _, entropy, _ in rows[:3]) / 3
    second_half = sum(entropy for _, entropy, _ in rows[-3:]) / 3
    assert second_half < first_half
