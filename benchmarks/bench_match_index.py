"""Microbenchmark: counting-algorithm index vs. linear-scan matching.

Justifies the sublinear matching model the Fig 9-11 simulation uses
(Siena's own matching is index-based): per-event match cost with the
index stays near-flat as the table grows, while the naive scan grows
linearly.
"""

import random
import time

from repro.harness.reporting import format_table
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.index import MatchIndex

TABLE_SIZES = (32, 128, 512, 2048)
PROBES = 400


def _workload(size: int, seed: int = 3):
    """Tables grow the way real ones do: with topic diversity.

    Each topic keeps a bounded handful of filters, so the counting
    index's output-sensitive cost stays flat while the scan pays for the
    whole table.
    """
    rng = random.Random(seed)
    topics = max(8, size // 8)
    filters = []
    for index in range(size):
        topic = f"topic-{index % topics}"
        low = rng.randint(0, 200)
        filters.append(
            Filter.numeric_range(topic, "v", low, low + rng.randint(1, 50))
        )
    events = [
        Event({"topic": f"topic-{rng.randrange(topics)}",
               "v": rng.randint(0, 255)})
        for _ in range(PROBES)
    ]
    return filters, events


def _time_scan(filters, events) -> float:
    start = time.perf_counter()
    hits = 0
    for event in events:
        for subscription in filters:
            if subscription.matches(event):
                hits += 1
    elapsed = time.perf_counter() - start
    return elapsed / len(events)


def _time_index(filters, events) -> float:
    index = MatchIndex()
    for subscription in filters:
        index.add(subscription)
    start = time.perf_counter()
    for event in events:
        index.matching(event)
    return (time.perf_counter() - start) / len(events)


def test_match_index_scaling(benchmark, report):
    def run():
        rows = []
        for size in TABLE_SIZES:
            filters, events = _workload(size)
            rows.append(
                (size, _time_scan(filters, events) * 1e6,
                 _time_index(filters, events) * 1e6)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "match_index",
        format_table(
            ["filters", "linear scan (us/event)", "index (us/event)"],
            rows,
            title="Match-index scaling",
        ),
    )
    scan_growth = rows[-1][1] / rows[0][1]
    index_growth = rows[-1][2] / rows[0][2]
    # The scan grows roughly with the table; the index grows far slower.
    assert scan_growth > 8
    assert index_growth < scan_growth / 3
    # At the largest table the index wins outright.
    assert rows[-1][2] < rows[-1][1]


def test_index_correctness_at_scale(benchmark):
    filters, events = _workload(512)
    index = MatchIndex()
    for subscription in filters:
        index.add(subscription)

    def verify():
        mismatches = 0
        for event in events[:100]:
            expected = {
                repr(f) for f in filters if f.matches(event)
            }
            actual = {repr(f) for f in index.matching(event)}
            if expected != actual:
                mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert mismatches == 0
