"""Microbenchmarks of the crypto substrate.

The per-operation costs here drive every time-based experiment (they are
the measured constants of Tables 1-2 and the simulator's service-time
model), so they are benchmarked directly.  The pure-Python AES is also
timed against the optional C backend to document the gap the automatic
backend selection papers over.
"""

import os

from repro.crypto.aes import AES
from repro.crypto.cipher import backend_name, decrypt, encrypt
from repro.crypto.hashes import H
from repro.crypto.modes import cbc_encrypt
from repro.crypto.prf import F, KH

KEY = bytes(range(16))
PAYLOAD = os.urandom(256)


def test_hash_step(benchmark):
    """One child-key derivation step: H(key || branch)."""
    benchmark(lambda: H(KEY + b"\x01"))


def test_keyed_hash(benchmark):
    """One KH (HMAC) invocation: topic keys, tree roots, grants."""
    benchmark(lambda: KH(KEY, b"age"))


def test_tokenization_prf(benchmark):
    """One F invocation: token issue / broker-side token check."""
    nonce = os.urandom(16)
    benchmark(lambda: F(KEY, nonce))


def test_event_encrypt_default_backend(benchmark):
    """AES-128-CBC of a 256-byte payload (active backend)."""
    benchmark(lambda: encrypt(KEY, PAYLOAD))


def test_event_decrypt_default_backend(benchmark):
    ciphertext = encrypt(KEY, PAYLOAD)
    benchmark(lambda: decrypt(KEY, ciphertext))


def test_pure_python_block(benchmark):
    """One pure-Python AES block (the no-dependency fallback)."""
    cipher = AES(KEY)
    block = PAYLOAD[:16]
    benchmark(lambda: cipher.encrypt_block(block))


def test_pure_python_event_encrypt(benchmark, report):
    """Pure-Python CBC of a 256-byte payload, with a backend comparison."""
    import time

    result = benchmark.pedantic(
        lambda: cbc_encrypt(KEY, PAYLOAD), rounds=50, iterations=1
    )
    assert result  # ciphertext produced

    iterations = 50
    start = time.perf_counter()
    for _ in range(iterations):
        cbc_encrypt(KEY, PAYLOAD)
    pure_s = (time.perf_counter() - start) / iterations
    start = time.perf_counter()
    for _ in range(iterations):
        encrypt(KEY, PAYLOAD)
    active_s = (time.perf_counter() - start) / iterations
    from repro.harness.reporting import format_table

    report(
        "crypto_primitives",
        format_table(
            ["implementation", "256B encrypt (us)"],
            [
                ("pure python", pure_s * 1e6),
                (f"active backend ({backend_name()})", active_s * 1e6),
            ],
            title="AES-128-CBC backends",
        ),
    )
    if backend_name() == "cryptography":
        assert active_s < pure_s
