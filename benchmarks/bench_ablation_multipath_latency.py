"""Ablation: multi-path routing's latency neutrality (Section 7 claim).

"The multi-path event routing algorithm, though incurring higher
construction cost, adds no additional messaging cost or latency."
Every independent path of Theorem 4.2 has exactly the tree's hop count,
and each event travels exactly one path, so per-event latency and message
count are invariant in ``ind_max`` -- measured here over a transit-stub
embedding.
"""

from repro.harness.reporting import format_table
from repro.routing.latency import compare_latency_across_ind
from repro.workloads.zipf import zipf_weights

IND_VALUES = (1, 2, 3, 4, 5)


def test_ablation_multipath_latency(benchmark, report):
    frequencies = dict(
        zip((f"t{i}" for i in range(64)), zipf_weights(64))
    )
    results = benchmark.pedantic(
        lambda: compare_latency_across_ind(
            frequencies, ind_values=IND_VALUES, events=2500
        ),
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_multipath_latency",
        format_table(
            ["ind_max", "mean latency (ms)", "min (ms)", "max (ms)"],
            [
                (ind, stats.mean * 1e3, stats.minimum * 1e3,
                 stats.maximum * 1e3)
                for ind, stats in sorted(results.items())
            ],
            title="Ablation: per-event latency vs ind_max (one embedding)",
        ),
    )
    baseline = results[1].mean
    for ind, stats in results.items():
        # Latency is invariant in ind (different but equal-length paths).
        assert abs(stats.mean - baseline) / baseline < 0.15, (
            ind, stats.mean, baseline,
        )
