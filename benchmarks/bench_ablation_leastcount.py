"""Ablation: the least-count expressiveness/cost trade-off (Section 3.1).

``lc(num)`` is the smallest subscribable interval.  Coarsening it shrinks
the key tree (fewer keys, shorter derivations) but quantizes what
subscribers can express: a requested range is snapped outward to lc
boundaries, over-granting up to ``2 (lc - 1)`` values.
"""

import random

from repro.core.nakt import NumericKeySpace
from repro.harness.reporting import format_table

RANGE = 4096
SPAN = 250


def _stats(least_count: int, samples: int = 300):
    rng = random.Random(least_count)
    space = NumericKeySpace("v", RANGE, least_count=least_count)
    total_keys = 0
    total_overgrant = 0
    for _ in range(samples):
        low = rng.randint(0, RANGE - SPAN)
        high = low + SPAN - 1
        cover = space.cover(low, high)
        total_keys += len(cover)
        granted_low = min(space.node_range(k)[0] for k in cover)
        granted_high = max(space.node_range(k)[1] for k in cover)
        total_overgrant += (low - granted_low) + (granted_high - high)
    return (
        space.depth,
        total_keys / samples,
        total_overgrant / samples,
    )


def test_ablation_least_count(benchmark, report):
    least_counts = [1, 2, 4, 8, 16, 32]
    rows = benchmark.pedantic(
        lambda: [(lc, *_stats(lc)) for lc in least_counts],
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_leastcount",
        format_table(
            ["lc", "tree depth", "avg keys", "avg over-granted values"],
            rows,
            title=f"Ablation: least count (R={RANGE}, phi={SPAN})",
        ),
    )
    depths = [depth for _, depth, _, _ in rows]
    keys = [avg_keys for _, _, avg_keys, _ in rows]
    overgrants = [over for _, _, _, over in rows]
    # Coarser lc: shallower trees, fewer keys...
    assert depths == sorted(depths, reverse=True)
    assert keys[-1] < keys[0]
    # ...but strictly worse expressiveness.
    assert overgrants[0] == 0.0
    assert overgrants[-1] > overgrants[0]
    # Over-grant is bounded by 2 (lc - 1).
    for (lc, _, _, over) in rows:
        assert over <= 2 * (lc - 1)
