"""Table 4: subscriber-side costs, PSGuard vs. SubscriberGroup.

Analytic inventory plus measured event-processing costs from the real
pipeline: PSGuard pays ``D + H log2(phi)`` per event, the group approach a
bare ``D`` -- but PSGuard's storage and join traffic are NS-independent.
"""

import time

from repro.analysis.models import subscriber_cost_table
from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.core.publisher import Publisher
from repro.core.subscriber import Subscriber
from repro.harness.reporting import format_table
from repro.harness.timing import measure_crypto_costs
from repro.siena.events import Event
from repro.siena.filters import Filter

NS, RANGE, SPAN = 1000, 10**4, 100


def test_table4_subscriber_costs(benchmark, report):
    costs = measure_crypto_costs()
    table = benchmark.pedantic(
        lambda: subscriber_cost_table(
            NS, RANGE, SPAN,
            hash_cost=costs.hash_s * 1e6,
            decrypt_cost=costs.decrypt_256_s * 1e6,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            approach,
            entry["join_keys_new_subscriber"],
            entry["join_keys_active_subscribers"],
            entry["storage_keys"],
            entry["event_processing"],
        )
        for approach, entry in table.items()
    ]
    report(
        "table4_subscriber_costs",
        format_table(
            ["approach", "join keys (new)", "join keys (active)",
             "storage (keys)", "event processing (us)"],
            rows,
            title=f"Table 4: Subscriber Costs (NS={NS}, R={RANGE}, phi={SPAN})",
        ),
    )
    psguard = table["psguard"]
    group = table["subscriber_group"]
    assert psguard["join_keys_active_subscribers"] == 0.0
    assert group["join_keys_active_subscribers"] > 0
    assert psguard["storage_keys"] < group["storage_keys"]
    assert psguard["event_processing"] > group["event_processing"]


def test_table4_measured_event_processing(benchmark):
    """Measured decryption path: D + H*log(phi), a few us per event."""
    kdc = KDC(master_key=bytes(16))
    kdc.register_topic(
        "t", CompositeKeySpace({"v": NumericKeySpace("v", RANGE)})
    )
    publisher = Publisher("P", kdc)
    subscriber = Subscriber("S", cache_bytes=0)  # no caching: worst case
    subscriber.add_grant(
        kdc.authorize("S", Filter.numeric_range("t", "v", 0, RANGE - 1))
    )
    sealed = publisher.publish(
        Event({"topic": "t", "v": 5000, "message": "x" * 256})
    )
    lookup = lambda name: kdc.config_for(name).schema  # noqa: E731

    def receive_once():
        result = subscriber.receive(sealed, lookup)
        assert result is not None
        return result

    benchmark(receive_once)
    # Per-event processing must be far below the WAN latencies (~70ms)
    # the paper compares it against.
    start = time.perf_counter()
    for _ in range(50):
        receive_once()
    per_event = (time.perf_counter() - start) / 50
    assert per_event < 0.005
