"""Ablation: the M/M/N analytic model vs. a live churn simulation.

Section 3.2.2's quantitative comparison rests on an M/M/N subscriber
population.  This bench runs that population as a discrete-event
simulation against the *real* KDC and group server and checks that

- the active population and join rate land on the closed forms, and
- the measured key-messaging ratio lands in the regime the analysis
  predicts (within a small factor -- the analysis is a lower bound).
"""

import math

from repro.analysis.churn import ChurnSimulation, relative_error
from repro.analysis.models import MMNPopulation, cost_ratio_lower_bound
from repro.harness.reporting import format_table

RANGE, SPAN = 1024, 64
DURATION = 600.0


def _run():
    population = MMNPopulation(
        total_subscribers=120, arrival_rate=0.05, departure_rate=0.05
    )
    simulation = ChurnSimulation(
        population, range_size=RANGE, subscription_span=SPAN,
        epoch_length=50.0, seed=31,
    )
    result = simulation.run(DURATION)
    warm = result.active_samples[len(result.active_samples) // 3:]
    measured_active = sum(warm) / len(warm)
    group_total = result.group_keys_sent + result.group_epoch_messages
    measured_ratio = group_total / result.psguard_keys_sent
    predicted_ratio = cost_ratio_lower_bound(
        population.active_subscribers, RANGE, SPAN
    )
    return population, result, measured_active, measured_ratio, predicted_ratio


def test_ablation_churn(benchmark, report):
    (population, result, measured_active,
     measured_ratio, predicted_ratio) = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    report(
        "ablation_churn",
        format_table(
            ["quantity", "measured", "analytic"],
            [
                ("active subscribers NS", measured_active,
                 population.active_subscribers),
                ("join rate (/s)", result.join_rate, population.join_rate),
                ("PSGuard keys/join",
                 result.psguard_keys_sent / result.joins,
                 math.log2(SPAN)),
                ("C_sg : C_psguard", measured_ratio, predicted_ratio),
            ],
            title=f"Ablation: M/M/N churn, {DURATION:.0f}s simulated",
        ),
    )
    assert relative_error(measured_active, population.active_subscribers) < 0.25
    assert relative_error(result.join_rate, population.join_rate) < 0.25
    # The analysis is a lower bound on the group approach's cost; the
    # measured ratio must respect it within stochastic slack and not be
    # wildly above (same order of magnitude).
    assert measured_ratio > 0.5 * predicted_ratio
    assert measured_ratio < 20 * predicted_ratio
