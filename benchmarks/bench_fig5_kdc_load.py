"""Figure 5: KDC compute (ms) and network (KB) load per join vs. NS.

Paper shape: SubscriberGroup costs explode with NS; PSGuard costs are a
small constant independent of NS.
"""

from repro.harness.keymgmt import run_key_management
from repro.harness.reporting import format_table

SUBSCRIBER_COUNTS = [2, 4, 8, 16, 32]


def test_fig5_kdc_load(benchmark, report):
    rows = benchmark.pedantic(
        lambda: run_key_management(SUBSCRIBER_COUNTS),
        rounds=1,
        iterations=1,
    )
    report(
        "fig5_kdc_load",
        format_table(
            ["NS", "PSG compute (ms)", "SG compute (ms)",
             "PSG network (KB)", "SG network (KB)"],
            [
                (
                    row.num_subscribers,
                    row.psguard_kdc_compute_ms,
                    row.group_kdc_compute_ms,
                    row.psguard_kdc_network_kb,
                    row.group_kdc_network_kb,
                )
                for row in rows
            ],
            title="Figure 5: KDC Load (per subscriber join)",
        ),
    )
    psguard_compute = [row.psguard_kdc_compute_ms for row in rows]
    group_compute = [row.group_kdc_compute_ms for row in rows]
    psguard_network = [row.psguard_kdc_network_kb for row in rows]
    group_network = [row.group_kdc_network_kb for row in rows]
    assert max(psguard_compute) <= 2.0 * min(psguard_compute)
    assert max(psguard_network) <= 1.6 * min(psguard_network)
    assert group_compute[-1] > 2.0 * group_compute[0]
    assert group_network[-1] > 2.0 * group_network[0]
    assert group_compute[-1] > psguard_compute[-1]
    assert group_network[-1] > psguard_network[-1]
