"""Ablation: NAKT arity sweep (the binary-optimality claim of Section 3.1).

The paper proves any subscription range splits into at most
``2(a-1) log_a(R/lc) - 2`` elements, minimized at ``a = 2``.  This bench
measures the realized worst-case and average cover sizes for a in 2..8
and confirms binary trees minimize the key count, while also exposing
the trade-off the formula hides: larger arity shortens derivation paths.
"""

import random

from repro.core.nakt import NumericKeySpace
from repro.harness.reporting import format_table

RANGE = 4096
SPAN = 256


def _stats_for_arity(arity: int, samples: int = 400):
    rng = random.Random(arity)
    space = NumericKeySpace("v", RANGE, arity=arity)
    worst = len(space.cover(1, RANGE - 2))
    total = 0
    for _ in range(samples):
        low = rng.randint(0, RANGE - SPAN)
        total += len(space.cover(low, low + SPAN - 1))
    return worst, total / samples, space.depth


def test_ablation_arity(benchmark, report):
    rows = benchmark.pedantic(
        lambda: [
            (arity, *_stats_for_arity(arity)) for arity in range(2, 9)
        ],
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_arity",
        format_table(
            ["arity", "worst-case keys", "avg keys", "derive depth"],
            rows,
            title=f"Ablation: NAKT arity (R={RANGE}, phi={SPAN})",
        ),
    )
    worst_by_arity = {arity: worst for arity, worst, _avg, _d in rows}
    average_by_arity = {arity: avg for arity, _w, avg, _d in rows}
    depth_by_arity = {arity: depth for arity, _w, _a, depth in rows}
    # Binary minimizes the key count (paper's claim)...
    assert worst_by_arity[2] == min(worst_by_arity.values())
    assert average_by_arity[2] == min(average_by_arity.values())
    # ...at the cost of the deepest derivation chains.
    assert depth_by_arity[2] == max(depth_by_arity.values())
    # Average cover size grows with arity (the realized worst case can
    # wiggle with rounding of the tree depth, but the trend holds).
    averages = [average_by_arity[a] for a in range(2, 9)]
    assert all(b >= a for a, b in zip(averages, averages[1:]))
    assert worst_by_arity[8] > worst_by_arity[2]
