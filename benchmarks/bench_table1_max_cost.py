"""Table 1: worst-case NAKT costs vs. range size (lc = 1).

Paper row (550 MHz PIII): R=10^2 -> 12 keys, 23.66us gen, 6.37us derive;
R=10^3 -> 18 / 34.58 / 9.10; R=10^4 -> 26 / 49.14 / 12.74.  Key counts
must match exactly; microseconds scale with local hash speed.
"""

import math

from repro.analysis.costs import NAKTCostModel, measure_hash_microseconds
from repro.core.ktid import KTID
from repro.core.nakt import NumericKeySpace
from repro.harness.reporting import format_table

RANGES = [10**2, 10**3, 10**4]
PAPER_KEYS = {10**2: 12, 10**3: 18, 10**4: 26}


def _rows():
    hash_us = measure_hash_microseconds()
    rows = []
    for range_size in RANGES:
        model = NAKTCostModel(range_size, hash_microseconds=hash_us)
        rows.append(
            (
                range_size,
                math.ceil(model.max_keys()),
                PAPER_KEYS[range_size],
                model.max_keygen_microseconds(),
                model.max_derive_microseconds(),
            )
        )
    return rows


def test_table1_max_cost(benchmark, report):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    report(
        "table1_max_cost",
        format_table(
            ["R", "# Keys", "paper # Keys", "Key Gen (us)", "Key Derive (us)"],
            rows,
            title="Table 1: Max Cost (lc = 1, local hardware)",
        ),
    )
    for range_size, keys, paper_keys, gen_us, derive_us in rows:
        assert keys == paper_keys
        assert gen_us > derive_us > 0


def test_table1_worst_case_matches_real_tree(benchmark):
    """The formula's worst case is realized by an actual subscription."""

    def worst_case_cover():
        space = NumericKeySpace("v", 1024)
        sampled = max(
            len(space.cover(low, high))
            for low in range(0, 1024, 17)
            for high in range(low, 1024, 31)
        )
        # The analytic worst case is the almost-full range (1, R-2),
        # which misaligns at every level on both flanks.
        return max(sampled, len(space.cover(1, 1022)))

    worst = benchmark.pedantic(worst_case_cover, rounds=1, iterations=1)
    model = NAKTCostModel(1024)
    assert worst == model.max_keys()


def test_benchmark_key_derivation_throughput(benchmark):
    """Microbenchmark: one full-depth key derivation (Table 1's unit)."""
    space = NumericKeySpace("v", 10**4)
    topic_key = bytes(range(16))
    root = (KTID.root(), space.node_key(topic_key, KTID.root()))
    leaf = space.ktid(9_999)
    benchmark(lambda: NumericKeySpace.derive_encryption_key(root, leaf))
