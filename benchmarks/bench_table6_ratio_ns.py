"""Table 6: lower bound on C_sg : C_psguard vs. subscriber population.

Paper (phi = 100, R = 10^4): NS=10 -> 0.09; 10^2 -> 0.90; 10^3 -> 9.04;
10^4 -> 90.36.  The group approach wins only for tiny populations; the
experimental section tightens the break-even to NS <= 8 under realistic
heavy-tailed interest, which the second bench reproduces.
"""

import pytest

from repro.analysis.models import (
    cost_ratio_lower_bound,
    heavy_tail_overlap_multiplier,
)
from repro.harness.reporting import format_table

SPAN, RANGE = 100, 10**4
PAPER = {10: 0.09, 10**2: 0.90, 10**3: 9.04, 10**4: 90.36}


def test_table6_ratio_vs_ns(benchmark, report):
    rows = benchmark.pedantic(
        lambda: [
            (ns, cost_ratio_lower_bound(ns, RANGE, SPAN), PAPER[ns])
            for ns in PAPER
        ],
        rounds=1,
        iterations=1,
    )
    report(
        "table6_ratio_ns",
        format_table(
            ["NS", "C_sg : C_psguard", "paper"],
            rows,
            title=f"Table 6: Cost-Ratio Lower Bound (phi={SPAN}, R={RANGE})",
        ),
    )
    for ns, ratio, paper_value in rows:
        assert ratio == pytest.approx(paper_value, rel=0.01)


def test_table6_heavy_tail_moves_breakeven(benchmark, report):
    """Under heavy-tailed interest the group approach loses by NS ~ 8.

    The uniform-interest bound breaks even near NS ~ 110; a concentrated
    interest density inflates overlap (Section 3.2.2's sum-f^2 argument),
    pulling the break-even to single digits as the evaluation observed.
    """

    def breakeven(multiplier: float) -> int:
        ns = 1
        while multiplier * cost_ratio_lower_bound(ns, RANGE, SPAN) < 1.0:
            ns += 1
        return ns

    def compute():
        # Zipf-concentrated interest over range positions.
        density = [1.0 / (1 + position // SPAN) for position in range(RANGE)]
        multiplier = heavy_tail_overlap_multiplier(density, SPAN)
        return multiplier, breakeven(1.0), breakeven(multiplier)

    multiplier, uniform_breakeven, heavy_breakeven = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    report(
        "table6_breakeven",
        format_table(
            ["interest model", "overlap multiplier", "break-even NS"],
            [
                ("uniform (Table 6)", 1.0, uniform_breakeven),
                ("heavy-tailed (Sec 5.2.1)", multiplier, heavy_breakeven),
            ],
            title="Break-even population for the group approach",
        ),
    )
    assert multiplier > 1.0
    assert heavy_breakeven < uniform_breakeven
    assert heavy_breakeven <= 20
