"""Table 2: average NAKT costs vs. subscription span (R = 10^4, lc = 1).

Paper row: phi=10 -> 3.32 keys, 14.20us gen, 3.02us derive; phi=10^2 ->
6.64 / 17.22 / 6.04; phi=10^3 -> 9.97 / 20.25 / 9.07.
"""

import random

from repro.analysis.costs import NAKTCostModel, measure_hash_microseconds
from repro.core.nakt import NumericKeySpace
from repro.harness.reporting import format_table

RANGE = 10**4
SPANS = [10, 10**2, 10**3]
PAPER_KEYS = {10: 3.32, 10**2: 6.64, 10**3: 9.97}


def _analytic_rows():
    hash_us = measure_hash_microseconds()
    model = NAKTCostModel(RANGE, hash_microseconds=hash_us)
    return [
        (
            span,
            model.avg_keys(span),
            PAPER_KEYS[span],
            model.avg_keygen_microseconds(span),
            model.avg_derive_microseconds(span),
        )
        for span in SPANS
    ]


def _measured_average_cover(span: int, samples: int = 400) -> float:
    rng = random.Random(13)
    space = NumericKeySpace("v", RANGE)
    total = 0
    for _ in range(samples):
        low = rng.randint(0, RANGE - span)
        total += len(space.cover(low, low + span - 1))
    return total / samples


def test_table2_avg_cost(benchmark, report):
    rows = benchmark.pedantic(_analytic_rows, rounds=1, iterations=1)
    report(
        "table2_avg_cost",
        format_table(
            ["phi_R", "# Keys", "paper # Keys", "Key Gen (us)",
             "Key Derive (us)"],
            rows,
            title="Table 2: Avg Cost (R = 10^4, local hardware)",
        ),
    )
    for span, keys, paper_keys, gen_us, derive_us in rows:
        assert abs(keys - paper_keys) < 0.02
        assert gen_us > 0 and derive_us > 0


def test_table2_formula_matches_simulation(benchmark):
    """The log2(phi) average is realized by actual random subscriptions."""
    measured = benchmark.pedantic(
        lambda: {span: _measured_average_cover(span) for span in SPANS},
        rounds=1,
        iterations=1,
    )
    model = NAKTCostModel(RANGE)
    for span in SPANS:
        assert abs(measured[span] - model.avg_keys(span)) < 2.0
