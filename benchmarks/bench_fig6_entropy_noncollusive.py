"""Figure 6: secure routing under a non-collusive setting.

Apparent entropy S_app vs. maximum independent paths, against S_act and
S_max.  Paper shape: S_app >= S_act even at ind = 1, rises with ind, and
lands within ~10% of S_max at ind_max = 5.
"""

from repro.harness.reporting import format_table
from repro.routing.experiment import RoutingExperimentConfig, sweep_ind_max

CONFIG = RoutingExperimentConfig(events=8000)


def test_fig6_entropy_noncollusive(benchmark, report):
    results = benchmark.pedantic(
        lambda: sweep_ind_max(CONFIG, ind_values=[1, 2, 3, 4, 5]),
        rounds=1,
        iterations=1,
    )
    report(
        "fig6_entropy_noncollusive",
        format_table(
            ["max ind paths", "S_app", "S_act", "S_max"],
            [
                (r.ind_max, r.s_app, r.s_act, r.s_max)
                for r in results
            ],
            title="Figure 6: Non-Collusive Apparent Entropy (bits)",
        ),
    )
    entropies = [r.s_app for r in results]
    s_act, s_max = results[0].s_act, results[0].s_max
    # Monotone increase with ind.
    assert entropies == sorted(entropies)
    # S_act <= S_app <= S_max throughout (small sampling slack).
    assert all(s_act - 0.1 <= e <= s_max for e in entropies)
    # Paper: within ~10% of S_max at ind_max = 5.
    assert entropies[-1] >= 0.85 * s_max
