"""Figure 8: multi-path network construction cost vs. ind_max.

Normalized to ind_max = 1.  Paper shape: cost at ind_max = 5 is ~3x the
single-path network, and the curve saturates because only frequent
tokens earn many paths (at ind_max = 10, only the ~12 most popular of
128 tokens use all ten paths; ~48 use fewer than two).
"""

from repro.harness.reporting import format_table
from repro.routing.experiment import (
    RoutingExperimentConfig,
    construction_cost_curve,
)
from repro.routing.multipath import ProbabilisticRouter
from repro.topology.multipath import MultipathNetwork
from repro.workloads.zipf import zipf_weights

CONFIG = RoutingExperimentConfig()


def test_fig8_construction_cost(benchmark, report):
    curve = benchmark.pedantic(
        lambda: construction_cost_curve(CONFIG, ind_values=list(range(1, 11))),
        rounds=1,
        iterations=1,
    )
    report(
        "fig8_construction_cost",
        format_table(
            ["ind_max", "normalized construction cost"],
            curve,
            title="Figure 8: Multi-Path Construction Cost (vs ind_max = 1)",
        ),
    )
    values = dict(curve)
    assert values[1] == 1.0
    # ~3x at ind_max = 5 (paper), with generous tolerance.
    assert 1.8 <= values[5] <= 4.0
    # Saturating: the 6..10 increments are smaller than the 1..5 ones.
    early_growth = values[5] - values[1]
    late_growth = values[10] - values[5]
    assert late_growth < early_growth


def test_fig8_path_usage_histogram(benchmark, report):
    """The paper's token-level explanation of the saturation."""

    def histogram():
        tokens = [f"t{i}" for i in range(128)]
        frequencies = dict(zip(tokens, zipf_weights(128)))
        network = MultipathNetwork(depth=2, arity=10, ind=10)
        router = ProbabilisticRouter(network, frequencies, ind_max=10)
        return router.path_usage_histogram()

    usage = benchmark.pedantic(histogram, rounds=1, iterations=1)
    report(
        "fig8_path_usage",
        format_table(
            ["independent paths", "tokens using it"],
            sorted(usage.items()),
            title="Figure 8 (inset): path usage at ind_max = 10",
        ),
    )
    # Paper: ~12 of 128 tokens use all 10 paths; ~48 use fewer than two.
    assert 6 <= usage.get(10, 0) <= 25
    assert usage.get(1, 0) >= 30
