"""Figure 9: maximum throughput vs. number of routing nodes.

Paper shape: throughput rises with the node count (in-network matching
spreads the fan-out work); PSGuard's topic/numeric/string modes sit
within a few percent of plain Siena, category ~11% below.
"""

from benchmarks.conftest import ENDTOEND_MODES, ENDTOEND_NODES
from repro.harness.reporting import format_table


def test_fig9_throughput(benchmark, endtoend_sweep, report):
    results = benchmark.pedantic(
        lambda: endtoend_sweep, rounds=1, iterations=1
    )
    rows = []
    for nodes in ENDTOEND_NODES:
        rows.append(
            (nodes, *(
                results[(mode, nodes)].throughput_events_per_s
                for mode in ENDTOEND_MODES
            ))
        )
    report(
        "fig9_throughput",
        format_table(
            ["nodes", *ENDTOEND_MODES],
            rows,
            title="Figure 9: Max Throughput (events/s)",
        ),
    )

    siena = [results[("siena", n)].throughput_events_per_s
             for n in ENDTOEND_NODES]
    # Throughput rises as routing nodes take over the fan-out.
    assert siena[-1] > 1.5 * siena[0]
    for nodes in ENDTOEND_NODES[1:]:
        base = results[("siena", nodes)].throughput_events_per_s
        for mode, ceiling in (
            ("topic", 0.10), ("numeric", 0.12), ("string", 0.12),
            ("category", 0.20),
        ):
            drop = 1 - results[(mode, nodes)].throughput_events_per_s / base
            assert -0.05 <= drop <= ceiling, (mode, nodes, drop)
    # Category is the costliest attribute type (paper: ~11% drop).
    category_drop = 1 - (
        results[("category", 30)].throughput_events_per_s
        / results[("siena", 30)].throughput_events_per_s
    )
    topic_drop = 1 - (
        results[("topic", 30)].throughput_events_per_s
        / results[("siena", 30)].throughput_events_per_s
    )
    assert category_drop > topic_drop
