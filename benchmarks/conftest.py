"""Shared infrastructure for the table/figure regeneration benches.

Every bench regenerates one table or figure of the paper's evaluation
(Section 5.2 plus the analytical tables) and both prints the series and
persists it under ``benchmarks/results/``, so ``pytest benchmarks/
--benchmark-only`` leaves the regenerated numbers on disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: (modes, node counts, events per run) for the Fig 9-10 sweep; reduced
#: events keep the bench suite in minutes while preserving the shapes.
ENDTOEND_MODES = ("siena", "topic", "numeric", "category", "string")
ENDTOEND_NODES = (0, 2, 6, 14, 30)
ENDTOEND_EVENTS = 300


@pytest.fixture(scope="session")
def endtoend_sweep():
    """The Fig 9/10 sweep, computed once per bench session."""
    from repro.harness.endtoend import max_throughput, sample_pipeline_costs

    results = {}
    for mode in ENDTOEND_MODES:
        pipeline = sample_pipeline_costs(mode)
        for nodes in ENDTOEND_NODES:
            results[(mode, nodes)] = max_throughput(
                mode, nodes, pipeline=pipeline, events=ENDTOEND_EVENTS
            )
    return results


@pytest.fixture
def report():
    """Print a rendered table and persist it to benchmarks/results/."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _report
