"""Figure 4: keys per publisher vs. NS.

A PSGuard publisher holds one topic key per topic it publishes on
(constant in NS); a group-based publisher must hold every group key of
its topics, since events are encrypted under the recipient group's key.
"""

from repro.harness.keymgmt import run_key_management
from repro.harness.reporting import format_table

SUBSCRIBER_COUNTS = [2, 4, 8, 16, 32]


def test_fig4_keys_per_publisher(benchmark, report):
    rows = benchmark.pedantic(
        lambda: run_key_management(SUBSCRIBER_COUNTS),
        rounds=1,
        iterations=1,
    )
    report(
        "fig4_keys_per_publisher",
        format_table(
            ["NS", "PSGuard", "SubscriberGroup", "SG / PSG"],
            [
                (
                    row.num_subscribers,
                    row.psguard_keys_per_publisher,
                    row.group_keys_per_publisher,
                    row.group_keys_per_publisher
                    / row.psguard_keys_per_publisher,
                )
                for row in rows
            ],
            title="Figure 4: Num Keys per Publisher",
        ),
    )
    psguard = [row.psguard_keys_per_publisher for row in rows]
    group = [row.group_keys_per_publisher for row in rows]
    assert len(set(psguard)) == 1  # exactly one key per topic, any NS
    assert group == sorted(group)
    assert group[-1] > 5 * psguard[-1]
