"""Table 5: lower bound on C_sg : C_psguard vs. subscription span.

Paper (NS = 10^3, R = 10^4): phi=10 -> 1.81; 10^2 -> 9.04; 10^3 -> 60.18;
10^4 -> 451.81.  Exact reproduction (closed form), plus a simulated
confirmation of the trend from the real key servers.
"""

import pytest

from repro.analysis.models import cost_ratio_lower_bound
from repro.baseline.groups import GroupKeyServer
from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.harness.reporting import format_table
from repro.siena.filters import Filter

NS, RANGE = 10**3, 10**4
PAPER = {10: 1.81, 10**2: 9.04, 10**3: 60.18, 10**4: 451.81}


def test_table5_ratio_vs_span(benchmark, report):
    rows = benchmark.pedantic(
        lambda: [
            (span, cost_ratio_lower_bound(NS, RANGE, span), PAPER[span])
            for span in PAPER
        ],
        rounds=1,
        iterations=1,
    )
    report(
        "table5_ratio_phir",
        format_table(
            ["phi_R", "C_sg : C_psguard", "paper"],
            rows,
            title=f"Table 5: Cost-Ratio Lower Bound (NS={NS}, R={RANGE})",
        ),
    )
    for span, ratio, paper_value in rows:
        assert ratio == pytest.approx(paper_value, rel=0.01)


def test_table5_trend_confirmed_by_simulation(benchmark):
    """Wider spans widen the measured messaging gap (smaller simulation)."""

    def simulate(span: int, subscribers: int = 60, range_size: int = 2048):
        import random

        rng = random.Random(span)
        group = GroupKeyServer(range_size)
        kdc = KDC(master_key=bytes(16))
        kdc.register_topic(
            "t", CompositeKeySpace({"v": NumericKeySpace("v", range_size)})
        )
        group_messages = 0
        psguard_keys = 0
        for index in range(subscribers):
            low = rng.randint(0, range_size - span)
            group_messages += group.join(
                f"S{index}", low, low + span - 1
            ).messages
            psguard_keys += kdc.authorize(
                f"S{index}", Filter.numeric_range("t", "v", low, low + span - 1)
            ).key_count()
        return group_messages / max(1, psguard_keys)

    ratios = benchmark.pedantic(
        lambda: [simulate(span) for span in (16, 128, 1024)],
        rounds=1,
        iterations=1,
    )
    assert ratios == sorted(ratios)
    assert ratios[-1] > 3 * ratios[0]
