"""Table 3: per-join KDC costs, PSGuard vs. SubscriberGroup.

Analytic inventory (messages / compute / storage / statelessness) plus a
measured confirmation against the real KDC and group-server
implementations.
"""

from repro.analysis.models import kdc_cost_table
from repro.baseline.groups import GroupKeyServer
from repro.core.kdc import KDC
from repro.core.composite import CompositeKeySpace
from repro.core.nakt import NumericKeySpace
from repro.harness.reporting import format_table
from repro.siena.filters import Filter

NS, RANGE, SPAN = 1000, 10**4, 100


def _analytic():
    return kdc_cost_table(NS, RANGE, SPAN)


def test_table3_kdc_costs(benchmark, report):
    table = benchmark.pedantic(_analytic, rounds=1, iterations=1)
    rows = [
        (
            approach,
            entry["join_message_keys"],
            entry["join_compute_hashes"],
            entry["storage_keys"],
            entry["stateless"],
        )
        for approach, entry in table.items()
    ]
    report(
        "table3_kdc_costs",
        format_table(
            ["approach", "join msg (keys)", "join compute (H)",
             "storage (keys)", "stateless"],
            rows,
            title=f"Table 3: KDC Costs (NS={NS}, R={RANGE}, phi={SPAN})",
        ),
    )
    psguard = table["psguard"]
    group = table["subscriber_group"]
    assert psguard["stateless"] and not group["stateless"]
    assert psguard["join_message_keys"] < group["join_message_keys"]
    assert psguard["storage_keys"] == 1.0


def test_table3_measured_storage(benchmark):
    """The real servers exhibit the tabulated storage behaviour."""

    def measure():
        kdc = KDC(master_key=bytes(16))
        kdc.register_topic(
            "t", CompositeKeySpace({"v": NumericKeySpace("v", RANGE)})
        )
        group = GroupKeyServer(RANGE)
        for index in range(64):
            low = (index * 131) % (RANGE - SPAN)
            kdc.authorize(
                f"S{index}", Filter.numeric_range("t", "v", low, low + SPAN)
            )
            group.join(f"S{index}", low, low + SPAN)
        return group.state_size()

    group_state = benchmark.pedantic(measure, rounds=1, iterations=1)
    # PSGuard's KDC keeps nothing per subscriber (just rk); the group
    # server's state grows with every join.
    assert group_state > 64
