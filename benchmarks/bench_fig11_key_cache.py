"""Figure 11: the key cache's effect (30 nodes, temporally local stream).

Paper: with a 64 KB cache, PSGuard's throughput deficit vs. Siena shrinks
from ~10.8% to ~2.2% and the latency overhead from ~5.7% to ~1.5%,
because cached intermediate keys remove most per-event key derivations.

On this substrate the crypto primitives are ~100x faster relative to the
per-event broker work than on the paper's 550 MHz testbed, so the
throughput shift is within simulation noise (see EXPERIMENTS.md); we
therefore reproduce the *mechanism* the figure measures -- per-event
derivation work and cache hit rate vs. cache size, on the paper's own
temporal-locality workload (consecutive stock quotes, Section 3.2.3) --
and the end-to-end simulation confirms caching never hurts.
"""

from repro.harness.endtoend import (
    max_throughput,
    measure_cache_effect,
    sample_pipeline_costs,
)
from repro.harness.reporting import format_table

CACHE_SIZES_KB = (0, 1, 4, 16, 64)
NODES = 30
EVENTS = 300


def test_fig11_cache_mechanism(benchmark, report):
    rows = benchmark.pedantic(
        lambda: measure_cache_effect(CACHE_SIZES_KB),
        rounds=1,
        iterations=1,
    )
    report(
        "fig11_key_cache",
        format_table(
            ["cache (KB)", "pub H/event", "sub H/event",
             "pub hit rate", "sub hit rate", "crypto/event (us)"],
            [
                (
                    row.cache_kb,
                    row.publisher_hash_per_event,
                    row.subscriber_hash_per_event,
                    row.publisher_hit_rate,
                    row.subscriber_hit_rate,
                    row.crypto_per_event_s * 1e6,
                )
                for row in rows
            ],
            title="Figure 11: Key Caching (stock-quote stream)",
        ),
    )
    publisher_work = [row.publisher_hash_per_event for row in rows]
    subscriber_work = [row.subscriber_hash_per_event for row in rows]
    # Larger caches strictly cut derivation work...
    assert publisher_work[-1] < 0.5 * publisher_work[0]
    assert subscriber_work[-1] < 0.5 * subscriber_work[0]
    # ...and hit rates climb toward 1.
    assert rows[-1].publisher_hit_rate > 0.8
    assert rows[-1].subscriber_hit_rate > 0.8
    assert rows[0].publisher_hit_rate <= rows[-1].publisher_hit_rate


def test_fig11_endtoend_never_hurt_by_cache(benchmark, report):
    def sweep():
        results = []
        for size_kb in (0, 64):
            pipeline = sample_pipeline_costs(
                "numeric", cache_bytes=size_kb * 1024
            )
            results.append(
                (size_kb,
                 max_throughput("numeric", NODES, pipeline, events=EVENTS))
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "fig11_endtoend",
        format_table(
            ["cache (KB)", "throughput (ev/s)", "latency (ms)"],
            [
                (size_kb, r.throughput_events_per_s, r.latency_s * 1e3)
                for size_kb, r in results
            ],
            title=f"Figure 11 (end to end, {NODES} nodes, numeric mode)",
        ),
    )
    uncached, cached = results[0][1], results[1][1]
    assert (
        cached.throughput_events_per_s
        >= 0.95 * uncached.throughput_events_per_s
    )
    assert cached.latency_s <= 1.05 * uncached.latency_s
