"""Ablation: fault-tolerant parallel multi-path routing (Section 4.2.1).

The paper's extension claim, quantified: routing each event over ``k``
of its independent paths in parallel defeats message-dropping nodes.
Measured delivery rates against a 20% dropper population track the
closed-form ``1 - (1 - (1-f)^d)^k``, at the cost of ``k``-fold message
overhead and a ``k``-fold higher apparent token frequency (the
privacy/fault-tolerance trade-off made explicit).
"""

from repro.harness.reporting import format_table
from repro.routing.faulttolerance import (
    DroppingNetwork,
    RedundantRouter,
    analytic_delivery_rate,
)
from repro.topology.multipath import MultipathNetwork
from repro.workloads.zipf import zipf_weights

DEPTH, ARITY = 3, 4
DROPPER_FRACTION = 0.2
EVENTS = 1200


def _run():
    network = MultipathNetwork(depth=DEPTH, arity=ARITY, ind=ARITY)
    frequencies = dict(zip(
        (f"t{i}" for i in range(32)), zipf_weights(32)
    ))
    adversary = DroppingNetwork(network, DROPPER_FRACTION, seed=5)
    rows = []
    for redundancy in (1, 2, 3, 4):
        router = RedundantRouter(
            network, frequencies, redundancy=redundancy, ind_max=ARITY
        )
        stats = adversary.run(router, events=EVENTS)
        predicted = analytic_delivery_rate(
            DROPPER_FRACTION, DEPTH, redundancy
        )
        rows.append(
            (
                redundancy,
                stats.delivery_rate,
                predicted,
                stats.overhead,
                router.expected_apparent_frequency("t0")
                / frequencies["t0"],
            )
        )
    return rows


def test_ablation_redundancy(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "ablation_redundancy",
        format_table(
            ["paths/event", "delivery rate", "analytic", "msg overhead",
             "apparent-freq factor"],
            rows,
            title=f"Ablation: redundancy vs {DROPPER_FRACTION:.0%} droppers "
            f"(depth {DEPTH})",
        ),
    )
    delivery = [row[1] for row in rows]
    overhead = [row[3] for row in rows]
    # More parallel paths, better delivery, proportionally more traffic.
    assert delivery == sorted(delivery)
    assert delivery[-1] > delivery[0] + 0.2
    assert overhead == sorted(overhead)
    # Measured tracks the closed form.
    for _, measured, predicted, _, _ in rows:
        assert abs(measured - predicted) < 0.12
    # Privacy cost: apparent frequency scales with redundancy.
    factors = [row[4] for row in rows]
    assert factors == sorted(factors)
