"""Figure 3: keys per subscriber vs. NS.

Paper shape: PSGuard flat (small constant); SubscriberGroup grows with
NS (log-scale axis in the paper, ~40x PSGuard at NS = 32).
"""

from repro.harness.keymgmt import run_key_management
from repro.harness.reporting import format_table

SUBSCRIBER_COUNTS = [2, 4, 8, 16, 32]


def test_fig3_keys_per_subscriber(benchmark, report):
    rows = benchmark.pedantic(
        lambda: run_key_management(SUBSCRIBER_COUNTS),
        rounds=1,
        iterations=1,
    )
    report(
        "fig3_keys_per_subscriber",
        format_table(
            ["NS", "PSGuard", "SubscriberGroup", "SG / PSG"],
            [
                (
                    row.num_subscribers,
                    row.psguard_keys_per_subscriber,
                    row.group_keys_per_subscriber,
                    row.group_keys_per_subscriber
                    / row.psguard_keys_per_subscriber,
                )
                for row in rows
            ],
            title="Figure 3: Num Keys per Subscriber",
        ),
    )
    psguard = [row.psguard_keys_per_subscriber for row in rows]
    group = [row.group_keys_per_subscriber for row in rows]
    # PSGuard flat; SubscriberGroup growing and eventually far larger.
    assert max(psguard) <= 1.6 * min(psguard)
    assert group[-1] > group[0]
    assert group[-1] > 1.5 * psguard[-1]
