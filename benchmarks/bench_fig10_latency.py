"""Figure 10: delivery latency vs. number of routing nodes.

Latency is measured with throughput held near its maximum.  Paper shape:
latency is dominated by WAN hop delays; PSGuard adds under ~1.5% for
topic/numeric/string and ~6% for category attributes.  (Our simulated
brokers are much faster relative to the WAN than the 550 MHz testbed,
so the paper's initial queueing-driven dip at small node counts is
flattened -- see EXPERIMENTS.md.)
"""

from benchmarks.conftest import ENDTOEND_MODES, ENDTOEND_NODES
from repro.harness.reporting import format_table


def test_fig10_latency(benchmark, endtoend_sweep, report):
    results = benchmark.pedantic(
        lambda: endtoend_sweep, rounds=1, iterations=1
    )
    rows = []
    for nodes in ENDTOEND_NODES:
        rows.append(
            (nodes, *(
                results[(mode, nodes)].latency_s * 1e3
                for mode in ENDTOEND_MODES
            ))
        )
    report(
        "fig10_latency",
        format_table(
            ["nodes", *(f"{m} (ms)" for m in ENDTOEND_MODES)],
            rows,
            title="Figure 10: Latency at Max Throughput",
        ),
    )

    # Deeper trees add WAN hops: latency grows from 2 to 30 nodes.
    siena_2 = results[("siena", 2)].latency_s
    siena_30 = results[("siena", 30)].latency_s
    assert siena_30 > siena_2
    # Crypto overhead is invisible next to WAN latency (paper: <1.5%,
    # category <6%).
    for nodes in ENDTOEND_NODES[1:]:
        base = results[("siena", nodes)].latency_s
        for mode in ("topic", "numeric", "string", "category"):
            delta = results[(mode, nodes)].latency_s / base - 1
            assert abs(delta) < 0.08, (mode, nodes, delta)
