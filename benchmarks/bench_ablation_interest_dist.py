"""Ablation: subscriber-interest distribution (Section 3.2.2's claim).

The analytical comparison assumes uniform random subscription ranges and
proves that is the *best case* for the subscriber-group approach (overlap
probability ``~2 phi sum f^2`` is minimized by uniform ``f``).  This bench
measures the real group server under uniform vs. Gaussian-concentrated
vs. hotspot interest and confirms the ordering.
"""

import random

from repro.baseline.groups import GroupKeyServer
from repro.harness.reporting import format_table

RANGE = 4096
SPAN = 200
SUBSCRIBERS = 48


def _messaging(draw_low, seed: int) -> float:
    rng = random.Random(seed)
    server = GroupKeyServer(RANGE)
    for index in range(SUBSCRIBERS):
        low = max(0, min(RANGE - SPAN, draw_low(rng)))
        server.join(f"S{index}", low, low + SPAN - 1)
    return server.total_messages


def test_ablation_interest_distribution(benchmark, report):
    def run():
        uniform = _messaging(
            lambda rng: rng.randint(0, RANGE - SPAN), seed=1
        )
        gaussian = _messaging(
            lambda rng: int(rng.gauss(RANGE / 2, RANGE / 10)), seed=2
        )
        hotspot = _messaging(
            lambda rng: int(rng.gauss(RANGE / 2, RANGE / 40)), seed=3
        )
        return uniform, gaussian, hotspot

    uniform, gaussian, hotspot = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(
        "ablation_interest_dist",
        format_table(
            ["interest distribution", "group key messages"],
            [
                ("uniform (analysis best case)", uniform),
                ("gaussian (sigma = R/10)", gaussian),
                ("hotspot (sigma = R/40)", hotspot),
            ],
            title="Ablation: interest distribution vs group-server cost "
            f"(NS={SUBSCRIBERS}, R={RANGE}, phi={SPAN})",
        ),
    )
    # Concentration strictly increases the group approach's cost;
    # PSGuard's cost is distribution-agnostic (log2 phi per join).
    assert uniform < gaussian < hotspot
