"""Ablation: batching mixes vs. the timing-linkage attack.

Complements the multi-path frequency defense: an attacker with a-priori
knowledge of publishers' publication *schedules* links tokens to
publishers by timestamp alignment.  Sweeping the mix window shows the
defense's dial: linkage accuracy collapses to chance once the window
exceeds the inter-publisher schedule offset, at an average latency cost
of half the window.
"""

from repro.harness.reporting import format_table
from repro.routing.mix import (
    BatchingMix,
    interleaved_trace,
    timing_linkage_attack,
)

PUBLISHERS = 4
EVENTS_PER_PUBLISHER = 60
OFFSET = 0.25  # seconds between publishers' schedule phases


def _run():
    schedules = {
        f"P{index}": [
            index * OFFSET + step * 1.0
            for step in range(EVENTS_PER_PUBLISHER)
        ]
        for index in range(PUBLISHERS)
    }
    tokens = {
        f"P{index}": [f"tok-{index}-{copy}" for copy in range(3)]
        for index in range(PUBLISHERS)
    }
    arrivals, truth = interleaved_trace(schedules, tokens)
    rows = []
    for window in (0.0, 0.1, 0.5, 1.0, 2.0, 8.0):
        mix = BatchingMix(window, seed=7)
        released = mix.process(arrivals)
        attack = timing_linkage_attack(released, schedules, truth)
        rows.append((window, attack.accuracy, mix.added_latency()))
    return rows


def test_ablation_timing_mix(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "ablation_timing_mix",
        format_table(
            ["mix window (s)", "linkage accuracy", "added latency (s)"],
            rows,
            title=f"Ablation: batching mix vs timing linkage "
            f"({PUBLISHERS} publishers, {OFFSET}s offsets)",
        ),
    )
    accuracies = dict((window, accuracy) for window, accuracy, _ in rows)
    chance = 1.0 / PUBLISHERS
    # No mixing: the attack wins outright.
    assert accuracies[0.0] == 1.0
    # A window narrower than the offset leaks.
    assert accuracies[0.1] > 0.8
    # Wide windows push accuracy to (near) chance.
    assert accuracies[8.0] <= 2.5 * chance
    # The latency dial is explicit.
    latencies = [latency for _, _, latency in rows]
    assert latencies == sorted(latencies)