"""The SubscriberGroup baseline (Sections 3.2, 5.2.1).

Group key management applied to pub-sub, after Opyrchal and Prakash
(USENIX Security '01): the key server partitions each numeric attribute's
range into maximal intervals whose subscriber sets coincide, keeps one
group key per interval, and re-keys affected groups whenever a join
changes a membership set.  Plain topics degenerate to one group per topic.

This is the comparison point for every key-management experiment
(Figures 3-5, Tables 3-6): its messaging, computation and state costs all
grow with the number of active subscribers, which is precisely what
PSGuard's derivation-based design eliminates.
"""

from repro.baseline.groups import GroupKeyServer, JoinCost
from repro.baseline.topicgroups import TopicGroupServer

__all__ = ["GroupKeyServer", "JoinCost", "TopicGroupServer"]
