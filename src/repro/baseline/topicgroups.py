"""Group key management across a whole workload of topics.

``TopicGroupServer`` lifts the single-attribute
:class:`~repro.baseline.groups.GroupKeyServer` to the Section 5.2 workload:

- numeric topics get an interval-group server;
- category topics get one group per category element (a subscription for a
  category joins the groups of every element in its subtree -- the group
  approach has no key derivation, so subsumption must be materialized);
- string topics get one group per concrete published value a subscription
  prefix matches (materialized lazily as values appear);
- plain topics get a single group.

Per-publisher isolation (Section 3.1 "Multiple Publishers") would further
multiply every group by the publisher count; ``publishers > 1`` models
that.
"""

from __future__ import annotations

import os
from collections import defaultdict
from dataclasses import dataclass, field

from repro.baseline.groups import GroupKeyServer, JoinCost
from repro.crypto.hashes import KEY_BYTES
from repro.workloads.generator import Subscription, TopicSpec


@dataclass
class _LabelGroup:
    """A group keyed by an opaque label (category node, string, topic)."""

    members: set[str] = field(default_factory=set)
    key: bytes = field(default_factory=lambda: os.urandom(KEY_BYTES))


class TopicGroupServer:
    """Baseline key server covering every topic of a workload."""

    def __init__(self, publishers: int = 1):
        if publishers < 1:
            raise ValueError("need at least one publisher")
        self.publishers = publishers
        self.numeric_servers: dict[str, GroupKeyServer] = {}
        #: (topic, label) -> group
        self.label_groups: dict[tuple[str, str], _LabelGroup] = {}
        #: subscriber -> set of (topic, label) memberships
        self._label_memberships: dict[str, set[tuple[str, str]]] = defaultdict(set)
        self.total_key_generations = 0
        self.total_messages = 0

    # -- joins ----------------------------------------------------------------

    def join(self, subscription: Subscription) -> JoinCost:
        """Process one subscription under group key management."""
        topic = subscription.topic
        if topic.kind == "numeric":
            cost = self._join_numeric(subscription)
        elif topic.kind == "category":
            cost = self._join_labels(
                subscription,
                self._category_labels(topic, subscription),
            )
        elif topic.kind == "string":
            cost = self._join_labels(
                subscription, self._string_labels(subscription)
            )
        else:
            cost = self._join_labels(subscription, [topic.name])
        self.total_key_generations += cost.key_generations
        self.total_messages += cost.messages
        return cost

    def _join_numeric(self, subscription: Subscription) -> JoinCost:
        topic = subscription.topic
        server = self.numeric_servers.get(topic.name)
        if server is None:
            space = topic.schema.space_for(topic.attribute)
            server = GroupKeyServer(space.range_size)
            self.numeric_servers[topic.name] = server
        low, high = subscription.numeric_range
        return server.join(subscription.subscriber, low, high)

    @staticmethod
    def _category_labels(
        topic: TopicSpec, subscription: Subscription
    ) -> list[str]:
        """Every category element the subscription's subtree contains."""
        tree = topic.category_tree
        granted = tree.label_of(
            str(
                next(
                    constraint.value
                    for constraint in subscription.filter
                    if constraint.name == "category"
                )
            )
        )
        return [
            label for label in tree.labels() if tree.subsumes(granted, label)
        ]

    @staticmethod
    def _string_labels(subscription: Subscription) -> list[str]:
        """The subscription's prefix; concrete values materialize on publish.

        Without key derivation, the group server must place the subscriber
        in the group of every *published value* matching the prefix; we
        track prefix membership and expand on demand in
        :meth:`groups_for_value`.
        """
        prefix = next(
            constraint.value
            for constraint in subscription.filter
            if constraint.name == "text"
        )
        return [f"prefix:{prefix}"]

    def _join_labels(
        self, subscription: Subscription, labels: list[str]
    ) -> JoinCost:
        cost = JoinCost()
        for label in labels:
            for publisher_index in range(self.publishers):
                group_key = (
                    subscription.topic.name,
                    f"{label}#p{publisher_index}"
                    if self.publishers > 1
                    else label,
                )
                group = self.label_groups.get(group_key)
                if group is None:
                    group = _LabelGroup()
                    self.label_groups[group_key] = group
                    cost.key_generations += 1
                if group.members:
                    group.key = os.urandom(KEY_BYTES)
                    cost.key_generations += 1
                    cost.keys_to_existing_subscribers += len(group.members)
                group.members.add(subscription.subscriber)
                self._label_memberships[subscription.subscriber].add(group_key)
                cost.keys_to_new_subscriber += 1
        return cost

    # -- publication-driven group materialization --------------------------------

    def materialize_for_event(self, topic: TopicSpec, value: object) -> int:
        """Create (and populate) the group a concrete publication targets.

        Without key derivation, a string-prefix subscription cannot hold a
        single key for "every value starting with p": the server must
        place the subscriber in the group of each *published value* the
        prefix matches, key generation and key messages included.  Returns
        the number of key messages this publication triggered.
        """
        if topic.kind != "string":
            return 0
        group_key = (topic.name, f"value:{value}")
        group = self.label_groups.get(group_key)
        if group is not None:
            return 0
        group = _LabelGroup()
        self.label_groups[group_key] = group
        self.total_key_generations += 1
        messages = 0
        for subscriber, memberships in self._label_memberships.items():
            for candidate_topic, label in list(memberships):
                if candidate_topic != topic.name:
                    continue
                if not label.startswith("prefix:"):
                    continue
                prefix = label.split(":", 1)[1]
                if str(value).startswith(prefix):
                    group.members.add(subscriber)
                    memberships.add(group_key)
                    messages += 1
        self.total_messages += messages
        return messages

    # -- accounting -------------------------------------------------------------

    def server_key_count(self) -> int:
        """Keys the server currently maintains across all topics."""
        return len(self.label_groups) + sum(
            server.key_count() for server in self.numeric_servers.values()
        )

    def keys_of(self, subscriber: str) -> int:
        """Keys one subscriber currently holds across all topics."""
        label_keys = len(self._label_memberships.get(subscriber, ()))
        numeric_keys = sum(
            server.keys_of(subscriber)
            for server in self.numeric_servers.values()
        )
        return label_keys + numeric_keys

    def bytes_sent(self) -> int:
        """Total key bytes shipped so far."""
        return self.total_messages * KEY_BYTES

    def state_size(self) -> int:
        """Server-side state entries (Table 3's 2*NS term, generalized)."""
        label_state = len(self.label_groups) + sum(
            len(group.members) for group in self.label_groups.values()
        )
        numeric_state = sum(
            server.state_size() for server in self.numeric_servers.values()
        )
        return label_state + numeric_state
