"""Interval-group key management over one numeric attribute.

State: a partition of the subscribed portion of ``(0, R-1)`` into maximal
intervals with identical subscriber sets, one group key each.  A join for
range ``(l, u)`` splits the boundary intervals and re-keys every interval
whose membership changed (backward secrecy: the newcomer must not read
events published before its join).  Every re-key costs one key generation
at the server and one key message per affected member -- the costs the
paper's quantitative analysis charges to the subscriber-group approach
(Section 3.2.2): ~2 updated keys per overlapping active subscriber plus
the newcomer's own key set.

Departures use lazy revocation: groups are re-keyed in bulk at the epoch
boundary (``rekey_epoch``), matching the paper's fairness assumption that
the lazy-revocation interval equals one PSGuard epoch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.crypto.hashes import KEY_BYTES


@dataclass
class JoinCost:
    """Accounting for one subscription join."""

    key_generations: int = 0
    keys_to_new_subscriber: int = 0
    keys_to_existing_subscribers: int = 0
    subscribers_updated: int = 0

    @property
    def messages(self) -> int:
        """Total key-delivery messages (one per key sent)."""
        return self.keys_to_new_subscriber + self.keys_to_existing_subscribers

    @property
    def bytes_sent(self) -> int:
        """Total key bytes shipped."""
        return self.messages * KEY_BYTES


@dataclass
class _Interval:
    """One maximal interval with a uniform subscriber set."""

    low: int
    high: int  # inclusive
    members: set[str] = field(default_factory=set)
    key: bytes = field(default_factory=lambda: os.urandom(KEY_BYTES))

    def covers(self, value: int) -> bool:
        return self.low <= value <= self.high


class GroupKeyServer:
    """The baseline key server for one numeric attribute of one topic."""

    def __init__(self, range_size: int):
        if range_size < 1:
            raise ValueError("range size must be positive")
        self.range_size = range_size
        self.intervals: list[_Interval] = []
        #: subscriber -> (low, high) of its active subscription
        self.subscriptions: dict[str, tuple[int, int]] = {}
        self.total_key_generations = 0
        self.total_messages = 0

    # -- introspection -------------------------------------------------------

    def key_count(self) -> int:
        """Group keys currently held by the server."""
        return len(self.intervals)

    def keys_of(self, subscriber: str) -> int:
        """Group keys currently held by one subscriber."""
        return sum(
            1 for interval in self.intervals if subscriber in interval.members
        )

    def active_subscribers(self) -> int:
        """Number of subscribers with an active subscription."""
        return len(self.subscriptions)

    def state_size(self) -> int:
        """Server state entries: one per (interval, member) pair plus keys.

        The paper's point (Table 3): the group server must track every
        active subscription; PSGuard's KDC tracks nothing.
        """
        return self.key_count() + sum(
            len(interval.members) for interval in self.intervals
        )

    def _check_range(self, low: int, high: int) -> None:
        if not 0 <= low <= high < self.range_size:
            raise ValueError(
                f"subscription ({low}, {high}) outside (0, {self.range_size - 1})"
            )

    # -- interval maintenance ----------------------------------------------------

    def _split_at(self, boundary: int) -> None:
        """Ensure no interval straddles *boundary* (splits become two keys)."""
        for index, interval in enumerate(self.intervals):
            if interval.low < boundary <= interval.high:
                left = _Interval(
                    interval.low, boundary - 1, set(interval.members),
                    interval.key,
                )
                right = _Interval(
                    boundary, interval.high, set(interval.members),
                    interval.key,
                )
                self.intervals[index: index + 1] = [left, right]
                return

    def _coalesce(self) -> None:
        """Merge neighbours with identical member sets (post-epoch cleanup)."""
        merged: list[_Interval] = []
        for interval in sorted(self.intervals, key=lambda i: i.low):
            if not interval.members:
                continue
            if (
                merged
                and merged[-1].high + 1 == interval.low
                and merged[-1].members == interval.members
            ):
                merged[-1] = _Interval(
                    merged[-1].low, interval.high, set(interval.members),
                    merged[-1].key,
                )
            else:
                merged.append(interval)
        self.intervals = merged

    # -- joins --------------------------------------------------------------------

    def join(self, subscriber: str, low: int, high: int) -> JoinCost:
        """Process a subscription join; returns its cost breakdown."""
        self._check_range(low, high)
        if subscriber in self.subscriptions:
            raise ValueError(
                f"subscriber {subscriber!r} already has an active "
                "subscription; one range per subscriber per attribute"
            )
        cost = JoinCost()
        self._split_at(low)
        self._split_at(high + 1)

        # Grow coverage where no interval exists yet.
        covered = [
            (interval.low, interval.high)
            for interval in sorted(self.intervals, key=lambda i: i.low)
            if interval.low <= high and interval.high >= low
        ]
        cursor = low
        new_intervals: list[_Interval] = []
        for existing_low, existing_high in covered:
            if cursor < existing_low:
                new_intervals.append(_Interval(cursor, existing_low - 1))
            cursor = max(cursor, existing_high + 1)
        if cursor <= high:
            new_intervals.append(_Interval(cursor, high))
        for interval in new_intervals:
            cost.key_generations += 1  # fresh group key
            self.intervals.append(interval)
        self.intervals.sort(key=lambda i: i.low)

        updated_members: set[str] = set()
        for interval in self.intervals:
            if interval.low > high or interval.high < low:
                continue
            # Membership changes: re-key the group (backward secrecy) and
            # push the new key to every existing member.
            if interval.members:
                interval.key = os.urandom(KEY_BYTES)
                cost.key_generations += 1
                cost.keys_to_existing_subscribers += len(interval.members)
                updated_members |= interval.members
            interval.members.add(subscriber)
            cost.keys_to_new_subscriber += 1

        cost.subscribers_updated = len(updated_members)
        self.subscriptions[subscriber] = (low, high)
        self.total_key_generations += cost.key_generations
        self.total_messages += cost.messages
        return cost

    # -- epochs ---------------------------------------------------------------------

    def leave(self, subscriber: str) -> None:
        """Mark a departure; actual re-keying is lazy (epoch boundary)."""
        self.subscriptions.pop(subscriber, None)

    def rekey_epoch(self) -> tuple[int, int]:
        """Lazy revocation: drop departed members, re-key every group.

        Returns ``(key_generations, messages)`` for the epoch boundary.
        """
        generations = 0
        messages = 0
        for interval in self.intervals:
            interval.members &= set(self.subscriptions)
            if interval.members:
                interval.key = os.urandom(KEY_BYTES)
                generations += 1
                messages += len(interval.members)
        self._coalesce()
        self.total_key_generations += generations
        self.total_messages += messages
        return generations, messages
