"""The batched high-throughput dissemination engine.

:class:`DisseminationEngine` sits between publishers and a broker
overlay.  Instead of pushing every event through the tree one at a time,
it accumulates publishes into :class:`~repro.engine.batch.EventBatch` es
and dispatches each batch as a single ``publish_batch`` call -- one
message per tree hop per batch instead of one per event -- while the
shared memoization layers (:class:`EngineCaches`) strip repeated PRF and
match work out of the per-event cost:

- ``token_authority`` memoizes Song--Wagner--Perrig token pre-computation
  on the publish side (:class:`~repro.routing.tokens.CachingTokenAuthority`);
- ``token_prf`` memoizes broker-side proof recomputation ``F_{tok}(r)``
  across the brokers of a process
  (:class:`~repro.routing.tokens.TokenPRFCache`);
- ``match_results`` memoizes whole filter-match verdicts keyed on the
  filter and the event's constrained values
  (:class:`~repro.siena.index.MatchResultCache`).

Batching is semantics-preserving: per-subscriber delivery streams are
identical to the per-event path (``Broker.publish_batch`` shares the
matching/ordering code with ``Broker.publish``), and every cache memoizes
a pure function, so verdicts and tokens are bit-identical with caching
disabled.  The engine trades *latency* for throughput: an event may wait
up to ``flush_timeout`` (or until the batch fills) before it moves.

The engine also participates in overload protection.  Hosts feed it
explicit overload signals (:meth:`DisseminationEngine.signal_overload`,
typically wired to a shed notification from the overlay); each signal
multiplicatively backs off the optional
:class:`~repro.flow.AIMDRateLimiter` and doubles the batch size (capped)
so the same event rate costs fewer per-hop messages.  Successful
dispatches additively recover both, and :meth:`publish_interval` exposes
the current pacing so publishers can spread their offered load.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.engine.batch import BatchAccumulator, EventBatch
from repro.flow import AIMDRateLimiter
from repro.obs.metrics import MetricsRegistry
from repro.routing.tokens import (
    CachingTokenAuthority,
    TokenPRFCache,
    cached_tokenized_match,
)
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.index import MatchResultCache


class BatchTransport(Protocol):
    """Anything that can disseminate a batch (BrokerTree, SimulatedPubSub).

    The unified surface is ``publish(events)`` (optionally with
    ``parallel=``); the engine still falls back at runtime to the
    legacy ``publish_batch`` method for third-party transports that
    predate the unification (deprecated, removed in repro 2.0).
    """

    def publish(self, events: list[Event]) -> object: ...


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs for the engine; defaults suit the bench workloads."""

    batch_size: int = 32
    #: Seconds the oldest pending event may wait before a timeout flush
    #: (None disables timeout flushes; close() still drains).
    flush_timeout: float | None = None
    #: Ceiling for overload-driven batch growth (None: 8x batch_size).
    max_batch_size: int | None = None
    token_authority_cache_entries: int = 4096
    token_prf_cache_entries: int = 65536
    match_cache_entries: int = 65536

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least one event")
        if (
            self.max_batch_size is not None
            and self.max_batch_size < self.batch_size
        ):
            raise ValueError("max_batch_size must be >= batch_size")

    @property
    def batch_size_ceiling(self) -> int:
        """The effective cap for overload-driven batch growth."""
        if self.max_batch_size is not None:
            return self.max_batch_size
        return self.batch_size * 8


class EngineCaches:
    """The shared memoization layers, bundled for one engine instance.

    Build one per trust domain: the authority cache holds master-key
    derived tokens, so it must not be shared with untrusted components.
    """

    def __init__(
        self,
        config: EngineConfig = EngineConfig(),
        registry: MetricsRegistry | None = None,
    ):
        self.token_prf = TokenPRFCache(
            config.token_prf_cache_entries, registry
        )
        self.match_results = MatchResultCache(
            config.match_cache_entries, registry
        )
        self._config = config
        self._registry = registry

    def token_authority(self, master_key: bytes) -> CachingTokenAuthority:
        """A memoizing token authority for *master_key*."""
        return CachingTokenAuthority(
            master_key,
            self._config.token_authority_cache_entries,
            self._registry,
        )

    def tokenized_match(self) -> Callable[[Filter, Event], bool]:
        """The PRF-memoized tokenized match predicate for broker trees."""
        return cached_tokenized_match(self.token_prf)

    def stats(self) -> dict:
        """JSON-able hit/miss/eviction summary of every layer."""
        return {
            "token_prf": self.token_prf.cache.stats(),
            "match_results": self.match_results.stats(),
        }


class DisseminationEngine:
    """Batched front-end over a ``publish_batch``-capable transport.

    >>> from repro.siena.network import BrokerTree
    >>> from repro.siena.filters import Filter
    >>> tree = BrokerTree(num_brokers=3)
    >>> got = []
    >>> tree.attach_subscriber("s", tree.leaf_ids()[0], got.append)
    >>> tree.subscribe("s", Filter.topic("news"))
    >>> engine = DisseminationEngine(tree, EngineConfig(batch_size=2))
    >>> engine.publish(Event({"topic": "news", "n": 1}))
    >>> len(got)   # still pending: the batch is not full
    0
    >>> batch = engine.publish(Event({"topic": "news", "n": 2}))
    >>> batch.reason
    'size'
    >>> len(got)   # size flush pushed both through the tree
    2
    """

    def __init__(
        self,
        transport: BatchTransport,
        config: EngineConfig = EngineConfig(),
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        limiter: AIMDRateLimiter | None = None,
        parallel: object | None = None,
    ):
        self.transport = transport
        self.config = config
        #: Optional :class:`~repro.parallel.ShardedMatcher` threaded into
        #: every batch dispatch (transports without the unified ``publish``
        #: surface cannot accept it and fall back to the serial path).
        self.parallel = parallel
        self.registry = registry if registry is not None else MetricsRegistry()
        self.accumulator = BatchAccumulator(
            batch_size=config.batch_size,
            flush_timeout=config.flush_timeout,
            clock=clock,
        )
        #: Optional AIMD pacing; fed by :meth:`signal_overload` and
        #: recovered on every successful dispatch.
        self.limiter = limiter
        self.overload_signals = 0
        self._clock = clock
        self._closed = False
        self._c_published = self.registry.counter("engine_events_total")
        self._c_batches = {
            reason: self.registry.counter(
                "engine_batches_total", reason=reason
            )
            for reason in ("size", "timeout", "close")
        }
        self._h_batch_events = self.registry.histogram("engine_batch_events")
        self._c_overloads = self.registry.counter(
            "engine_overload_signals_total"
        )
        self._g_batch_size = self.registry.gauge("engine_batch_size")
        self._g_batch_size.set(config.batch_size)

    def publish(self, event: Event) -> EventBatch | None:
        """Enqueue one event; dispatches (and returns) any flushed batch."""
        if self._closed:
            raise RuntimeError("engine is closed")
        self._c_published.inc()
        return self._dispatch(self.accumulator.add(event))

    def poll(self) -> EventBatch | None:
        """Give the accumulator a chance to timeout-flush; dispatches it."""
        if self._closed:
            return None
        return self._dispatch(self.accumulator.poll())

    def flush(self) -> EventBatch | None:
        """Force out the pending (possibly partial) batch."""
        return self._dispatch(self.accumulator.flush())

    def close(self) -> EventBatch | None:
        """Drain pending events and refuse further publishes."""
        final = None if self._closed else self.flush()
        self._closed = True
        return final

    @property
    def pending(self) -> int:
        """Events enqueued but not yet dispatched."""
        return len(self.accumulator)

    # -- overload feedback ----------------------------------------------------

    def signal_overload(self, now: float | None = None) -> None:
        """React to an explicit overload signal from the transport.

        Backs off the AIMD limiter multiplicatively (at most once per
        its cooldown) and doubles the batch size up to the configured
        ceiling, so the same offered event rate costs proportionally
        fewer per-hop messages while the overlay is saturated.
        """
        self.overload_signals += 1
        self._c_overloads.inc()
        if self.limiter is not None:
            self.limiter.on_overload(now if now is not None else self._clock())
        grown = min(
            self.config.batch_size_ceiling, self.accumulator.batch_size * 2
        )
        self.accumulator.batch_size = grown
        self._g_batch_size.set(grown)

    def publish_interval(self) -> float:
        """Current pacing hint (seconds/event; 0.0 when unlimited)."""
        return self.limiter.interval() if self.limiter is not None else 0.0

    def _dispatch(self, batch: EventBatch | None) -> EventBatch | None:
        if batch is None:
            return None
        counter = self._c_batches.get(batch.reason)
        if counter is not None:
            counter.inc()
        self._h_batch_events.observe(len(batch))
        events = list(batch.events)
        publish = getattr(self.transport, "publish", None)
        if publish is not None:
            if self.parallel is not None:
                publish(events, parallel=self.parallel)
            else:
                publish(events)
        else:
            self.transport.publish_batch(events)
        # A dispatched batch is evidence of headroom: additively recover
        # the rate and relax the batch size back toward its configured
        # value one event at a time (slow-shrink avoids oscillation).
        if self.limiter is not None:
            self.limiter.on_success()
        if self.accumulator.batch_size > self.config.batch_size:
            shrunk = self.accumulator.batch_size - 1
            self.accumulator.batch_size = shrunk
            self._g_batch_size.set(shrunk)
        return batch
