"""``repro.engine`` -- the batched high-throughput dissemination engine.

See :mod:`repro.engine.engine` for the design overview and
``DESIGN.md`` ("Engine & Benchmarking") for the rationale; the companion
load driver lives in :mod:`repro.bench`.
"""

from __future__ import annotations

from repro.engine.batch import BatchAccumulator, EventBatch
from repro.engine.engine import (
    DisseminationEngine,
    EngineCaches,
    EngineConfig,
)

__all__ = [
    "BatchAccumulator",
    "DisseminationEngine",
    "EngineCaches",
    "EngineConfig",
    "EventBatch",
]
