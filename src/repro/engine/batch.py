"""Batch formation for the high-throughput dissemination engine.

An :class:`EventBatch` is an immutable group of events that travels the
broker overlay as one unit.  The :class:`BatchAccumulator` implements the
batch lifecycle:

- **size flush**: the batch fills to ``batch_size`` events;
- **timeout flush**: the oldest pending event has waited ``flush_timeout``
  seconds (checked on every :meth:`add` and on explicit :meth:`poll`
  calls -- the accumulator owns no timer thread, so hosts decide when the
  clock is consulted);
- **close flush**: :meth:`close` (or an explicit :meth:`flush`) drains
  whatever is pending, however small -- the "partial final batch".

The clock is injectable so tests and the discrete-event simulator drive
timeout behaviour deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.siena.events import Event


@dataclass(frozen=True)
class EventBatch:
    """An ordered, immutable group of events dispatched as one unit."""

    events: tuple[Event, ...]
    batch_id: int
    #: What triggered the flush: ``"size"``, ``"timeout"``, or ``"close"``.
    reason: str = "size"
    #: Accumulator-clock time of the first and last enqueue.
    opened_at: float = 0.0
    flushed_at: float = 0.0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def wire_size(self) -> int:
        """Total wire size of the batch's events."""
        return sum(event.wire_size() for event in self.events)


@dataclass
class BatchAccumulator:
    """Groups single publishes into :class:`EventBatch` es.

    ``add`` returns a flushed batch (or None while accumulating); hosts
    dispatch whatever is returned.  With ``flush_timeout=None`` only size
    and close flushes occur.
    """

    batch_size: int = 32
    flush_timeout: float | None = None
    clock: Callable[[], float] = time.monotonic
    _pending: list[Event] = field(default_factory=list)
    _opened_at: float = 0.0
    _next_batch_id: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least one event")
        if self.flush_timeout is not None and self.flush_timeout < 0:
            raise ValueError("flush_timeout must be non-negative")

    def __len__(self) -> int:
        return len(self._pending)

    def _sealed(self, reason: str) -> EventBatch:
        batch = EventBatch(
            tuple(self._pending),
            self._next_batch_id,
            reason=reason,
            opened_at=self._opened_at,
            flushed_at=self.clock(),
        )
        self._next_batch_id += 1
        self._pending.clear()
        return batch

    def _timed_out(self) -> bool:
        return (
            self.flush_timeout is not None
            and bool(self._pending)
            and self.clock() - self._opened_at >= self.flush_timeout
        )

    def add(self, event: Event) -> EventBatch | None:
        """Enqueue one event; returns a batch when one is ready.

        A pending batch whose timeout has lapsed flushes *before* the new
        event is enqueued (the stale batch must not absorb later events);
        the new event then opens the next batch.  A size-triggered flush
        includes the new event.
        """
        flushed: EventBatch | None = None
        if self._timed_out():
            flushed = self._sealed("timeout")
        if not self._pending:
            self._opened_at = self.clock()
        self._pending.append(event)
        if len(self._pending) >= self.batch_size:
            # A timeout and size flush colliding on one add() would lose
            # the earlier batch; timeouts only lapse on non-full batches,
            # so the two triggers are mutually exclusive here.
            assert flushed is None
            return self._sealed("size")
        return flushed

    def poll(self) -> EventBatch | None:
        """Timeout check without enqueuing; hosts call this from timers."""
        if self._timed_out():
            return self._sealed("timeout")
        return None

    def flush(self, reason: str = "close") -> EventBatch | None:
        """Drain the pending (possibly partial) batch, if any."""
        if not self._pending:
            return None
        return self._sealed(reason)
