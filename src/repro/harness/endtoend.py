"""Throughput and latency on the simulated testbed (Figures 9-11).

Methodology follows Section 5.2.3:

- a complete binary tree of broker nodes (0, 2, 6, 14 or 30 routing nodes
  below the publisher's root), 32 subscribers uniform over the leaves,
  link latencies embedded from the transit-stub topology;
- **throughput** is the largest publication rate at which no node's
  backlog grows monotonically for five consecutive observations;
- **latency** is publish-to-plaintext time, measured near the maximum
  throughput;
- per-event service times are *measured*, not guessed: the real PSGuard
  pipeline (seal, tokenized match, derive + decrypt) is timed on local
  hardware and those costs drive the simulator.

Modes: ``siena`` (plain events, no crypto) and the four PSGuard attribute
types ``topic`` / ``numeric`` / ``category`` / ``string``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.core.publisher import Publisher
from repro.core.subscriber import Subscriber
from repro.harness.timing import CryptoCosts, measure_crypto_costs
from repro.net.sim import Simulator
from repro.net.simnet import SimulatedPubSub
from repro.siena.filters import Filter
from repro.topology.transit_stub import TransitStubTopology
from repro.topology.tree import DisseminationTree
from repro.workloads.generator import PaperWorkload, WorkloadConfig

MODES = ("siena", "topic", "numeric", "category", "string")

_MODE_TO_KIND = {
    "topic": "plain",
    "numeric": "numeric",
    "category": "category",
    "string": "string",
}


@dataclass(frozen=True)
class PipelineCosts:
    """Measured per-event costs of one mode's full pipeline, in seconds.

    ``match_per_filter_s`` is the per-level cost of walking the broker's
    match index (identical across modes -- tokens are matched by equality
    exactly like plain values); ``per_event_crypto_s`` is the extra
    tokenized-verification work PSGuard adds per event (one PRF per
    constraint for each of the few candidate filters the index surfaces).
    """

    mode: str
    seal_s: float
    open_s: float
    match_per_filter_s: float
    per_event_crypto_s: float = 0.0


@dataclass(frozen=True)
class EndToEndResult:
    """One (mode, broker-count) point of Figures 9-10."""

    mode: str
    routing_nodes: int
    throughput_events_per_s: float
    latency_s: float


def sample_pipeline_costs(
    mode: str,
    cache_bytes: int = 64 * 1024,
    samples: int = 150,
    seed: int = 29,
    costs: CryptoCosts | None = None,
    subscriptions_per_subscriber: int = 8,
) -> PipelineCosts:
    """Time the real crypto pipeline for one mode on local hardware."""
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    costs = costs or measure_crypto_costs()
    if mode == "siena":
        return PipelineCosts(mode, 0.0, 0.0, costs.plain_match_s, 0.0)

    workload = PaperWorkload(WorkloadConfig(seed=seed))
    kind = _MODE_TO_KIND[mode]
    topics = [t for t in workload.topics if t.kind == kind]
    kdc = workload.build_kdc()
    publisher = Publisher("P", kdc, cache_bytes=cache_bytes)
    subscriber = Subscriber("S", cache_bytes=cache_bytes)

    chosen = topics[:subscriptions_per_subscriber]
    for topic in chosen:
        subscription = workload.subscription_for("S", topic)
        subscriber.add_grant(kdc.authorize("S", subscription.filter))

    events = [
        workload.random_event(topic=chosen[i % len(chosen)])
        for i in range(samples)
    ]
    start = time.perf_counter()
    sealed_events = [publisher.publish(event) for event in events]
    seal_s = (time.perf_counter() - start) / samples

    schema_lookup = lambda name: kdc.config_for(name).schema  # noqa: E731
    start = time.perf_counter()
    opened = 0
    for sealed in sealed_events:
        if subscriber.receive(sealed, schema_lookup) is not None:
            opened += 1
    open_s = (time.perf_counter() - start) / max(1, opened)

    # Tokenized verification runs one PRF per constraint for each of the
    # few candidate filters the match index surfaces (~3 per event).
    # Topic filters carry one token; numeric and string filters ~2
    # cover-element tokens; category filters one token per tree level on
    # the subsumption path (height 4) -- which is why the paper reports
    # category as the costliest attribute type (~11% throughput drop).
    constraints = {"topic": 1.0, "numeric": 2.0, "category": 5.0,
                   "string": 2.0}[mode]
    candidates = 5.0
    return PipelineCosts(
        mode,
        seal_s,
        open_s,
        costs.plain_match_s,
        costs.token_match_s * constraints * candidates,
    )


class _ExperimentNetwork:
    """One simulated deployment: tree, subscriptions, cost model."""

    def __init__(
        self,
        mode: str,
        routing_nodes: int,
        pipeline: PipelineCosts,
        num_subscribers: int = 32,
        seed: int = 29,
        per_event_base_s: float = 200e-6,
    ):
        # per_event_base_s models the broker's fixed per-message work
        # (protocol parsing, queueing, scheduling).  200us puts the plain
        # Siena baseline in the few-thousand events/s regime, so the
        # crypto overheads land at the paper's relative scale (they ran a
        # Java Siena on 550 MHz CPUs at a few hundred events/s).
        self.pipeline = pipeline
        self.num_brokers = routing_nodes + 1  # root hosts the publisher
        self.sim = Simulator()
        topology = TransitStubTopology(seed=seed)
        tree = DisseminationTree(self.num_brokers, topology)
        workload = PaperWorkload(WorkloadConfig(seed=seed))
        kind = _MODE_TO_KIND.get(mode)
        self.topics = [
            t for t in workload.topics if kind is None or t.kind == kind
        ][:32]
        self.workload = workload

        def broker_cost(node_id, _event) -> float:
            # Content-based matching engines (Siena's counting algorithm)
            # are sublinear in the table size; per-event match work scales
            # with the index depth, not with a linear scan.
            table_size = self.net.brokers[node_id].subscription_count()
            index_depth = math.log2(1 + table_size)
            return (
                per_event_base_s
                + index_depth * pipeline.match_per_filter_s
                + pipeline.per_event_crypto_s
            )

        def subscriber_cost(_subscriber_id, _event) -> float:
            return pipeline.open_s

        self.net = SimulatedPubSub(
            self.sim,
            self.num_brokers,
            link_latency=(lambda a, b: tree.link_latency(a, b))
            if self.num_brokers > 1
            else 0.010,
            broker_cost=broker_cost,
            subscriber_cost=subscriber_cost,
            # Per-send work: the full send path (wire-encoding, kernel TCP,
            # connection scheduling).  100us matches the heavyweight
            # messaging stack of the paper's testbed and is what makes a
            # 32-way fan-out at a lone publisher the bottleneck that extra
            # routing nodes relieve (Fig 9's rising throughput).
            per_send_s=measure_crypto_costs().serialize_s + 100e-6,
        )
        # Subscriptions are registered at topic granularity so every mode
        # disseminates over the *same* tree structure and fan-out; the
        # modes then differ only in their (measured) per-event crypto
        # costs, which is the comparison Figs 9-10 make.  Within-topic
        # selectivity is identical across modes by construction of the
        # workload.
        # Interest sets are drawn by topic *index* from a mode-independent
        # RNG, so every mode sees the identical dissemination structure.
        import random as random_module

        leaves = self.net.leaf_ids()
        interest_rng = random_module.Random(seed + 1)
        self.subscriber_topics: dict[str, list] = {}
        for index in range(num_subscribers):
            subscriber_id = f"S{index}"
            self.net.attach_subscriber(
                subscriber_id, leaves[index % len(leaves)]
            )
            indices = interest_rng.sample(
                range(len(self.topics)), min(8, len(self.topics))
            )
            chosen = [self.topics[i] for i in indices]
            self.subscriber_topics[subscriber_id] = chosen
            for topic in chosen:
                self.net.subscribe(
                    subscriber_id, Filter.topic(topic.name)
                )

    def run_at_rate(
        self, rate: float, events: int = 400, settle: float = 2.0
    ) -> tuple[bool, float]:
        """Publish *events* at *rate*; returns (saturated, mean latency).

        The monitor samples backlogs ~25 times across the publishing
        window, so an overloaded node shows the paper's five consecutive
        backlog increases before the queue drains.
        """
        interval = 1.0 / rate
        publish_window = events * interval
        self.net.deliveries.clear()
        all_nodes = list(self.net.nodes.values()) + list(
            self.net.subscriber_nodes.values()
        )
        for node in all_nodes:
            node.stats.backlog_samples.clear()
            node.stats.work_submitted = 0.0
        self.net.start_backlog_monitor(interval=publish_window / 25)
        for index in range(events):
            event = self.workload.random_event(
                topic=self.topics[index % len(self.topics)]
            )
            sealed_size = event.wire_size() + (
                64 if self.pipeline.mode != "siena" else 0
            )
            self.net.publish(
                event, size=sealed_size, delay=index * interval
            )
        self.sim.run(until=publish_window + settle, max_events=2_000_000)
        saturated = self.net.any_saturated() or any(
            node.demand_exceeds(publish_window) for node in all_nodes
        )
        latency = self.net.mean_latency()
        return saturated, latency


def max_throughput(
    mode: str,
    routing_nodes: int,
    pipeline: PipelineCosts | None = None,
    seed: int = 29,
    events: int = 400,
) -> EndToEndResult:
    """Find the saturation rate by exponential ramp plus bisection."""
    pipeline = pipeline or sample_pipeline_costs(mode, seed=seed)

    def saturated_at(rate: float) -> tuple[bool, float]:
        network = _ExperimentNetwork(mode, routing_nodes, pipeline, seed=seed)
        return network.run_at_rate(rate, events=events)

    low, high = 50.0, None
    rate = low
    while high is None:
        is_saturated, _latency = saturated_at(rate)
        if is_saturated:
            high = rate
        else:
            low = rate
            rate *= 2
            if rate > 5e6:  # defensive ceiling
                high = rate
    for _ in range(7):
        middle = (low + high) / 2
        is_saturated, _latency = saturated_at(middle)
        if is_saturated:
            high = middle
        else:
            low = middle
    # The paper measures latency with throughput held at its maximum; a
    # final run at 95% of the saturation rate keeps queues deep but stable.
    _, latency = saturated_at(low * 0.95)
    return EndToEndResult(mode, routing_nodes, low, latency)


def throughput_latency_sweep(
    modes: tuple[str, ...] = MODES,
    node_counts: tuple[int, ...] = (2, 6, 14, 30),
    seed: int = 29,
    events: int = 400,
) -> list[EndToEndResult]:
    """Figures 9 and 10: every (mode, node-count) point."""
    results = []
    for mode in modes:
        pipeline = sample_pipeline_costs(mode, seed=seed)
        for nodes in node_counts:
            results.append(
                max_throughput(mode, nodes, pipeline, seed=seed, events=events)
            )
    return results


@dataclass(frozen=True)
class CacheEffectRow:
    """Measured key-cache effect for one cache size (Fig 11's mechanism)."""

    cache_kb: int
    publisher_hash_per_event: float
    subscriber_hash_per_event: float
    publisher_hit_rate: float
    subscriber_hit_rate: float
    crypto_per_event_s: float


def measure_cache_effect(
    cache_sizes_kb: tuple[int, ...] = (0, 4, 16, 32, 64),
    events: int = 500,
    range_size: int = 256,
    walk_step: int = 3,
    seed: int = 29,
) -> list[CacheEffectRow]:
    """Measure how the key cache cuts per-event derivation work.

    Uses the paper's own motivating workload for caching (Section 3.2.3):
    a stock-quote-like stream whose numeric value performs a bounded
    random walk, so consecutive events share long ktid prefixes.  Reports
    hash operations per event on the publisher (sealing) and subscriber
    (opening) sides plus cache hit rates, and converts the saved work to
    seconds via the measured primitive costs.
    """
    import random as random_module

    from repro.core.composite import CompositeKeySpace
    from repro.core.kdc import KDC
    from repro.core.nakt import NumericKeySpace
    from repro.siena.events import Event as _Event

    costs = measure_crypto_costs()
    rows = []
    for size_kb in cache_sizes_kb:
        rng = random_module.Random(seed)
        kdc = KDC(master_key=bytes(range(16)))
        kdc.register_topic(
            "quotes",
            CompositeKeySpace({"price": NumericKeySpace("price", range_size)}),
        )
        publisher = Publisher("P", kdc, cache_bytes=size_kb * 1024)
        subscriber = Subscriber("S", cache_bytes=size_kb * 1024)
        subscriber.add_grant(
            kdc.authorize(
                "S",
                Filter.numeric_range("quotes", "price", 0, range_size - 1),
            )
        )
        lookup = lambda name: kdc.config_for(name).schema  # noqa: E731

        price = range_size // 2
        subscriber_hashes = 0
        for _ in range(events):
            price = max(
                0,
                min(range_size - 1, price + rng.randint(-walk_step, walk_step)),
            )
            sealed = publisher.publish(
                _Event({"topic": "quotes", "price": price, "message": "q"}),
                secret_attributes={"message"},
            )
            result = subscriber.receive(sealed, lookup)
            assert result is not None
            subscriber_hashes += result.hash_operations

        publisher_per_event = publisher.stats.hash_operations / events
        subscriber_per_event = subscriber_hashes / events
        crypto_s = (
            (publisher_per_event + subscriber_per_event) * costs.hash_s
            + costs.encrypt_256_s
            + costs.decrypt_256_s
        )
        rows.append(
            CacheEffectRow(
                cache_kb=size_kb,
                publisher_hash_per_event=publisher_per_event,
                subscriber_hash_per_event=subscriber_per_event,
                publisher_hit_rate=publisher.cache.hit_rate,
                subscriber_hit_rate=subscriber.cache.hit_rate,
                crypto_per_event_s=crypto_s,
            )
        )
    return rows


def cache_size_sweep(
    cache_sizes_kb: tuple[int, ...] = (0, 4, 16, 32, 64),
    routing_nodes: int = 30,
    mode: str = "numeric",
    seed: int = 29,
    events: int = 400,
) -> list[tuple[int, EndToEndResult]]:
    """Figure 11's end-to-end variant: throughput/latency per cache size.

    Slow (one full throughput search per cache size); the benches use
    :func:`measure_cache_effect` for the mechanism and a two-point version
    of this sweep for the end-to-end confirmation.
    """
    rows = []
    for size_kb in cache_sizes_kb:
        pipeline = sample_pipeline_costs(
            mode, cache_bytes=size_kb * 1024, seed=seed
        )
        rows.append(
            (size_kb, max_throughput(mode, routing_nodes, pipeline,
                                     seed=seed, events=events))
        )
    return rows
