"""The key-management comparison of Section 5.2.1 (Figures 3-5).

For a sweep of subscriber counts ``NS``, runs the full Section 5.2
workload (32 Zipf-chosen subscriptions each over 128 mixed-type topics)
against both key-management designs:

- **PSGuard**: grants issued by the stateless KDC; per-subscriber keys are
  the grant key counts, KDC compute is the measured hash work, network is
  the grant wire bytes.
- **SubscriberGroup**: interval/label group servers; per-subscriber keys
  are live group memberships, KDC compute is key generations times the
  measured key-generation cost, network is key-update bytes.

Publisher keys (Fig 4): a PSGuard publisher holds one topic key per topic
it publishes; a group-based publisher must hold *every group key* of its
topics, because the encryption key for an event is the target group's key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.topicgroups import TopicGroupServer
from repro.core.subscriber import Subscriber
from repro.harness.timing import CryptoCosts, measure_crypto_costs
from repro.workloads.generator import PaperWorkload, WorkloadConfig


@dataclass(frozen=True)
class KeyManagementRow:
    """One NS point of Figures 3-5."""

    num_subscribers: int
    psguard_keys_per_subscriber: float
    group_keys_per_subscriber: float
    psguard_keys_per_publisher: float
    group_keys_per_publisher: float
    psguard_kdc_compute_ms: float
    group_kdc_compute_ms: float
    psguard_kdc_network_kb: float
    group_kdc_network_kb: float


def run_key_management(
    subscriber_counts: list[int] | None = None,
    config: WorkloadConfig | None = None,
    costs: CryptoCosts | None = None,
) -> list[KeyManagementRow]:
    """Run the Figure 3-5 sweep and return one row per NS value."""
    subscriber_counts = subscriber_counts or [2, 4, 8, 16, 32]
    costs = costs or measure_crypto_costs()
    rows = []
    for count in subscriber_counts:
        rows.append(_run_one(count, config, costs))
    return rows


def _run_one(
    num_subscribers: int,
    config: WorkloadConfig | None,
    costs: CryptoCosts,
    publications: int = 512,
) -> KeyManagementRow:
    workload = PaperWorkload(config)
    kdc = workload.build_kdc()
    group_server = TopicGroupServer()

    psguard_keys = []
    for index in range(num_subscribers):
        subscriber_id = f"S{index}"
        subscriber = Subscriber(subscriber_id)
        for subscription in workload.subscriptions_for(subscriber_id):
            grant = kdc.authorize(subscriber_id, subscription.filter)
            subscriber.add_grant(grant)
            group_server.join(subscription)
        psguard_keys.append(subscriber.key_count())

    # Publication stream: materializes the value groups the group approach
    # needs at runtime (PSGuard needs no key traffic for publications).
    for _ in range(publications):
        event = workload.random_event()
        topic = workload.topic_by_name(event["topic"])
        if topic.kind == "string":
            group_server.materialize_for_event(topic, event["text"])

    group_keys = [
        group_server.keys_of(f"S{index}") for index in range(num_subscribers)
    ]

    # Publisher key inventories (Fig 4): one publisher covering all topics.
    psguard_publisher_keys = float(len(workload.topics))
    group_publisher_keys = float(group_server.server_key_count())

    psguard_compute_ms = kdc.stats.hash_operations * costs.keyed_hash_s * 1e3
    # Group-server compute: generating fresh group keys plus wrapping each
    # key update for its recipient.
    group_compute_ms = (
        group_server.total_key_generations * costs.keyed_hash_s
        + group_server.total_messages * costs.encrypt_key_s
    ) * 1e3
    return KeyManagementRow(
        num_subscribers=num_subscribers,
        psguard_keys_per_subscriber=_mean(psguard_keys),
        group_keys_per_subscriber=_mean(group_keys),
        psguard_keys_per_publisher=psguard_publisher_keys,
        group_keys_per_publisher=group_publisher_keys,
        psguard_kdc_compute_ms=psguard_compute_ms / num_subscribers,
        group_kdc_compute_ms=group_compute_ms / num_subscribers,
        psguard_kdc_network_kb=kdc.stats.bytes_sent / num_subscribers / 1024,
        group_kdc_network_kb=group_server.bytes_sent()
        / num_subscribers
        / 1024,
    )


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0
