"""Paper-style table formatting for benchmark output."""

from __future__ import annotations

from typing import Iterable, Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table (paper tables/figure series)."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)
