"""Experiment harness: regenerates every table and figure of Section 5.

- :mod:`repro.harness.timing` -- microsecond-scale calibration of the
  crypto primitives on local hardware (feeds Tables 1-2 and the
  simulator's service-time model);
- :mod:`repro.harness.keymgmt` -- the key-management comparison
  (Figures 3-5);
- :mod:`repro.harness.endtoend` -- throughput/latency on the simulated
  testbed (Figures 9-11);
- :mod:`repro.harness.chaos` -- workloads under injected broker crashes
  and link loss (fault tolerance beyond the static dropper adversary);
- :mod:`repro.harness.reporting` -- paper-style table formatting.
"""

from repro.harness.chaos import (
    ChaosConfig,
    ChaosReport,
    format_chaos_report,
    run_chaos,
)
from repro.harness.kdcchaos import (
    KdcChaosConfig,
    KdcChaosReport,
    format_kdc_chaos_report,
    run_kdc_chaos,
)
from repro.harness.keymgmt import KeyManagementRow, run_key_management
from repro.harness.reporting import format_table
from repro.harness.timing import CryptoCosts, measure_crypto_costs

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "CryptoCosts",
    "KdcChaosConfig",
    "KdcChaosReport",
    "KeyManagementRow",
    "format_chaos_report",
    "format_kdc_chaos_report",
    "format_table",
    "measure_crypto_costs",
    "run_chaos",
    "run_kdc_chaos",
    "run_key_management",
]
