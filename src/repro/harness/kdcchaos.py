"""KDC-outage chaos: epoch continuity through a replicated key service.

The paper's availability claim (Section 3.2.1) is that a stateless KDC
"can be replicated on demand"; this harness measures the end-to-end
consequence.  One seeded run publishes a plain-topic workload across an
epoch boundary while the fault plan takes KDC replicas down exactly when
subscribers must renew:

- the first replica crashes for a window **straddling the boundary**
  (the worst instant: every subscriber's renewal lands inside it);
- the second replica crashes for a nested window around the boundary
  itself, forcing a second failover;
- earlier in the run, a partition cuts every client off from the first
  replica without crashing it (failover must work on silence alone).

The same timeline is replayed twice:

- **baseline** -- a single KDC replica and no grace window: renewals
  fail for the whole outage, so new-epoch events are undecryptable until
  the restart, and in-flight old-epoch events die at the boundary;
- **replicated** -- three replicas behind a
  :class:`~repro.core.kdcclient.KDCClient` plus a post-expiry grace
  window: lead-time renewals fail over to the surviving replica before
  the boundary, and grace keeps late old-epoch arrivals readable.

Success is *cryptographic*: an event counts only when the subscriber
actually decrypts it with an epoch-correct grant.  For a fixed seed the
whole run -- fault timeline, retry jitter, every counter -- is exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.kdcclient import ClientRetryPolicy, KDCClient
from repro.core.kdcservice import KDCCluster
from repro.core.publisher import Publisher
from repro.core.renewal import RenewalManager
from repro.core.subscriber import Subscriber
from repro.harness.reporting import format_table
from repro.net.faults import ANY, BrokerCrash, FaultInjector, FaultPlan, LinkFault
from repro.net.service import ServiceNetwork
from repro.net.sim import Simulator
from repro.obs import Observability
from repro.siena.events import Event
from repro.siena.filters import Filter

#: Fixed cluster master key -- the experiment compares availability, not
#: secrecy, and a fixed ``rk(KDC)`` keeps both runs byte-comparable.
MASTER_KEY = bytes(range(16))


@dataclass
class KdcChaosConfig:
    """One KDC-outage run's knobs; all randomness derives from *seed*."""

    seed: int = 7
    #: Seconds of publishing (the outage is centered on the epoch
    #: boundary nearest half of this horizon).
    duration: float = 8.0
    #: Extra simulated seconds for late renewals/ticks to settle.
    drain: float = 2.0
    topic: str = "chaos"
    epoch_length: float = 2.0
    replicas: int = 3
    subscribers: int = 8
    publish_rate: float = 40.0
    #: One-way latency of the dissemination path (publisher to
    #: subscriber); old-epoch events in flight for this long after the
    #: boundary are what the grace window saves.
    delivery_latency: float = 0.05
    #: One-way control-plane latency (client to KDC replica).
    rpc_latency: float = 0.005
    tick_interval: float = 0.1
    #: How long before expiry subscribers start renewing.
    renew_lead_time: float = 0.3
    #: Post-expiry grace window in the replicated run (baseline gets 0).
    grace_period: float = 1.0
    #: Length of the primary's crash window straddling the boundary.
    outage_duration: float = 1.0
    #: Earlier client-side partition from the first replica.
    partition_start: float = 0.6
    partition_duration: float = 0.5

    @property
    def events(self) -> int:
        return max(1, int(self.publish_rate * self.duration))

    def boundary(self) -> float:
        """The epoch boundary the outage straddles (topic-staggered)."""
        reference = KDC(master_key=MASTER_KEY)
        reference.register_topic(
            self.topic, CompositeKeySpace({}), self.epoch_length
        )
        return reference.epoch_end(self.topic, self.duration / 2.0)


@dataclass
class KdcChaosResult:
    """Outcome of one KDC-outage run (one KDC deployment mode)."""

    mode: str
    replicas: int
    grace_period: float
    attempted: int
    decrypted: int
    #: Decrypts that needed the post-expiry grace window.
    grace_opens: int
    renewals: int
    renewal_failures: int
    late_renewals: int
    client_failovers: int
    client_retries: int
    client_timeouts: int
    breaker_opens: int
    view_changes: int
    #: Control-plane messages lost to crashes/partitions/link loss.
    messages_lost: int
    #: Whether every alive replica ended with the same registry log.
    converged: bool

    @property
    def decrypt_rate(self) -> float:
        return self.decrypted / self.attempted if self.attempted else 0.0


def _fault_plan(config: KdcChaosConfig, replicas: int) -> FaultPlan:
    """Crash/partition timeline against the first ``replicas`` KDC nodes."""
    boundary = config.boundary()
    # Clamped at t=0 so short horizons (boundary close to the run start)
    # still yield a schedulable plan.
    crashes = [
        BrokerCrash(
            "kdc0",
            max(0.0, boundary - config.outage_duration / 2),
            config.outage_duration,
        )
    ]
    if replicas > 1:
        # A nested second outage right at the boundary: the client must
        # fail over twice to keep renewing.
        crashes.append(
            BrokerCrash(
                "kdc1",
                max(0.0, boundary - config.outage_duration / 4),
                config.outage_duration / 2,
            )
        )
    link_faults = [
        LinkFault(
            ANY,
            "kdc0",
            start=config.partition_start,
            duration=config.partition_duration,
            partitioned=True,
        )
    ]
    return FaultPlan(crashes=crashes, link_faults=link_faults)


def run_kdc_chaos_mode(
    config: KdcChaosConfig,
    replicas: int,
    grace_period: float,
    mode: str,
    obs: Observability | None = None,
) -> KdcChaosResult:
    """One full workload against a *replicas*-node KDC deployment.

    The run's control-plane metrics (client request latency, failovers,
    breaker state, view changes) land in *obs*, which rides along on the
    result as a plain ``obs`` attribute (not a dataclass field, so
    seeded-run ``asdict`` comparisons keep working).
    """
    obs = obs if obs is not None else Observability()
    sim = Simulator()
    injector = FaultInjector(
        sim, _fault_plan(config, replicas), seed=config.seed + 1
    )
    network = ServiceNetwork(
        sim, injector, latency=config.rpc_latency, registry=obs.registry
    )
    replica_ids = [f"kdc{i}" for i in range(replicas)]
    cluster = KDCCluster(network, replica_ids, MASTER_KEY, faults=injector)
    cluster.register_topic(
        config.topic, CompositeKeySpace({}), config.epoch_length
    )
    injector.install()

    # The publisher holds prefetched epoch keys (it seals against a local
    # stateless replica); the measured degradation is the *subscriber*
    # renewal path, which is where the outage bites.
    publisher_kdc = KDC(master_key=MASTER_KEY)
    publisher_kdc.register_topic(
        config.topic, CompositeKeySpace({}), config.epoch_length
    )
    publisher = Publisher("pub", publisher_kdc)
    schema_lookup = lambda t: publisher_kdc.config_for(t).schema  # noqa: E731

    subscribers: list[Subscriber] = []
    clients: list[KDCClient] = []
    managers: list[RenewalManager] = []
    subscription = Filter.topic(config.topic)
    for index in range(config.subscribers):
        subscriber = Subscriber(f"sub{index}", grace_period=grace_period)
        client = KDCClient(
            network,
            f"sub{index}",
            replica_ids,
            policy=ClientRetryPolicy(),
            seed=config.seed + 10 + index,
        )
        manager = RenewalManager(
            subscriber, client, renew_lead_time=config.renew_lead_time
        )
        manager.add_subscription(subscription, at_time=0.0)
        subscribers.append(subscriber)
        clients.append(client)
        managers.append(manager)

    counters = {"attempted": 0, "decrypted": 0}

    def deliver(sealed) -> None:
        for subscriber in subscribers:
            counters["attempted"] += 1
            opened = subscriber.receive(sealed, schema_lookup, at_time=sim.now)
            if opened is not None:
                counters["decrypted"] += 1

    def publish(k: int) -> None:
        sealed = publisher.publish(
            Event(
                {"topic": config.topic, "k": k, "payload": f"m{k}"},
                publisher="pub",
            ),
            secret_attributes={"payload"},
            at_time=sim.now,
        )
        sim.schedule(config.delivery_latency, lambda: deliver(sealed))

    for k in range(config.events):
        sim.schedule_at(k / config.publish_rate, lambda k=k: publish(k))

    def tick() -> None:
        for manager in managers:
            manager.tick(sim.now)
        if sim.now < config.duration + config.drain:
            sim.schedule(config.tick_interval, tick)

    sim.schedule(config.tick_interval, tick)
    sim.run(until=config.duration + config.drain)

    result = KdcChaosResult(
        mode=mode,
        replicas=replicas,
        grace_period=grace_period,
        attempted=counters["attempted"],
        decrypted=counters["decrypted"],
        grace_opens=sum(s.stats.grace_opens for s in subscribers),
        renewals=sum(m.stats.renewals for m in managers),
        renewal_failures=sum(m.stats.renewal_failures for m in managers),
        late_renewals=sum(m.stats.late_renewals for m in managers),
        client_failovers=sum(c.stats.failovers for c in clients),
        client_retries=sum(c.stats.retries for c in clients),
        client_timeouts=sum(c.stats.timeouts for c in clients),
        breaker_opens=sum(c.stats.breaker_opens for c in clients),
        view_changes=cluster.stats.view_changes,
        messages_lost=network.stats.lost,
        converged=cluster.converged(),
    )
    result.obs = obs
    return result


@dataclass
class KdcChaosReport:
    """Everything one ``repro chaos --scenario kdc`` invocation measured."""

    config: KdcChaosConfig
    #: The epoch boundary the outage straddles.
    boundary: float
    baseline: KdcChaosResult
    replicated: KdcChaosResult


def run_kdc_chaos(config: KdcChaosConfig | None = None) -> KdcChaosReport:
    """Baseline (1 replica, no grace) vs replicated (N replicas + grace)."""
    config = config if config is not None else KdcChaosConfig()
    return KdcChaosReport(
        config=config,
        boundary=config.boundary(),
        baseline=run_kdc_chaos_mode(
            config, replicas=1, grace_period=0.0, mode="single-kdc"
        ),
        replicated=run_kdc_chaos_mode(
            config,
            replicas=config.replicas,
            grace_period=config.grace_period,
            mode="replicated",
        ),
    )


def _kdc_metrics_section(result: KdcChaosResult) -> str:
    obs = getattr(result, "obs", None)
    if obs is None:
        return f"Metrics snapshot ({result.mode}): not collected"
    registry = obs.registry
    latencies = [
        h for h in registry.series("kdc_client_request_latency_seconds")
        if h.count
    ]
    if latencies:
        p95s = sorted(h.quantile(0.95) * 1e3 for h in latencies)
        total = sum(h.count for h in latencies)
        latency = (
            f"p95 across {len(latencies)} clients "
            f"{p95s[0]:.1f}-{p95s[-1]:.1f}ms (n={total})"
        )
    else:
        latency = "no observations"
    view = registry.get("kdc_view")
    lines = [
        f"Metrics snapshot ({result.mode})",
        f"  renewal latency : {latency}",
        f"  control plane   : "
        f"{int(registry.total('kdc_client_requests_total'))} requests, "
        f"{int(registry.total('kdc_client_retries_total'))} retries, "
        f"{int(registry.total('kdc_client_failovers_total'))} failovers, "
        f"{int(registry.total('kdc_client_timeouts_total'))} timeouts, "
        f"{int(registry.total('kdc_client_breaker_opens_total'))} "
        f"breaker opens",
        f"  cluster         : "
        f"{int(registry.total('kdc_view_changes_total'))} view changes, "
        f"final view {int(view.value) if view is not None else 0}",
    ]
    return "\n".join(lines)


def format_kdc_chaos_report(report: KdcChaosReport) -> str:
    """Render the KDC chaos report as a paper-style table."""
    config = report.config
    header = (
        f"KDC chaos run: seed {config.seed}, {config.duration:.0f}s x "
        f"{config.publish_rate:.0f} ev/s to {config.subscribers} "
        f"subscribers, epoch {config.epoch_length:.1f}s, "
        f"{config.outage_duration:.1f}s outage straddling the boundary at "
        f"t={report.boundary:.2f}s"
    )
    rows = [
        (
            result.mode,
            result.replicas,
            result.decrypt_rate,
            result.grace_opens,
            result.renewal_failures,
            result.late_renewals,
            result.client_failovers,
            result.view_changes,
            "yes" if result.converged else "NO",
        )
        for result in (report.baseline, report.replicated)
    ]
    table = format_table(
        ["deployment", "N", "decrypt", "grace", "renew fail",
         "late", "failovers", "views", "converged"],
        rows,
        title="End-to-end decrypt success under KDC outage",
    )
    return "\n\n".join(
        [header, table, _kdc_metrics_section(report.replicated)]
    )
