"""Fast self-verification of the reproduction's headline claims.

``python -m repro verify`` runs a reduced-scale version of every
experiment family and checks the paper's qualitative claims (and, where
the paper's numbers are closed-form, the exact values).  It is the
one-minute counterpart of the full benchmark suite, intended as a smoke
test after installation or modification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one verification check."""

    name: str
    passed: bool
    detail: str


def _check_table1() -> CheckResult:
    from repro.analysis.costs import NAKTCostModel

    expected = {10**2: 12, 10**3: 18, 10**4: 26}
    measured = {
        size: math.ceil(NAKTCostModel(size).max_keys()) for size in expected
    }
    return CheckResult(
        "Table 1: worst-case key counts",
        measured == expected,
        f"{measured} vs paper {expected}",
    )


def _check_table5() -> CheckResult:
    from repro.analysis.models import cost_ratio_lower_bound

    expected = {10: 1.81, 10**2: 9.04, 10**3: 60.18, 10**4: 451.81}
    passed = all(
        abs(cost_ratio_lower_bound(10**3, 10**4, span) - value) / value < 0.01
        for span, value in expected.items()
    )
    return CheckResult(
        "Table 5: cost-ratio lower bounds",
        passed,
        "all four ratios within 1% of the paper",
    )


def _check_matching_iff_derivable() -> CheckResult:
    from repro.core.nakt import NumericKeySpace

    space = NumericKeySpace("v", 128)
    topic_key = bytes(range(16))
    grants = space.authorization_keys(topic_key, 40, 90)
    failures = 0
    for value in range(128):
        leaf, expected_key = space.encryption_key(topic_key, value)
        ancestors = [g for g in grants if g[0].is_prefix_of(leaf)]
        derivable = bool(ancestors)
        if derivable != (40 <= value <= 90):
            failures += 1
        elif derivable:
            derived, _ = NumericKeySpace.derive_encryption_key(
                ancestors[0], leaf
            )
            if derived != expected_key:
                failures += 1
    return CheckResult(
        "Core guarantee: derivable iff matching",
        failures == 0,
        f"{failures} disagreements over 128 values",
    )


def _check_key_management_scaling() -> CheckResult:
    from repro.harness.keymgmt import run_key_management

    rows = run_key_management([2, 8])
    psguard_flat = (
        rows[1].psguard_keys_per_subscriber
        <= 1.6 * rows[0].psguard_keys_per_subscriber
    )
    group_grows = (
        rows[1].group_keys_per_publisher > rows[0].group_keys_per_publisher
    )
    return CheckResult(
        "Figs 3-5: PSGuard flat, groups grow",
        psguard_flat and group_grows,
        f"PSGuard {rows[0].psguard_keys_per_subscriber:.0f}->"
        f"{rows[1].psguard_keys_per_subscriber:.0f} keys/sub, "
        f"groups {rows[0].group_keys_per_publisher:.0f}->"
        f"{rows[1].group_keys_per_publisher:.0f} keys/pub",
    )


def _check_entropy_smoothing() -> CheckResult:
    from repro.routing.experiment import (
        RoutingExperimentConfig,
        run_dissemination,
    )

    config = RoutingExperimentConfig(
        num_tokens=32, tokens_per_subscriber=8, events=1200
    )
    single = run_dissemination(config, 1)
    smoothed = run_dissemination(config, 5)
    passed = (
        smoothed.s_app > single.s_app
        and smoothed.s_app <= smoothed.s_max + 1e-9
        and smoothed.s_app >= smoothed.s_act - 0.15
    )
    return CheckResult(
        "Fig 6: multi-path smoothing raises apparent entropy",
        passed,
        f"S_app {single.s_app:.2f} -> {smoothed.s_app:.2f} bits "
        f"(S_act {smoothed.s_act:.2f}, S_max {smoothed.s_max:.2f})",
    )


def _check_construction_saturates() -> CheckResult:
    from repro.routing.experiment import construction_cost_curve

    curve = dict(construction_cost_curve(ind_values=[1, 5, 10]))
    passed = (
        curve[1] == 1.0
        and 1.5 <= curve[5] <= 4.0
        and curve[10] - curve[5] < curve[5] - curve[1]
    )
    return CheckResult(
        "Fig 8: construction cost ~3x at ind=5, saturating",
        passed,
        f"1.0 / {curve[5]:.2f} / {curve[10]:.2f}",
    )


def _check_cache_effect() -> CheckResult:
    from repro.harness.endtoend import measure_cache_effect

    rows = measure_cache_effect(cache_sizes_kb=(0, 64), events=250)
    passed = (
        rows[1].publisher_hash_per_event
        < 0.5 * rows[0].publisher_hash_per_event
    )
    return CheckResult(
        "Fig 11: key cache cuts derivation work",
        passed,
        f"{rows[0].publisher_hash_per_event:.1f} -> "
        f"{rows[1].publisher_hash_per_event:.2f} hashes/event",
    )


def _check_end_to_end_confidentiality() -> CheckResult:
    from repro.core import (
        KDC, CompositeKeySpace, NumericKeySpace, Publisher, Subscriber,
    )
    from repro.siena import Event, Filter

    kdc = KDC()
    kdc.register_topic(
        "t", CompositeKeySpace({"v": NumericKeySpace("v", 64)})
    )
    publisher = Publisher("P", kdc)
    sealed = publisher.publish(
        Event({"topic": "t", "v": 10, "message": "secret"})
    )
    allowed = Subscriber("in")
    allowed.add_grant(kdc.authorize("in", Filter.numeric_range("t", "v", 0, 20)))
    denied = Subscriber("out")
    denied.add_grant(kdc.authorize("out", Filter.numeric_range("t", "v", 30, 60)))
    lookup = lambda name: kdc.config_for(name).schema  # noqa: E731
    opened = allowed.receive(sealed, lookup)
    blocked = denied.receive(sealed, lookup)
    passed = (
        opened is not None
        and opened.event["message"] == "secret"
        and blocked is None
        and b"secret" not in sealed.ciphertext
    )
    return CheckResult(
        "End to end: matching reads, non-matching locked out",
        passed,
        "publish -> seal -> deliver -> derive -> decrypt",
    )


CHECKS: list[Callable[[], CheckResult]] = [
    _check_table1,
    _check_table5,
    _check_matching_iff_derivable,
    _check_end_to_end_confidentiality,
    _check_key_management_scaling,
    _check_entropy_smoothing,
    _check_construction_saturates,
    _check_cache_effect,
]


def run_verification() -> list[CheckResult]:
    """Run every check; exceptions become failures."""
    results = []
    for check in CHECKS:
        try:
            results.append(check())
        except Exception as error:  # noqa: BLE001 - report, don't crash
            results.append(
                CheckResult(check.__name__, False, f"raised {error!r}")
            )
    return results


def format_verification(results: list[CheckResult]) -> str:
    """Human-readable verification report."""
    lines = []
    for result in results:
        marker = "PASS" if result.passed else "FAIL"
        lines.append(f"[{marker}] {result.name}")
        lines.append(f"       {result.detail}")
    passed = sum(result.passed for result in results)
    lines.append(f"{passed}/{len(results)} checks passed")
    return "\n".join(lines)
