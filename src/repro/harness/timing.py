"""Calibration of cryptographic primitive costs on local hardware.

The paper reports key-generation/derivation costs in microseconds on its
550 MHz Pentium III testbed; we measure the same primitives here and use
the measured constants both to regenerate Tables 1-2 and to drive the
discrete-event simulator's service times (Figures 9-11).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import lru_cache

from repro.crypto.cipher import decrypt, encrypt
from repro.crypto.hashes import H
from repro.crypto.prf import F, KH
from repro.siena.events import Event
from repro.siena.filters import Filter


def _time_per_call(function, iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        function()
    return (time.perf_counter() - start) / iterations


@dataclass(frozen=True)
class CryptoCosts:
    """Measured per-operation costs, in seconds."""

    hash_s: float          # one H (child-key derivation step)
    keyed_hash_s: float    # one KH / F (HMAC)
    encrypt_256_s: float   # AES-128-CBC encrypt of a 256-byte payload
    decrypt_256_s: float   # AES-128-CBC decrypt of a 256-byte payload
    encrypt_key_s: float   # AES-128-CBC wrap of a single 16-byte key
    plain_match_s: float   # one plaintext filter-vs-event match
    token_match_s: float   # one tokenized constraint check (one F)
    serialize_s: float     # wire-encode one 256-byte event (per-send cost)

    @property
    def hash_us(self) -> float:
        """Hash cost in microseconds (Tables 1-2 unit)."""
        return self.hash_s * 1e6


@lru_cache(maxsize=None)
def measure_crypto_costs(iterations: int = 5000) -> CryptoCosts:
    """Measure all primitive costs once per process per iteration count.

    The cache is unbounded and keyed on *iterations*: with ``maxsize=1``
    a call at a different iteration count would evict the previous
    measurement, so alternating callers (e.g. a quick harness probe next
    to the full calibration) would silently re-run the benchmark -- and
    get freshly jittered constants -- on every call.
    """
    key = os.urandom(16)
    payload = os.urandom(256)
    ciphertext = encrypt(key, payload)
    event = Event({"topic": "calibration", "value": 42})
    wire_event = Event(
        {"topic": "calibration", "value": 42, "message": "x" * 256}
    )
    subscription = Filter.numeric_range("calibration", "value", 10, 90)
    nonce = os.urandom(16)

    hash_s = _time_per_call(lambda: H(key + b"\x01"), iterations)
    keyed_hash_s = _time_per_call(lambda: KH(key, b"x"), iterations)
    encrypt_s = _time_per_call(lambda: encrypt(key, payload), iterations // 5)
    decrypt_s = _time_per_call(lambda: decrypt(key, ciphertext), iterations // 5)
    wrap_s = _time_per_call(lambda: encrypt(key, key), iterations // 5)
    match_s = _time_per_call(lambda: subscription.matches(event), iterations)
    token_s = _time_per_call(lambda: F(key, nonce), iterations)
    serialize_s = _time_per_call(wire_event.to_bytes, iterations // 5)
    return CryptoCosts(
        hash_s=hash_s,
        keyed_hash_s=keyed_hash_s,
        encrypt_256_s=encrypt_s,
        decrypt_256_s=decrypt_s,
        encrypt_key_s=wrap_s,
        plain_match_s=match_s,
        token_match_s=token_s,
        serialize_s=serialize_s,
    )
