"""Chaos harness: workloads under injected faults, measured end to end.

Two complementary experiments, both exactly reproducible for a fixed
seed, validate the fault-tolerance story of Section 4.2.1 against
*dynamic* failures rather than the static dropper adversary:

- **Tree chaos** runs the timed Siena overlay
  (:class:`~repro.net.simnet.SimulatedPubSub`) under a random
  :class:`~repro.net.faults.FaultPlan` -- broker crashes with restarts
  plus background link loss -- once with the fire-and-forget transport
  and once with the reliable at-least-once stack (per-hop acks, retries,
  heartbeat failure detection, subscription replay).  It reports
  delivery rate, duplicate rate, dead letters, retry overhead, and the
  failure detector's detection/recovery latencies.

- **Multipath chaos** drives the paper's redundant multi-path router
  (:class:`~repro.routing.faulttolerance.RedundantRouter`) hop by hop on
  the simulator clock through the same dynamic fault state, composing
  per-hop retries with path redundancy ``k``.  The measured
  fire-and-forget rate is compared against the paper's
  ``1 - (1 - (1-f)^d)^k`` loss model evaluated at the plan's effective
  per-hop failure probability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Hashable

from repro.harness.reporting import format_table
from repro.net.faults import FaultInjector, FaultPlan
from repro.net.sim import Simulator
from repro.net.simnet import RetryPolicy, SimulatedPubSub
from repro.obs import Observability
from repro.routing.faulttolerance import (
    RedundantRouter,
    analytic_delivery_rate,
)
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.topology.multipath import MultipathNetwork
from repro.workloads.zipf import zipf_weights


@dataclass
class ChaosConfig:
    """One chaos run's knobs; every randomness source derives from *seed*."""

    seed: int = 7
    #: Seconds of publishing; faults are scheduled within this horizon.
    duration: float = 5.0
    #: Extra simulated seconds for in-flight retries/replays to settle.
    drain: float = 3.0
    publish_rate: float = 40.0
    crash_probability: float = 0.2
    crash_duration: float = 0.5
    link_loss: float = 0.05
    #: Path redundancy ``k`` for the reliable multipath run.
    redundancy: int = 2
    # Tree overlay shape.
    num_brokers: int = 15
    arity: int = 2
    # Multipath overlay shape (``G_ind``).
    depth: int = 3
    ind: int = 4
    tokens: int = 16
    hop_latency: float = 0.010
    # Faster heartbeats than the library default: the demo's outages
    # last ~0.5s, so detection must complete within ~0.3s for the
    # failure detector (and its parking/recovery path) to participate.
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(heartbeat_interval=0.1)
    )

    @property
    def events(self) -> int:
        return max(1, int(self.publish_rate * self.duration))


@dataclass
class TreeChaosResult:
    """Outcome of one tree-overlay chaos run.

    The run's :class:`~repro.obs.Observability` bundle rides along as a
    plain ``obs`` attribute (deliberately not a dataclass field, so
    ``dataclasses.asdict`` equality between seeded runs keeps comparing
    only the measured numbers).
    """

    mode: str
    expected: int
    delivered: int
    duplicates: int
    data_sends: int
    retries: int
    dead_letters: int
    acks_sent: int
    heartbeats_sent: int
    failures_detected: int
    recoveries_detected: int
    subscriptions_replayed: int
    mean_detection_latency: float
    mean_recovery_latency: float

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.expected if self.expected else 0.0

    @property
    def duplicate_rate(self) -> float:
        """Duplicate arrivals suppressed, per expected delivery."""
        return self.duplicates / self.expected if self.expected else 0.0

    @property
    def retry_overhead(self) -> float:
        """Fraction of data transmissions that were retransmissions."""
        return self.retries / self.data_sends if self.data_sends else 0.0


@dataclass
class MultipathChaosResult:
    """Outcome of one multipath chaos run.

    Carries its :class:`~repro.obs.Observability` bundle as a plain
    ``obs`` attribute, exactly like :class:`TreeChaosResult`.
    """

    mode: str
    redundancy: int
    attempted: int
    delivered: int
    duplicates: int
    copies_sent: int
    hop_sends: int
    retries: int
    dead_copies: int
    #: The paper's loss model at the plan's effective per-hop failure
    #: probability (fire-and-forget prediction for this redundancy).
    analytic_rate: float

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.attempted if self.attempted else 0.0

    @property
    def duplicate_rate(self) -> float:
        """Redundant copies arriving after the first, per event."""
        return self.duplicates / self.attempted if self.attempted else 0.0

    @property
    def retry_overhead(self) -> float:
        return self.retries / self.hop_sends if self.hop_sends else 0.0


def _tree_fault_plan(config: ChaosConfig) -> FaultPlan:
    # The root hosts the publisher; the paper's model keeps the
    # publishing site up, so random crashes target brokers 1..n-1.
    return FaultPlan.random(
        range(1, config.num_brokers),
        config.duration,
        seed=config.seed,
        crash_probability=config.crash_probability,
        crash_duration=config.crash_duration,
        link_loss=config.link_loss,
    )


def run_tree_chaos(
    config: ChaosConfig,
    reliable: bool,
    obs: Observability | None = None,
) -> TreeChaosResult:
    """One tree-overlay workload under the config's fault plan."""
    obs = obs if obs is not None else Observability()
    sim = Simulator()
    injector = FaultInjector(sim, _tree_fault_plan(config), seed=config.seed + 1)
    net = SimulatedPubSub(
        sim,
        config.num_brokers,
        arity=config.arity,
        link_latency=config.hop_latency,
        reliability=replace(config.retry) if reliable else None,
        faults=injector,
        seed=config.seed + 2,
        obs=obs,
    )
    injector.install()
    subscription = Filter.topic("chaos")
    leaves = net.leaf_ids()
    for index, leaf in enumerate(leaves):
        subscriber_id = f"sub{index}"
        net.attach_subscriber(subscriber_id, leaf)
        net.subscribe(subscriber_id, subscription)
    for k in range(config.events):
        net.publish(
            Event({"topic": "chaos", "k": k}),
            delay=k / config.publish_rate,
        )
    sim.run(until=config.duration + config.drain)
    stats = net.rstats
    result = TreeChaosResult(
        mode="reliable" if reliable else "fire-and-forget",
        expected=config.events * len(leaves),
        delivered=len(net.deliveries),
        duplicates=stats.duplicates_suppressed + stats.duplicate_deliveries,
        data_sends=stats.data_sends,
        retries=stats.retries,
        dead_letters=stats.dead_letters,
        acks_sent=stats.acks_sent,
        heartbeats_sent=stats.heartbeats_sent,
        failures_detected=stats.failures_detected,
        recoveries_detected=stats.recoveries_detected,
        subscriptions_replayed=stats.subscriptions_replayed,
        mean_detection_latency=stats.mean_detection_latency(),
        mean_recovery_latency=stats.mean_recovery_latency(),
    )
    result.obs = obs
    return result


def run_multipath_chaos(
    config: ChaosConfig,
    reliable: bool,
    redundancy: int,
    obs: Observability | None = None,
) -> MultipathChaosResult:
    """Redundant multi-path dissemination under dynamic faults.

    Each event travels over ``redundancy`` node-disjoint paths chosen by
    :class:`RedundantRouter`; every hop is subject to the fault state at
    traversal time (link loss sampled per transmission, crashed brokers
    swallow copies).  With *reliable*, a hop that fails is retried with
    the config's backoff policy up to the retry budget.

    Every event is traced: one trace per publication, a ``hop``/``drop``
    span per transmission attempt (tagged with its path index and
    attempt number), and a ``deliver`` span at first arrival, so any
    event's multipath fan-out and retransmissions reconstruct from the
    tracer alone.
    """
    obs = obs if obs is not None else Observability()
    tracer = obs.tracer
    c_hop_retries = obs.registry.counter("multipath_hop_retries_total")
    h_e2e = obs.registry.histogram("multipath_e2e_latency_seconds")
    sim = Simulator()
    network = MultipathNetwork(
        depth=config.depth, arity=max(config.ind, 2), ind=config.ind
    )
    interior = [node for node in network.brokers() if len(node) >= 1]
    plan = FaultPlan.random(
        interior,
        config.duration,
        seed=config.seed,
        crash_probability=config.crash_probability,
        crash_duration=config.crash_duration,
        link_loss=config.link_loss,
    )
    injector = FaultInjector(sim, plan, seed=config.seed + 1)
    injector.install()
    tokens = [f"t{i}" for i in range(config.tokens)]
    weights = zipf_weights(config.tokens)
    router = RedundantRouter(
        network,
        dict(zip(tokens, weights)),
        redundancy=redundancy,
        ind_max=config.ind,
        seed=config.seed + 2,
        registry=obs.registry,
    )
    rng = random.Random(config.seed + 3)
    policy = config.retry
    subscribers = network.subscribers()

    counters = {
        "delivered": 0,
        "duplicates": 0,
        "copies_sent": 0,
        "hop_sends": 0,
        "retries": 0,
        "dead_copies": 0,
    }
    arrivals: dict[int, int] = {}
    started: dict[int, float] = {}

    def hop_attempt(
        seq: int, path: list[Hashable], index: int, attempt: int,
        path_id: int,
    ) -> None:
        source, target = path[index], path[index + 1]
        counters["hop_sends"] += 1
        if attempt > 0:
            counters["retries"] += 1
            c_hop_retries.inc()
        survives = injector.deliverable(source, target)
        delay = config.hop_latency + injector.extra_latency(source, target)
        sent_at = sim.now

        def arrive() -> None:
            terminal = index + 1 == len(path) - 1
            if survives and (terminal or injector.broker_up(target)):
                tracer.span(
                    seq, "hop", str(target), sent_at, end=sim.now,
                    attempt=attempt, path=path_id,
                    link=f"{source}->{target}",
                )
                if terminal:
                    arrivals[seq] = arrivals.get(seq, 0) + 1
                    if arrivals[seq] == 1:
                        counters["delivered"] += 1
                        h_e2e.observe(sim.now - started[seq])
                        tracer.span(
                            seq, "deliver", str(target), started[seq],
                            end=sim.now, path=path_id,
                        )
                    else:
                        counters["duplicates"] += 1
                else:
                    hop_attempt(seq, path, index + 1, 0, path_id)
                return
            tracer.span(
                seq, "drop", str(target), sent_at, end=sim.now,
                attempt=attempt, path=path_id,
                link=f"{source}->{target}",
            )
            # No ack will come back for this copy.
            if reliable and attempt + 1 < policy.max_attempts:
                sim.schedule(
                    policy.timeout_for(attempt, rng),
                    lambda: hop_attempt(seq, path, index, attempt + 1,
                                        path_id),
                )
            else:
                counters["dead_copies"] += 1

        sim.schedule(delay, arrive)

    def launch(seq: int) -> None:
        token = rng.choices(tokens, weights)[0]
        subscriber = rng.choice(subscribers)
        paths = router.route_redundant(token, subscriber)
        counters["copies_sent"] += len(paths)
        started[seq] = sim.now
        tracer.start_trace(seq, at=sim.now, token=str(token))
        tracer.span(seq, "publish", str(paths[0][0]), sim.now,
                    fan_out=len(paths))
        for path_id, path in enumerate(paths):
            hop_attempt(seq, path, 0, 0, path_id)

    for seq in range(config.events):
        sim.schedule(seq / config.publish_rate, lambda seq=seq: launch(seq))
    sim.run()

    down_fraction = plan.mean_down_fraction(interior, config.duration)
    per_hop_failure = (
        config.link_loss + down_fraction - config.link_loss * down_fraction
    )
    result = MultipathChaosResult(
        mode="reliable" if reliable else "fire-and-forget",
        redundancy=redundancy,
        attempted=config.events,
        delivered=counters["delivered"],
        duplicates=counters["duplicates"],
        copies_sent=counters["copies_sent"],
        hop_sends=counters["hop_sends"],
        retries=counters["retries"],
        dead_copies=counters["dead_copies"],
        analytic_rate=analytic_delivery_rate(
            per_hop_failure, config.depth, redundancy
        ),
    )
    result.obs = obs
    return result


@dataclass
class ChaosReport:
    """Everything one ``repro chaos`` invocation measured."""

    config: ChaosConfig
    tree_baseline: TreeChaosResult
    tree_reliable: TreeChaosResult
    multipath_baseline: MultipathChaosResult
    multipath_reliable: MultipathChaosResult


def run_chaos(config: ChaosConfig | None = None) -> ChaosReport:
    """Run all four chaos experiments for *config* (default seeds)."""
    config = config if config is not None else ChaosConfig()
    return ChaosReport(
        config=config,
        tree_baseline=run_tree_chaos(config, reliable=False),
        tree_reliable=run_tree_chaos(config, reliable=True),
        multipath_baseline=run_multipath_chaos(
            config, reliable=False, redundancy=1
        ),
        multipath_reliable=run_multipath_chaos(
            config, reliable=True, redundancy=config.redundancy
        ),
    )


def _format_latency(histogram) -> str:
    if histogram is None or not histogram.count:
        return "no observations"
    quantiles = " ".join(
        f"p{int(q * 100)}={histogram.quantile(q) * 1e3:.1f}ms"
        for q in histogram.tracked_quantiles
    )
    return f"{quantiles} (n={histogram.count})"


def _format_hop_retries(registry, name: str, limit: int = 6) -> str:
    series = [
        metric for metric in registry.series(name) if metric.value > 0
    ]
    if not series:
        return "none"
    series.sort(key=lambda metric: -metric.value)
    shown = ", ".join(
        f"{dict(metric.labels).get('link', 'total')}:"
        f"{int(metric.value)}"
        for metric in series[:limit]
    )
    hidden = len(series) - limit
    return shown + (f" (+{hidden} more links)" if hidden > 0 else "")


def _metrics_section(title: str, obs: Observability | None,
                     latency_metric: str, retry_metric: str) -> str:
    if obs is None:
        return f"Metrics snapshot ({title}): not collected"
    summary = obs.tracer.summary()
    histograms = obs.registry.series(latency_metric)
    latency = _format_latency(histograms[0] if histograms else None)
    lines = [
        f"Metrics snapshot ({title})",
        f"  e2e latency   : {latency}",
        f"  hop retries   : "
        f"{_format_hop_retries(obs.registry, retry_metric)}",
        f"  traces        : {summary['traces_started']} started, "
        f"{summary['traces_delivered']} delivered, "
        f"{summary['total_retransmits']} retransmits, "
        f"{summary['total_drops']} drops, "
        f"{summary['dropped_spans']} dropped spans",
    ]
    return "\n".join(lines)


def format_chaos_report(report: ChaosReport) -> str:
    """Render the chaos report as paper-style tables."""
    config = report.config
    header = (
        f"Chaos run: seed {config.seed}, {config.duration:.0f}s x "
        f"{config.publish_rate:.0f} ev/s, crash p={config.crash_probability}"
        f" ({config.crash_duration:.1f}s outages), link loss "
        f"{config.link_loss:.0%}"
    )
    tree_rows = [
        (
            result.mode,
            result.delivery_rate,
            result.duplicate_rate,
            result.dead_letters,
            result.retry_overhead,
            result.failures_detected,
            result.mean_detection_latency,
            result.mean_recovery_latency,
        )
        for result in (report.tree_baseline, report.tree_reliable)
    ]
    tree_table = format_table(
        ["transport", "delivery", "dup rate", "dead", "retry ovh",
         "detects", "t_detect", "t_recover"],
        tree_rows,
        title=f"Tree overlay ({config.num_brokers} brokers, "
        f"arity {config.arity})",
    )
    multipath_rows = [
        (
            result.mode,
            result.redundancy,
            result.delivery_rate,
            result.analytic_rate,
            result.duplicate_rate,
            result.retry_overhead,
            result.dead_copies,
        )
        for result in (
            report.multipath_baseline,
            report.multipath_reliable,
        )
    ]
    multipath_table = format_table(
        ["transport", "k", "delivery", "analytic", "dup rate",
         "retry ovh", "dead copies"],
        multipath_rows,
        title=f"Multipath G_ind (depth {config.depth}, ind {config.ind})",
    )
    tree_metrics = _metrics_section(
        "reliable tree",
        getattr(report.tree_reliable, "obs", None),
        "net_delivery_latency_seconds",
        "net_hop_retries_total",
    )
    multipath_metrics = _metrics_section(
        f"reliable multipath k={report.multipath_reliable.redundancy}",
        getattr(report.multipath_reliable, "obs", None),
        "multipath_e2e_latency_seconds",
        "multipath_hop_retries_total",
    )
    return "\n\n".join([
        header, tree_table, multipath_table, tree_metrics,
        multipath_metrics,
    ])
