"""The ``repro metrics`` workload: one instrumented run, one snapshot.

Runs a small seeded pub-sub workload on the timed overlay -- reliable
at-least-once delivery under broker crashes and link loss -- with a full
:class:`~repro.obs.Observability` bundle threaded through, then exports
the registry + tracer snapshot (JSON or Prometheus text).

``check_invariants`` asserts the accounting identities the
instrumentation must keep (used by the CI smoke job):

- every published event started exactly one trace;
- no span was recorded against an unknown trace id (``dropped_spans``
  is zero) and none arrived after an eviction;
- the tracer's delivery count matches the overlay's delivery log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.faults import FaultInjector, FaultPlan
from repro.net.sim import Simulator
from repro.net.simnet import RetryPolicy, SimulatedPubSub
from repro.obs import Observability
from repro.siena.events import Event
from repro.siena.filters import Filter


@dataclass
class MetricsRunConfig:
    """Knobs of the instrumented workload; all randomness from *seed*."""

    seed: int = 7
    duration: float = 3.0
    drain: float = 2.0
    publish_rate: float = 30.0
    num_brokers: int = 7
    arity: int = 2
    crash_probability: float = 0.15
    crash_duration: float = 0.4
    link_loss: float = 0.05
    hop_latency: float = 0.010
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(heartbeat_interval=0.1)
    )

    @property
    def events(self) -> int:
        return max(1, int(self.publish_rate * self.duration))


@dataclass
class MetricsRunResult:
    """One instrumented workload's outcome."""

    config: MetricsRunConfig
    obs: Observability
    published: int
    expected: int
    delivered: int

    def snapshot(self) -> dict:
        document = self.obs.snapshot()
        document["workload"] = {
            "published": self.published,
            "expected": self.expected,
            "delivered": self.delivered,
        }
        return document


def run_metrics_workload(
    config: MetricsRunConfig | None = None,
) -> MetricsRunResult:
    """Run the instrumented workload and return its observability bundle."""
    config = config if config is not None else MetricsRunConfig()
    obs = Observability()
    sim = Simulator()
    plan = FaultPlan.random(
        range(1, config.num_brokers),
        config.duration,
        seed=config.seed,
        crash_probability=config.crash_probability,
        crash_duration=config.crash_duration,
        link_loss=config.link_loss,
    )
    injector = FaultInjector(sim, plan, seed=config.seed + 1)
    net = SimulatedPubSub(
        sim,
        config.num_brokers,
        arity=config.arity,
        link_latency=config.hop_latency,
        reliability=config.retry,
        faults=injector,
        seed=config.seed + 2,
        obs=obs,
    )
    injector.install()
    subscription = Filter.topic("metrics")
    leaves = net.leaf_ids()
    for index, leaf in enumerate(leaves):
        subscriber_id = f"sub{index}"
        net.attach_subscriber(subscriber_id, leaf)
        net.subscribe(subscriber_id, subscription)
    for k in range(config.events):
        net.publish(
            Event({"topic": "metrics", "k": k}),
            delay=k / config.publish_rate,
        )
    sim.run(until=config.duration + config.drain)
    return MetricsRunResult(
        config=config,
        obs=obs,
        published=config.events,
        expected=config.events * len(leaves),
        delivered=len(net.deliveries),
    )


def check_invariants(result: MetricsRunResult) -> list[str]:
    """Accounting identities the instrumentation must keep; [] == pass."""
    problems: list[str] = []
    tracer = result.obs.tracer
    if tracer.traces_started != result.published:
        problems.append(
            f"events published ({result.published}) != traces started "
            f"({tracer.traces_started})"
        )
    if tracer.dropped_spans:
        problems.append(
            f"{tracer.dropped_spans} spans recorded against unknown "
            "trace ids"
        )
    if tracer.late_spans:
        problems.append(
            f"{tracer.late_spans} spans arrived after trace eviction"
        )
    traced_deliveries = sum(
        trace.fan_out for trace in tracer.traces()
    )
    if traced_deliveries != result.delivered:
        problems.append(
            f"traced deliveries ({traced_deliveries}) != recorded "
            f"deliveries ({result.delivered})"
        )
    published_counter = result.obs.registry.total(
        "broker_events_received_total"
    )
    if published_counter <= 0:
        problems.append("broker counters never moved")
    return problems
