"""Overload harness: publisher storms against the flow-controlled overlay.

The chaos and recovery harnesses break the overlay from the *outside*
(crashes, loss, partitions); this one breaks it from the *inside* by
offering more load than the brokers can serve.  A Zipf-popular topic
storm is driven at a multiple of the sustainable rate through the
fire-and-forget overlay with :class:`~repro.flow.FlowControlPolicy`
backpressure engaged, and the run measures exactly the properties the
overload stack promises:

- **bounded queues** -- no broker ingress/egress queue ever exceeds its
  configured capacity, and the underlying CPU nodes never grow an
  unbounded backlog (the service pump admits one job at a time);
- **priority protection** -- high-priority events ride out a storm at
  several times capacity with >= 99% delivery while best-effort traffic
  is shed;
- **graceful degradation** -- a sweep over storm factors shows
  best-effort delivery degrading smoothly toward the analytic floor
  ``(1 - h*f) / ((1 - h) * f)`` (offered factor ``f``, high-priority
  fraction ``h``) instead of falling off a cliff;
- **recovery** -- after the storm, queues drain, the breaker closes,
  and steady-state traffic delivers fully again;
- **backpressure** -- a slowed-down interior broker makes its parents
  stall on credits instead of queueing without limit;
- **adaptation** -- an AIMD-paced publisher fed by shed signals sheds a
  smaller fraction of its storm than a fixed-rate one.

``check_overload`` encodes those six gates; everything derives from the
config seed, so a run is exactly reproducible.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.flow import (
    BEST_EFFORT,
    HIGH,
    AIMDRateLimiter,
    FlowControlPolicy,
    priority_of,
    with_priority,
)
from repro.harness.reporting import format_table
from repro.net.faults import BrokerSlowdown, FaultInjector, FaultPlan
from repro.net.sim import Simulator
from repro.net.simnet import SimulatedPubSub
from repro.obs import Observability
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.workloads.zipf import ZipfSampler


@dataclass
class OverloadConfig:
    """One overload run's knobs; every randomness source derives from *seed*.

    The root broker serves one event per ``broker_cost`` seconds, so the
    sustainable rate is ``1 / broker_cost``; all offered rates are
    expressed as multiples (*factors*) of it.
    """

    seed: int = 7
    num_brokers: int = 7
    arity: int = 2
    #: Seconds of broker CPU per event: capacity = 1 / broker_cost.
    broker_cost: float = 0.004
    link_latency: float = 0.002
    client_latency: float = 0.0005
    #: The bounded-queue / credit policy under test.
    queue_capacity: int = 32
    credit_window: int = 16
    shed_policy: str = "drop-oldest"
    #: Fraction of the storm published at HIGH priority.
    high_fraction: float = 0.1
    #: The headline storm's offered rate, as a multiple of capacity.
    storm_factor: float = 4.0
    #: Steady-state offered rate before/after the storm.
    steady_factor: float = 0.8
    steady_duration: float = 0.4
    storm_duration: float = 0.5
    #: Quiet seconds between storm end and the recovery phase.
    recovery_gap: float = 0.4
    #: Simulated seconds after the last publish for deliveries to settle.
    drain: float = 1.5
    # Zipf topic popularity (the paper's Gnutella-style workload).
    num_topics: int = 16
    zipf_exponent: float = 1.0
    topics_per_subscriber: int = 4
    #: Storm factors for the graceful-degradation sweep.
    sweep_factors: tuple = (1.0, 2.0, 3.0, 5.0)
    sweep_duration: float = 0.4
    #: Interior-broker slowdown for the backpressure run.
    slowdown_factor: float = 6.0
    slowdown_duration: float = 0.5
    # Acceptance gates.
    min_high_delivery: float = 0.99
    min_recovery_delivery: float = 0.99
    #: Measured best-effort ratio must stay above this fraction of the
    #: analytic ideal at every sweep point (the non-cliff gate).
    degradation_floor: float = 0.5
    #: Tolerance when requiring the sweep to degrade monotonically.
    monotone_tolerance: float = 0.05

    @property
    def capacity(self) -> float:
        """Sustainable event rate of one broker (events/second)."""
        return 1.0 / self.broker_cost

    @property
    def high_every(self) -> int:
        """Publish every n-th event at HIGH priority."""
        return max(1, round(1.0 / self.high_fraction))

    def flow_policy(self) -> FlowControlPolicy:
        return FlowControlPolicy(
            queue_capacity=self.queue_capacity,
            credit_window=self.credit_window,
            shed_policy=self.shed_policy,
        )

    def validate(self) -> None:
        if self.broker_cost <= 0:
            raise ValueError("broker_cost must be positive")
        if not 0.0 < self.high_fraction < 1.0:
            raise ValueError("high_fraction must be a fraction in (0, 1)")
        if self.storm_factor * self.high_fraction >= 1.0:
            raise ValueError(
                "storm_factor x high_fraction must stay below 1: the "
                "high-priority slice alone may not exceed capacity"
            )
        for factor in self.sweep_factors:
            if factor * self.high_fraction >= 1.0:
                raise ValueError(
                    f"sweep factor {factor} puts the high-priority slice "
                    "over capacity"
                )
        if self.storm_factor <= self.steady_factor:
            raise ValueError("storm_factor must exceed steady_factor")
        if self.steady_factor >= 1.0:
            raise ValueError("steady_factor must be below 1 (sustainable)")
        if self.num_brokers < 3:
            raise ValueError("need at least three brokers (root + leaves)")
        if self.topics_per_subscriber > self.num_topics:
            raise ValueError("topics_per_subscriber exceeds num_topics")


@dataclass
class PhaseStats:
    """Delivery outcome of one phase of the storm timeline."""

    name: str
    factor: float
    offered: int
    high_offered: int
    #: delivered / expected over events with at least one subscriber.
    high_delivery: float
    best_effort_delivery: float
    overall_delivery: float


@dataclass
class SweepPoint:
    """One storm factor of the graceful-degradation sweep."""

    factor: float
    high_delivery: float
    best_effort_delivery: float
    #: The analytic best-effort floor (1 - h*f) / ((1 - h) * f).
    ideal_best_effort: float
    shed_events: int


@dataclass
class OverloadResult:
    """Outcome of one overload run (storm, sweep, slowdown, adaptive).

    The headline run's :class:`~repro.obs.Observability` bundle rides
    along as a plain ``obs`` attribute.
    """

    phases: list[PhaseStats] = field(default_factory=list)
    sweep: list[SweepPoint] = field(default_factory=list)
    queue_capacity: int = 0
    peak_ingress_depth: int = 0
    peak_egress_depth: int = 0
    max_node_backlog: int = 0
    shed_events: int = 0
    breaker_final: str = "closed"
    queues_drained: bool = True
    # Backpressure (slow broker) run.
    credit_stalls: int = 0
    credit_stall_seconds: float = 0.0
    slowdown_peak_depth: int = 0
    slowdown_high_delivery: float = 0.0
    # Adaptive (AIMD) vs fixed-rate storm.
    static_offered: int = 0
    static_shed_fraction: float = 0.0
    adaptive_offered: int = 0
    adaptive_shed_fraction: float = 0.0
    adaptive_final_rate: float = 0.0

    @property
    def storm_phase(self) -> PhaseStats:
        return next(p for p in self.phases if p.name == "storm")

    @property
    def recovery_phase(self) -> PhaseStats:
        return next(p for p in self.phases if p.name == "recovery")


class _Workload:
    """Shared wiring: a flow-controlled overlay plus delivery accounting."""

    def __init__(
        self,
        config: OverloadConfig,
        obs: Observability,
        faults: FaultInjector | None = None,
    ):
        self.config = config
        self.sim = faults.sim if faults is not None else Simulator()
        self.obs = obs
        self.net = SimulatedPubSub(
            self.sim,
            num_brokers=config.num_brokers,
            arity=config.arity,
            link_latency=config.link_latency,
            client_latency=config.client_latency,
            broker_cost=lambda _b, _e: config.broker_cost,
            faults=faults,
            flow=config.flow_policy(),
            seed=config.seed,
            obs=obs,
        )
        self.topics = [f"t{rank:02d}" for rank in range(config.num_topics)]
        self.publisher_sampler = ZipfSampler(
            self.topics, config.zipf_exponent, seed=config.seed
        )
        #: topic -> number of subscribers (= expected deliveries/event).
        self.audience: Counter = Counter()
        for index, leaf in enumerate(self.net.leaf_ids()):
            subscriber_id = f"sub{index}"
            self.net.attach_subscriber(subscriber_id, leaf)
            chosen = ZipfSampler(
                self.topics,
                config.zipf_exponent,
                seed=config.seed * 1000 + index + 1,
            ).sample_distinct(config.topics_per_subscriber)
            for topic in chosen:
                self.net.subscribe(subscriber_id, Filter.topic(topic))
                self.audience[topic] += 1
        #: seq -> (tag, priority, expected deliveries)
        self.ledger: dict[int, tuple[str, int, int]] = {}
        self._published = 0

    def publish_one(self, tag: str, delay: float = 0.0) -> int:
        """Publish the next storm event; every n-th one is HIGH."""
        k = self._published
        self._published += 1
        priority = (
            HIGH if k % self.config.high_every == 0 else BEST_EFFORT
        )
        topic = self.publisher_sampler.sample()
        event = with_priority(
            Event({"topic": topic, "k": k}), priority
        )
        seq = self.net.publish(event, delay=delay)
        self.ledger[seq] = (tag, priority, self.audience[topic])
        return seq

    def schedule_phase(self, tag: str, start: float, duration: float,
                       factor: float) -> int:
        """Pre-schedule a constant-rate phase; returns its event count."""
        rate = factor * self.config.capacity
        count = max(1, int(rate * duration))
        for k in range(count):
            self.publish_one(tag, delay=start + k / rate)
        return count

    def delivery_ratios(self, tag: str) -> tuple[float, float, float]:
        """(high, best-effort, overall) delivered/expected for *tag*."""
        delivered: Counter = Counter()
        for record in self.net.deliveries:
            delivered[record.seq] += 1
        sums = {HIGH: [0, 0], BEST_EFFORT: [0, 0]}
        for seq, (seq_tag, priority, expected) in self.ledger.items():
            if seq_tag != tag or expected == 0:
                continue
            sums[priority][0] += min(delivered[seq], expected)
            sums[priority][1] += expected
        high = _ratio(*sums[HIGH])
        best = _ratio(*sums[BEST_EFFORT])
        overall = _ratio(
            sums[HIGH][0] + sums[BEST_EFFORT][0],
            sums[HIGH][1] + sums[BEST_EFFORT][1],
        )
        return high, best, overall

    def offered(self, tag: str) -> tuple[int, int]:
        """(total, high) events published under *tag*."""
        entries = [e for e in self.ledger.values() if e[0] == tag]
        return len(entries), sum(1 for e in entries if e[1] == HIGH)


def _ratio(delivered: int, expected: int) -> float:
    return delivered / expected if expected else 1.0


def _run_storm_timeline(config: OverloadConfig, obs: Observability,
                        result: OverloadResult) -> None:
    """Steady -> storm -> recover: the headline phase timeline."""
    load = _Workload(config, obs)
    timeline = [
        ("steady", config.steady_factor, config.steady_duration, 0.0),
        ("storm", config.storm_factor, config.storm_duration, 0.0),
        ("recovery", config.steady_factor, config.steady_duration,
         config.recovery_gap),
    ]
    clock = 0.0
    spans = []
    for name, factor, duration, gap in timeline:
        clock += gap
        load.schedule_phase(name, clock, duration, factor)
        spans.append((name, factor))
        clock += duration
    load.sim.run(until=clock + config.drain)

    for name, factor in spans:
        offered, high_offered = load.offered(name)
        high, best, overall = load.delivery_ratios(name)
        result.phases.append(PhaseStats(
            name=name,
            factor=factor,
            offered=offered,
            high_offered=high_offered,
            high_delivery=high,
            best_effort_delivery=best,
            overall_delivery=overall,
        ))
    net = load.net
    result.queue_capacity = config.queue_capacity
    depths = net.flow_peak_depths().values()
    result.peak_ingress_depth = max(depths, default=0)
    result.peak_egress_depth = max(
        net.flow_egress_peak_depths().values(), default=0
    )
    result.max_node_backlog = max(
        node.stats.peak_backlog for node in net.nodes.values()
    )
    result.shed_events = net.shed_events
    result.breaker_final = net.breaker_state(0) or "closed"
    result.queues_drained = all(
        depth == 0 for depth in net.flow_depths().values()
    )


def _run_sweep(config: OverloadConfig, result: OverloadResult) -> None:
    """Graceful degradation: one storm per factor, fresh overlay each."""
    for factor in config.sweep_factors:
        load = _Workload(config, Observability())
        load.schedule_phase("sweep", 0.0, config.sweep_duration, factor)
        load.sim.run(
            until=config.sweep_duration + config.drain
        )
        high, best, _overall = load.delivery_ratios("sweep")
        ideal = min(
            1.0,
            (1.0 - config.high_fraction * factor)
            / ((1.0 - config.high_fraction) * factor),
        )
        result.sweep.append(SweepPoint(
            factor=factor,
            high_delivery=high,
            best_effort_delivery=best,
            ideal_best_effort=ideal,
            shed_events=load.net.shed_events,
        ))


def _run_slowdown(config: OverloadConfig, result: OverloadResult) -> None:
    """Backpressure: a slow interior broker must stall its parent."""
    sim = Simulator()
    plan = FaultPlan(slowdowns=[
        BrokerSlowdown(
            broker=1,
            start=0.0,
            duration=config.slowdown_duration,
            factor=config.slowdown_factor,
        )
    ])
    injector = FaultInjector(sim, plan, seed=config.seed + 1)
    load = _Workload(config, Observability(), faults=injector)
    injector.install()
    load.schedule_phase(
        "slow", 0.0, config.slowdown_duration, config.steady_factor
    )
    load.sim.run(until=config.slowdown_duration + config.drain)
    stalls, seconds = load.net.flow_credit_stalls()
    result.credit_stalls = stalls
    result.credit_stall_seconds = seconds
    result.slowdown_peak_depth = max(
        load.net.flow_peak_depths().values(), default=0
    )
    high, _best, _overall = load.delivery_ratios("slow")
    result.slowdown_high_delivery = high


def _run_adaptive_comparison(config: OverloadConfig,
                             result: OverloadResult) -> None:
    """The same storm, fixed-rate vs AIMD-paced; compare shed fractions."""
    duration = config.storm_duration

    def run(adaptive: bool) -> tuple[int, int, float]:
        load = _Workload(config, Observability())
        offered_interval = 1.0 / (config.storm_factor * config.capacity)
        limiter = AIMDRateLimiter(
            rate=config.storm_factor * config.capacity,
            min_rate=config.capacity * 0.1,
            cooldown=4 * config.broker_cost,
        )
        if adaptive:
            load.net.on_shed(
                lambda _p, _stage, _b: limiter.on_overload(load.sim.now)
            )

        def pump() -> None:
            if load.sim.now >= duration:
                return
            load.publish_one("pump")
            if adaptive:
                limiter.on_success()
                interval = max(offered_interval, limiter.interval())
            else:
                interval = offered_interval
            load.sim.schedule(interval, pump)

        load.sim.schedule(0.0, pump)
        load.sim.run(until=duration + config.drain)
        offered, _high = load.offered("pump")
        return offered, load.net.shed_events, limiter.rate

    static_offered, static_shed, _rate = run(adaptive=False)
    adaptive_offered, adaptive_shed, final_rate = run(adaptive=True)
    result.static_offered = static_offered
    result.static_shed_fraction = (
        static_shed / static_offered if static_offered else 0.0
    )
    result.adaptive_offered = adaptive_offered
    result.adaptive_shed_fraction = (
        adaptive_shed / adaptive_offered if adaptive_offered else 0.0
    )
    result.adaptive_final_rate = final_rate


def run_overload(
    config: OverloadConfig | None = None,
    obs: Observability | None = None,
) -> OverloadResult:
    """One overload workload: storm timeline, sweep, slowdown, adaptive."""
    config = config if config is not None else OverloadConfig()
    config.validate()
    obs = obs if obs is not None else Observability()
    result = OverloadResult()
    _run_storm_timeline(config, obs, result)
    _run_sweep(config, result)
    _run_slowdown(config, result)
    _run_adaptive_comparison(config, result)
    result.obs = obs
    return result


def check_overload(
    config: OverloadConfig, result: OverloadResult
) -> list[str]:
    """The acceptance gates; returns the list of violated ones."""
    problems = []
    if result.peak_ingress_depth > config.queue_capacity:
        problems.append(
            f"ingress queue peaked at {result.peak_ingress_depth}, over "
            f"the {config.queue_capacity} bound"
        )
    if result.peak_egress_depth > config.queue_capacity:
        problems.append(
            f"egress queue peaked at {result.peak_egress_depth}, over "
            f"the {config.queue_capacity} bound"
        )
    if result.max_node_backlog > 4:
        problems.append(
            f"a broker CPU backlog reached {result.max_node_backlog}; "
            "the service pump must keep it O(1)"
        )
    storm = result.storm_phase
    if storm.high_delivery < config.min_high_delivery:
        problems.append(
            f"high-priority delivery {storm.high_delivery:.4f} during the "
            f"storm below the {config.min_high_delivery:.2f} gate"
        )
    if result.shed_events == 0:
        problems.append(
            "the storm shed nothing: offered load never exceeded "
            "capacity, so the run proves nothing"
        )
    recovery = result.recovery_phase
    if recovery.overall_delivery < config.min_recovery_delivery:
        problems.append(
            f"post-storm delivery {recovery.overall_delivery:.4f} below "
            f"the {config.min_recovery_delivery:.2f} recovery gate"
        )
    if not result.queues_drained:
        problems.append("queues still hold events after the drain window")
    if result.breaker_final != "closed":
        problems.append(
            f"root breaker finished {result.breaker_final!r}, not closed"
        )
    previous = math.inf
    for point in result.sweep:
        if point.high_delivery < config.min_high_delivery:
            problems.append(
                f"sweep factor {point.factor:g}: high-priority delivery "
                f"{point.high_delivery:.4f} below the gate"
            )
        floor = config.degradation_floor * point.ideal_best_effort
        if point.best_effort_delivery < floor:
            problems.append(
                f"sweep factor {point.factor:g}: best-effort delivery "
                f"{point.best_effort_delivery:.4f} fell off a cliff "
                f"(floor {floor:.4f})"
            )
        if point.best_effort_delivery > previous + config.monotone_tolerance:
            problems.append(
                f"sweep factor {point.factor:g}: best-effort delivery "
                "is not degrading monotonically"
            )
        previous = point.best_effort_delivery
    if result.credit_stalls == 0:
        problems.append(
            "the slowed-down broker never stalled its parent on credits"
        )
    if result.slowdown_peak_depth > config.queue_capacity:
        problems.append(
            "the slow-broker run overflowed a bounded queue"
        )
    if result.static_shed_fraction > 0 and (
        result.adaptive_shed_fraction >= result.static_shed_fraction
    ):
        problems.append(
            f"AIMD pacing shed {result.adaptive_shed_fraction:.3f} of its "
            f"storm, not less than the fixed-rate "
            f"{result.static_shed_fraction:.3f}"
        )
    return problems


def format_overload_report(
    config: OverloadConfig, result: OverloadResult
) -> str:
    """Render the overload run as paper-style tables."""
    header = (
        f"Overload run: seed {config.seed}, capacity "
        f"{config.capacity:.0f} ev/s, storm {config.storm_factor:g}x for "
        f"{config.storm_duration:.1f}s, {config.high_fraction:.0%} "
        f"high-priority, queues {config.queue_capacity} deep "
        f"({config.shed_policy}), credits {config.credit_window}/link"
    )
    phase_table = format_table(
        ["phase", "factor", "offered", "high del", "best-effort del",
         "overall"],
        [(p.name, p.factor, p.offered, p.high_delivery,
          p.best_effort_delivery, p.overall_delivery)
         for p in result.phases],
        title=f"Storm timeline ({config.num_brokers} brokers, "
        f"arity {config.arity})",
    )
    sweep_table = format_table(
        ["factor", "high del", "best-effort del", "ideal", "shed"],
        [(s.factor, s.high_delivery, s.best_effort_delivery,
          s.ideal_best_effort, s.shed_events) for s in result.sweep],
        title="Graceful degradation sweep",
    )
    backpressure = "\n".join([
        "Backpressure and adaptation",
        f"  slow broker   : {config.slowdown_factor:g}x slowdown -> "
        f"{result.credit_stalls} credit stalls "
        f"({result.credit_stall_seconds:.3f}s), peak depth "
        f"{result.slowdown_peak_depth}/{config.queue_capacity}, "
        f"high-priority delivery {result.slowdown_high_delivery:.4f}",
        f"  fixed-rate    : {result.static_offered} offered, "
        f"{result.static_shed_fraction:.1%} shed",
        f"  AIMD-paced    : {result.adaptive_offered} offered, "
        f"{result.adaptive_shed_fraction:.1%} shed, final rate "
        f"{result.adaptive_final_rate:.0f} ev/s",
    ])
    obs = getattr(result, "obs", None)
    if obs is None:
        metrics = "Metrics snapshot (overload): not collected"
    else:
        registry = obs.registry
        metrics = "\n".join([
            "Metrics snapshot (overload)",
            f"  sheds         : "
            f"{int(registry.total('flow_shed_total'))} total "
            f"(queues + admission)",
            f"  queue peaks   : ingress {result.peak_ingress_depth}, "
            f"egress {result.peak_egress_depth} "
            f"(bound {result.queue_capacity})",
            f"  breaker       : "
            f"{int(registry.total('flow_breaker_transitions_total'))} "
            f"transitions, finished {result.breaker_final}",
            f"  cpu backlog   : peak {result.max_node_backlog} "
            "(service pump)",
        ])
    return "\n\n".join(
        [header, phase_table, sweep_table, backpressure, metrics]
    )
