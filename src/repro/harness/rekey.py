"""Churn chaos: live epoch rollover, renewal, and lazy revocation.

The scenario stands up a real loopback TCP cluster with the KDC hosted
beside the broker tree (:class:`~repro.rekey.service.KdcServer`) and
drives membership churn while events are flowing:

- a population of *survivor* subscribers joins in-band (grants fetched
  over GRANT/GRANT_ACK, renewed by REKEY-driven ticks);
- a *victim* is revoked after the first tranche -- lazy revocation
  means its current-epoch grant keeps opening that epoch's traffic, but
  its renewal at the next boundary is denied and every later epoch is
  unreadable to it;
- a *joiner* joins mid-stream after the first rollover and a *leaver*
  leaves mid-stream after the second, exercising admission and
  withdrawal under load;
- the clock then crosses ``rollovers`` live epoch boundaries.  Each
  rollover is one REKEY broadcast at ``boundary - lead/2`` (inside the
  survivors' pre-expiry lead window), after which the grant plane is
  settle-barrier flushed -- no sleeps anywhere.

Gates (``repro chaos --scenario rekey --check``):

- **zero unauthorized opens**: the victim never opens an event sealed
  in an epoch after its revocation;
- **no delivery gap**: every survivor opens >= 99% of all tranches
  (in this deterministic choreography that ratio is exactly 1.0 unless
  something is broken);
- **>= 3 live rollovers** actually crossed;
- the joiner sees exactly the post-join tranches, the leaver exactly
  the pre-leave tranches, and no survivor renewal ever failed.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.core.renewal import RenewalPolicy
from repro.obs.metrics import MetricsRegistry
from repro.rekey.client import KdcChannel
from repro.routing.tokens import TokenAuthority
from repro.rtnet.client import RtPublisher, RtSubscriber
from repro.rtnet.cluster import ClusterLauncher
from repro.siena.events import Event
from repro.siena.filters import Filter

TOPIC = "cancerTrail"


@dataclass(frozen=True)
class RekeyChaosConfig:
    """Knobs for one churn run."""

    seed: int = 7
    num_brokers: int = 3
    arity: int = 2
    epoch_length: float = 10.0
    #: Live epoch boundaries to cross (the acceptance floor is 3).
    rollovers: int = 3
    events_per_epoch: int = 8
    #: Subscribers that stay for the whole run.
    survivors: int = 3
    renew_lead: float = 2.0
    grace: float = 1.0


@dataclass
class SubscriberOutcome:
    """Per-principal tallies, keyed by the tranche tag of each open."""

    subscriber_id: str
    opened_by_tranche: dict[int, int] = field(default_factory=dict)
    unreadable: int = 0
    renewals: int = 0
    renewal_failures: int = 0
    renewals_denied: int = 0

    def opened_total(self) -> int:
        return sum(self.opened_by_tranche.values())


@dataclass
class RekeyChaosResult:
    """What one churn run produced."""

    rollovers_completed: int = 0
    epochs_announced: list[int] = field(default_factory=list)
    tranches: int = 0
    events_published: int = 0
    survivor_outcomes: list[SubscriberOutcome] = field(default_factory=list)
    victim: SubscriberOutcome | None = None
    joiner: SubscriberOutcome | None = None
    leaver: SubscriberOutcome | None = None
    #: Tranche index after which the victim was revoked (it legitimately
    #: opens tranches <= this).
    victim_last_authorized_tranche: int = 0
    joiner_first_tranche: int = 0
    leaver_last_tranche: int = 0
    #: Wall-clock seconds per rollover: REKEY broadcast -> every
    #: survivor's grant plane settled (renewed + re-registered).
    rollover_latencies_s: list[float] = field(default_factory=list)
    #: Wall-clock request->install seconds per granted renewal.
    grant_latencies_s: list[float] = field(default_factory=list)
    unacked_publications: int = 0
    registry: MetricsRegistry | None = None

    # -- derived gates -------------------------------------------------------

    def unauthorized_opens(self) -> int:
        """Victim opens of events sealed after its revocation epoch."""
        if self.victim is None:
            return 0
        return sum(
            count
            for tranche, count in self.victim.opened_by_tranche.items()
            if tranche > self.victim_last_authorized_tranche
        )

    def survivor_delivery_ratio(self) -> float:
        expected = self.tranches * self.events_per_tranche
        if expected == 0 or not self.survivor_outcomes:
            return 1.0
        ratios = [
            outcome.opened_total() / expected
            for outcome in self.survivor_outcomes
        ]
        return min(ratios)

    events_per_tranche: int = 0


def run_rekey_chaos(config: RekeyChaosConfig) -> RekeyChaosResult:
    """Execute the churn choreography on a live loopback cluster."""
    rng = random.Random(config.seed)
    registry = MetricsRegistry()
    kdc = KDC(master_key=bytes(range(16)))
    kdc.register_topic(
        TOPIC,
        CompositeKeySpace({"age": NumericKeySpace("age", 128)}),
        epoch_length=config.epoch_length,
    )
    authority = TokenAuthority(kdc.master_key)
    policy = RenewalPolicy(lead=config.renew_lead, grace=config.grace)
    result = RekeyChaosResult(registry=registry)
    result.events_per_tranche = config.events_per_epoch

    def schema_lookup(topic: str):
        return kdc.config_for(topic).schema

    full_range = Filter.numeric_range(TOPIC, "age", 0, 127)

    async def attach(cluster: ClusterLauncher, subscriber_id: str):
        channel = KdcChannel(
            f"{subscriber_id}-kdc", *cluster.kdc_address(), registry=registry
        )
        await channel.connect()
        subscriber = RtSubscriber(
            subscriber_id,
            *cluster.subscriber_address(),
            schema_lookup=schema_lookup,
            authority=authority,
            registry=registry,
            kdc_channel=channel,
            renewal=policy,
        )
        await subscriber.connect()
        return subscriber

    def outcome(subscriber: RtSubscriber) -> SubscriberOutcome:
        tally = SubscriberOutcome(subscriber.peer_id)
        for opened in subscriber.opened:
            tranche = int(opened.event["record"].split(".")[0][1:])
            tally.opened_by_tranche[tranche] = (
                tally.opened_by_tranche.get(tranche, 0) + 1
            )
        tally.unreadable = subscriber.unreadable
        stats = subscriber.renewal.stats
        tally.renewals = stats.renewals
        tally.renewal_failures = stats.renewal_failures
        tally.renewals_denied = stats.renewals_denied
        return tally

    async def scenario() -> None:
        async with ClusterLauncher(
            num_brokers=config.num_brokers,
            arity=config.arity,
            registry=registry,
            kdc=kdc,
        ) as cluster:
            # Epochs are staggered per topic; anchor the choreography on
            # the first full epoch after t=0.
            base = kdc.epoch_of(TOPIC, 0.0) + 1
            length = config.epoch_length

            def mid(index: int) -> float:
                return kdc.epoch_start(TOPIC, base + index) + length / 2

            survivors = [
                await attach(cluster, f"survivor{index}")
                for index in range(config.survivors)
            ]
            victim = await attach(cluster, "victim")
            leaver = await attach(cluster, "leaver")
            start = mid(0)
            for subscriber in survivors + [victim, leaver]:
                subscriber.kdc_channel.advance(start)
                await subscriber.join(full_range, at_time=start)
            joiner = await attach(cluster, "joiner")

            publisher = RtPublisher(
                "press", *cluster.publisher_address(), kdc,
                authority=authority, registry=registry,
            )
            await publisher.connect()
            active = survivors + [victim, leaver]

            async def tranche(index: int) -> None:
                at_time = mid(index)
                for subscriber in active:
                    subscriber.kdc_channel.advance(at_time)
                for _ in range(config.events_per_epoch):
                    # The tranche tag rides inside the encrypted payload
                    # (routable attributes are tokenized away), so every
                    # successful open proves which epoch's keys worked.
                    await publisher.publish(
                        Event(
                            {
                                "topic": TOPIC,
                                "age": rng.randrange(128),
                                "record": (
                                    f"t{index}.r{result.events_published}"
                                ),
                            },
                            publisher="press",
                        ),
                        secret_attributes={"record"},
                        at_time=at_time,
                    )
                    result.events_published += 1
                await publisher.settle()
                for subscriber in active:
                    await subscriber.settle()
                result.tranches += 1

            # Tranche 0 flows to everyone; then the victim is revoked --
            # lazily, so nothing changes until its epoch lapses.
            await tranche(0)
            kdc.revoke(victim.peer_id, TOPIC)
            result.victim_last_authorized_tranche = 0

            for rollover in range(1, config.rollovers + 1):
                boundary = kdc.epoch_start(TOPIC, base + rollover)
                announce_at = boundary - policy.lead / 2
                started = time.perf_counter()
                epoch = await cluster.kdc_server.roll_epoch(
                    TOPIC, announce_at
                )
                for subscriber in active:
                    await subscriber.settle_rekey()
                result.rollover_latencies_s.append(
                    time.perf_counter() - started
                )
                result.epochs_announced.append(epoch)
                result.rollovers_completed += 1

                if rollover == 1:
                    # Mid-stream admission: the joiner arrives with the
                    # new epoch already in force, so its first grant is
                    # anchored at the announced boundary.
                    joiner.kdc_channel.advance(announce_at)
                    await joiner.join(full_range, at_time=boundary)
                    active.append(joiner)
                    result.joiner_first_tranche = result.tranches
                if rollover == 2:
                    # Mid-stream withdrawal: the leaver walks away.
                    result.leaver_last_tranche = result.tranches - 1
                    await leaver.leave()
                    active.remove(leaver)

                await tranche(rollover)

            result.unacked_publications = publisher.unacked
            result.survivor_outcomes = [
                outcome(subscriber) for subscriber in survivors
            ]
            result.victim = outcome(victim)
            result.joiner = outcome(joiner)
            result.leaver = outcome(leaver)
            for subscriber in (
                survivors + [victim, leaver, joiner]
            ):
                result.grant_latencies_s.extend(
                    subscriber.kdc_channel.grant_latencies_s
                )
                await subscriber.kdc_channel.close()
                await subscriber.close()
            await publisher.close()

    asyncio.run(scenario())
    return result


def check_rekey(
    config: RekeyChaosConfig, result: RekeyChaosResult
) -> list[str]:
    """The churn acceptance gates; empty means the run passed."""
    problems: list[str] = []
    if result.rollovers_completed < 3:
        problems.append(
            f"only {result.rollovers_completed} live rollovers (need >= 3)"
        )
    unauthorized = result.unauthorized_opens()
    if unauthorized:
        problems.append(
            f"revoked subscriber opened {unauthorized} post-revocation "
            "events (lazy revocation must deny the next epoch)"
        )
    ratio = result.survivor_delivery_ratio()
    if ratio < 0.99:
        problems.append(
            f"survivor delivery ratio {ratio:.4f} < 0.99 across rollovers"
        )
    for tally in result.survivor_outcomes:
        if tally.renewal_failures:
            problems.append(
                f"{tally.subscriber_id}: {tally.renewal_failures} renewal "
                "failures"
            )
        if tally.renewals_denied:
            problems.append(
                f"{tally.subscriber_id}: renewal denied without revocation"
            )
    if result.victim is not None and result.victim.renewals_denied != 1:
        problems.append(
            "victim's boundary renewal was not denied exactly once "
            f"(got {result.victim.renewals_denied})"
        )
    if result.joiner is not None:
        early = sum(
            count
            for tranche, count in result.joiner.opened_by_tranche.items()
            if tranche < result.joiner_first_tranche
        )
        expected = (
            (result.tranches - result.joiner_first_tranche)
            * result.events_per_tranche
        )
        if early:
            problems.append(f"joiner opened {early} pre-join events")
        if result.joiner.opened_total() != expected:
            problems.append(
                f"joiner opened {result.joiner.opened_total()} of "
                f"{expected} post-join events"
            )
    if result.leaver is not None:
        late = sum(
            count
            for tranche, count in result.leaver.opened_by_tranche.items()
            if tranche > result.leaver_last_tranche
        )
        if late:
            problems.append(f"leaver received {late} post-leave events")
    if result.unacked_publications:
        problems.append(
            f"{result.unacked_publications} publications never acked"
        )
    return problems


def format_rekey_report(
    config: RekeyChaosConfig, result: RekeyChaosResult
) -> str:
    """Human-readable run summary for the chaos CLI."""
    lines = [
        "rekey churn: live rollover, renewal, and lazy revocation",
        f"  cluster            {config.num_brokers} brokers, KDC endpoint "
        "hosted beside the tree",
        f"  epochs crossed     {result.rollovers_completed} "
        f"(announced: {result.epochs_announced})",
        f"  events published   {result.events_published} across "
        f"{result.tranches} tranches",
        f"  survivor delivery  {result.survivor_delivery_ratio():.4f} "
        "(min across survivors)",
        f"  unauthorized opens {result.unauthorized_opens()} "
        "(victim, post-revocation)",
    ]
    if result.victim is not None:
        lines.append(
            f"  victim             opened {result.victim.opened_total()} "
            f"(all in tranche <= {result.victim_last_authorized_tranche}), "
            f"{result.victim.unreadable} unreadable, "
            f"{result.victim.renewals_denied} renewal denied"
        )
    if result.joiner is not None:
        lines.append(
            f"  joiner             opened {result.joiner.opened_total()} "
            f"from tranche {result.joiner_first_tranche}"
        )
    if result.leaver is not None:
        lines.append(
            f"  leaver             opened {result.leaver.opened_total()} "
            f"through tranche {result.leaver_last_tranche}"
        )
    if result.rollover_latencies_s:
        worst = max(result.rollover_latencies_s)
        lines.append(
            f"  rollover latency   max {worst * 1000.0:.1f} ms "
            "(REKEY -> grant plane settled)"
        )
    if result.grant_latencies_s:
        ordered = sorted(result.grant_latencies_s)
        p50 = ordered[len(ordered) // 2]
        lines.append(
            f"  grant latency      p50 {p50 * 1000.0:.1f} ms over "
            f"{len(ordered)} grants"
        )
    return "\n".join(lines)
