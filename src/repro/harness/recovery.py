"""Recovery harness: permanent failures, tree repair, exactly-once.

The chaos harness (:mod:`repro.harness.chaos`) exercises *transient*
faults: brokers crash and come back, and the at-least-once stack rides
the outage out.  This harness kills brokers **permanently** and proves
the self-healing story end to end:

- two interior brokers are crashed and never restarted, orphaning their
  subtrees; the :class:`~repro.recovery.repair.RepairCoordinator` must
  detect each corpse, re-parent the orphans to the nearest live
  ancestor, re-home directly attached subscribers, and replay the dead
  broker's journaled in-flight events through the adopter;
- a network partition isolates a live subtree for a while -- long enough
  for the repair timer to fire -- and the coordinator must recognise it
  as a partition (management-plane probe) and **not** excise the live
  brokers (a counted false alarm);
- every broker runs a durable journal
  (:mod:`repro.recovery.journal`), and the overlay-level dedup window
  plus hop-level dedup keep every salvage/redirect re-send invisible:
  the gate demands **zero** ``(event, subscriber)`` collisions among
  surfaced deliveries while the suppression counters show the machinery
  actually worked.

``check_recovery`` encodes the acceptance gates: delivery ratio at
least ``min_delivery_rate`` (default 99%), zero surfaced duplicates at
any subscriber, and every permanent kill repaired (finite convergence
time reported through the ``recovery_convergence_seconds`` histogram).
Everything derives from the config seed, so a run is exactly
reproducible.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field, replace

from repro.harness.reporting import format_table
from repro.net.faults import (
    BrokerCrash,
    FaultInjector,
    FaultPlan,
    LinkFault,
    PartitionFault,
)
from repro.net.sim import Simulator
from repro.net.simnet import RetryPolicy, SimulatedPubSub
from repro.obs import Observability
from repro.recovery import JournalStore, RepairPolicy
from repro.siena.events import Event
from repro.siena.filters import Filter


@dataclass
class RecoveryConfig:
    """One recovery run's knobs; every randomness source derives from *seed*.

    Fault timing is expressed as fractions of *duration* so shortening
    or stretching the run rescales the whole failure timeline.  The
    default scenario (two permanent kills plus one partition) assumes
    the default 15-broker binary tree; overriding ``num_brokers`` below
    15 requires also overriding ``kill_brokers``/``partition_group``.
    """

    seed: int = 7
    #: Seconds of publishing; faults land inside this horizon.
    duration: float = 6.0
    #: Extra simulated seconds for repairs, replays and flushes to settle.
    drain: float = 4.0
    publish_rate: float = 40.0
    num_brokers: int = 15
    arity: int = 2
    hop_latency: float = 0.010
    #: Background per-transmission loss, so retries stay in play.
    link_loss: float = 0.02
    #: Brokers killed permanently (never restarted), with their kill
    #: times as fractions of the duration.  Interior brokers with live
    #: ancestors, so every repair has an adopter.
    kill_brokers: tuple = (1, 6)
    kill_times: tuple = (0.18, 0.35)
    #: A live subtree isolated by a partition (both sides stay up); the
    #: repair coordinator must refuse to excise it.
    partition_group: tuple = (5, 11, 12)
    partition_start: float = 0.55
    partition_length: float = 0.17
    #: Continuous down-time past detection before tree surgery.
    repair_after: float = 0.5
    #: Overlay-level end-to-end dedup window (events per subscriber).
    dedup_window: int = 4096
    # Journal shape.
    snapshot_every: int = 64
    inflight_capacity: int = 512
    #: The delivery-ratio gate for ``check_recovery``.
    min_delivery_rate: float = 0.99
    # Fast heartbeats (as in the chaos harness) so detection completes
    # well inside the repair timer; jittered so post-partition flushes
    # do not stampede in lock-step.
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            heartbeat_interval=0.1, heartbeat_jitter=0.05
        )
    )

    @property
    def events(self) -> int:
        return max(1, int(self.publish_rate * self.duration))

    def validate(self) -> None:
        if len(self.kill_brokers) != len(self.kill_times):
            raise ValueError("kill_brokers and kill_times must parallel")
        participants = set(self.kill_brokers) | set(self.partition_group)
        if 0 in self.kill_brokers:
            raise ValueError("broker 0 hosts the publisher; cannot kill it")
        for broker in participants:
            if not 0 <= broker < self.num_brokers:
                raise ValueError(
                    f"scenario broker {broker} outside the "
                    f"{self.num_brokers}-broker overlay; override "
                    "kill_brokers/partition_group for small trees"
                )
        if set(self.kill_brokers) & set(self.partition_group):
            raise ValueError(
                "partition_group must hold live brokers, not kill targets"
            )


@dataclass
class RecoveryResult:
    """Outcome of one recovery run.

    The run's :class:`~repro.obs.Observability` bundle and the
    coordinator's :class:`~repro.recovery.repair.RepairRecord` list ride
    along as plain ``obs``/``records`` attributes (not dataclass fields,
    so ``dataclasses.asdict`` equality between seeded runs compares only
    the measured numbers).
    """

    expected: int
    delivered: int
    #: ``(event, subscriber)`` pairs surfaced more than once -- the
    #: exactly-once gate demands zero.
    duplicate_collisions: int
    #: Duplicate arrivals the edge dedup window made invisible.
    duplicates_suppressed: int
    dead_letters: int
    data_sends: int
    retries: int
    retx_evicted: int
    journal_records: int
    journal_restores: int
    events_salvaged: int
    repairs_attempted: int
    repairs_converged: int
    reparented: int
    clients_rehomed: int
    inflight_replayed: int
    false_alarms: int
    failures_detected: int
    recoveries_detected: int
    #: Slowest crash-to-repaired time; NaN when nothing was repaired.
    max_convergence: float

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.expected if self.expected else 0.0

    @property
    def failed_repairs(self) -> int:
        return self.repairs_attempted - self.repairs_converged


def _recovery_fault_plan(config: RecoveryConfig) -> FaultPlan:
    crashes = [
        BrokerCrash(broker, at=fraction * config.duration)  # permanent
        for broker, fraction in zip(config.kill_brokers, config.kill_times)
    ]
    partitions = [
        PartitionFault(
            group=tuple(config.partition_group),
            start=config.partition_start * config.duration,
            duration=config.partition_length * config.duration,
        )
    ]
    link_faults = (
        [LinkFault(loss=config.link_loss)] if config.link_loss > 0 else []
    )
    return FaultPlan(
        crashes=crashes, link_faults=link_faults, partitions=partitions
    )


def run_recovery(
    config: RecoveryConfig | None = None,
    obs: Observability | None = None,
) -> RecoveryResult:
    """One self-healing workload: permanent kills + partition + repair."""
    config = config if config is not None else RecoveryConfig()
    config.validate()
    obs = obs if obs is not None else Observability()
    sim = Simulator()
    injector = FaultInjector(
        sim, _recovery_fault_plan(config), seed=config.seed + 1
    )
    journals = JournalStore(
        snapshot_every=config.snapshot_every,
        inflight_capacity=config.inflight_capacity,
        registry=obs.registry,
    )
    net = SimulatedPubSub(
        sim,
        config.num_brokers,
        arity=config.arity,
        link_latency=config.hop_latency,
        reliability=replace(config.retry),
        faults=injector,
        seed=config.seed + 2,
        obs=obs,
        journals=journals,
        repair=RepairPolicy(repair_after=config.repair_after),
        dedup_window=config.dedup_window,
    )
    injector.install()
    subscription = Filter.topic("recovery")
    leaves = net.leaf_ids()
    for index, leaf in enumerate(leaves):
        subscriber_id = f"sub{index}"
        net.attach_subscriber(subscriber_id, leaf)
        net.subscribe(subscriber_id, subscription)
    for k in range(config.events):
        net.publish(
            Event({"topic": "recovery", "k": k}),
            delay=k / config.publish_rate,
        )
    sim.run(until=config.duration + config.drain)

    collisions = sum(
        count - 1
        for count in Counter(
            (record.seq, record.subscriber_id) for record in net.deliveries
        ).values()
        if count > 1
    )
    coordinator = net.repair
    records = coordinator.records if coordinator is not None else []
    converged = [record for record in records if record.converged]
    stats = net.rstats
    result = RecoveryResult(
        expected=config.events * len(leaves),
        delivered=len(net.deliveries),
        duplicate_collisions=collisions,
        duplicates_suppressed=stats.duplicate_deliveries,
        dead_letters=stats.dead_letters,
        data_sends=stats.data_sends,
        retries=stats.retries,
        retx_evicted=stats.retx_evicted,
        journal_records=journals.total_records(),
        journal_restores=stats.journal_restores,
        events_salvaged=stats.events_salvaged,
        repairs_attempted=len(records),
        repairs_converged=len(converged),
        reparented=sum(record.orphans for record in converged),
        clients_rehomed=sum(record.clients_rehomed for record in converged),
        inflight_replayed=sum(
            record.inflight_replayed for record in converged
        ),
        false_alarms=(
            coordinator.false_alarms if coordinator is not None else 0
        ),
        failures_detected=stats.failures_detected,
        recoveries_detected=stats.recoveries_detected,
        max_convergence=(
            coordinator.max_convergence_time()
            if coordinator is not None
            else float("nan")
        ),
    )
    result.obs = obs
    result.records = list(records)
    return result


def check_recovery(
    config: RecoveryConfig, result: RecoveryResult
) -> list[str]:
    """The acceptance gates; returns the list of violated ones."""
    problems = []
    if result.delivery_rate < config.min_delivery_rate:
        problems.append(
            f"delivery rate {result.delivery_rate:.4f} below the "
            f"{config.min_delivery_rate:.2f} gate "
            f"({result.delivered}/{result.expected})"
        )
    if result.duplicate_collisions != 0:
        problems.append(
            f"{result.duplicate_collisions} duplicate deliveries surfaced "
            "at subscribers (exactly-once gate demands zero)"
        )
    if result.repairs_converged != len(config.kill_brokers):
        problems.append(
            f"{result.repairs_converged} repairs converged for "
            f"{len(config.kill_brokers)} permanent kills"
        )
    if result.failed_repairs:
        problems.append(
            f"{result.failed_repairs} repairs found no live adopter"
        )
    if result.repairs_converged and not math.isfinite(
        result.max_convergence
    ):
        problems.append("repair convergence time was not recorded")
    return problems


def _format_seconds(value: float) -> str:
    return f"{value:.3f}s" if math.isfinite(value) else "n/a"


def _counter_total(registry, name: str) -> int:
    return int(registry.total(name))


def _format_convergence(registry) -> str:
    series = registry.series("recovery_convergence_seconds")
    histogram = series[0] if series else None
    if histogram is None or not histogram.count:
        return "no observations"
    quantiles = " ".join(
        f"p{int(q * 100)}={histogram.quantile(q):.3f}s"
        for q in histogram.tracked_quantiles
    )
    return f"{quantiles} (n={histogram.count})"


def format_recovery_report(
    config: RecoveryConfig, result: RecoveryResult
) -> str:
    """Render the recovery run as paper-style tables."""
    header = (
        f"Recovery run: seed {config.seed}, {config.duration:.0f}s x "
        f"{config.publish_rate:.0f} ev/s, permanent kills "
        f"{list(config.kill_brokers)}, partition "
        f"{list(config.partition_group)} for "
        f"{config.partition_length * config.duration:.1f}s, link loss "
        f"{config.link_loss:.0%}"
    )
    delivery_table = format_table(
        ["delivery", "surfaced dups", "suppressed", "dead", "retry ovh",
         "salvaged", "rehomed"],
        [(
            result.delivery_rate,
            result.duplicate_collisions,
            result.duplicates_suppressed,
            result.dead_letters,
            (result.retries / result.data_sends
             if result.data_sends else 0.0),
            result.events_salvaged,
            result.clients_rehomed,
        )],
        title=f"Self-healing overlay ({config.num_brokers} brokers, "
        f"arity {config.arity})",
    )
    repair_rows = [
        (
            str(record.dead),
            str(record.adopter) if record.converged else "none",
            record.orphans,
            record.clients_rehomed,
            record.inflight_replayed,
            _format_seconds(record.convergence_time),
        )
        for record in getattr(result, "records", [])
    ] or [("-", "-", 0, 0, 0, "n/a")]
    repair_table = format_table(
        ["dead", "adopter", "orphans", "rehomed", "replayed",
         "convergence"],
        repair_rows,
        title=f"Tree repairs ({result.repairs_converged} converged, "
        f"{result.false_alarms} partition false alarms)",
    )
    obs = getattr(result, "obs", None)
    if obs is None:
        metrics = "Metrics snapshot (recovery): not collected"
    else:
        registry = obs.registry
        metrics = "\n".join([
            "Metrics snapshot (recovery)",
            f"  convergence   : {_format_convergence(registry)}",
            f"  repairs       : "
            f"{_counter_total(registry, 'recovery_repairs_total')} total, "
            f"{_counter_total(registry, 'recovery_reparent_total')} "
            f"reparented, "
            f"{_counter_total(registry, 'recovery_false_alarms_total')} "
            f"false alarms",
            f"  journal       : "
            f"{_counter_total(registry, 'journal_records_total')} records, "
            f"{_counter_total(registry, 'journal_replays_total')} replays, "
            f"{result.journal_restores} restarts restored",
            f"  dedup         : "
            f"{_counter_total(registry, 'dedup_suppressed_total')} "
            f"suppressed, "
            f"{_counter_total(registry, 'net_retx_evicted_total')} parked "
            f"evictions",
        ])
    return "\n\n".join([header, delivery_table, repair_table, metrics])
