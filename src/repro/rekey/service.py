"""The KDC endpoint: grants, revocations, and epoch rollover over TCP.

:class:`KdcServer` hosts a :class:`~repro.core.kdc.KDC` behind an rtnet
listener, turning the key-distribution center from a library object into
a live service beside the broker tree:

- **GRANT / GRANT_ACK** -- request-reply authorization.  A request
  carries the subscriber, its filters, the anchoring time, and an
  optional ``min_epoch`` (the renewal path asking for next-epoch keys
  before the boundary); the reply carries the serialized grant, a
  terminal denial (revoked), or a retryable unavailability;
- **REVOKE** -- an administrative client revokes a (subscriber, topic)
  pair; acknowledged with a ``GRANT_DONE``.  Lazy revocation per the
  paper's Section 3.1: the victim's current-epoch grant keeps working
  until its epoch lapses, but every later renewal is denied;
- **REKEY** -- :meth:`KdcServer.roll_epoch` broadcasts the new epoch to
  every connected client.  Clients treat it as a logical-clock
  advancement and run their renewal tick, so rollover is driven by one
  explicit, settle-barrier-verifiable control frame instead of wall
  clocks and sleeps;
- **PING / PONG** -- the server answers settle probes directly (it is
  its own root), so ``settle()`` works against it exactly as against a
  broker: a returned PONG proves every GRANT_ACK and REKEY queued ahead
  of it has been written.

The server is stateless beyond the KDC's own revocation set -- every
key is derivable from the master key (paper Section 4), so a restarted
KdcServer serves the same grants without recovery work.
"""

from __future__ import annotations

import asyncio
import time

from repro.core.kdc import KDC, AuthorizationDenied, KDCUnavailableError
from repro.obs.metrics import MetricsRegistry
from repro.rtnet.frames import (
    GRANT_DENIED,
    GRANT_DONE,
    GRANT_OK,
    GRANT_UNAVAILABLE,
    PROTOCOL_VERSION,
    FrameError,
    GrantAck,
    GrantRequest,
    Heartbeat,
    Hello,
    HelloAck,
    Ping,
    Pong,
    Rekey,
    Revoke,
    encode_frame,
    read_frame,
)


class _Session:
    """One connected client of the KDC endpoint."""

    def __init__(self, peer_id: str, writer: asyncio.StreamWriter) -> None:
        self.peer_id = peer_id
        self.writer = writer
        self.lock = asyncio.Lock()

    async def send(self, frame) -> None:
        async with self.lock:
            self.writer.write(encode_frame(frame))
            await self.writer.drain()


class KdcServer:
    """A :class:`~repro.core.kdc.KDC` listening on a TCP socket."""

    def __init__(
        self,
        kdc: KDC,
        host: str = "127.0.0.1",
        port: int = 0,
        server_id: str = "kdc",
        registry: MetricsRegistry | None = None,
    ):
        self.kdc = kdc
        self.host = host
        self.port = port
        self.server_id = server_id
        self.registry = registry
        self._server: asyncio.AbstractServer | None = None
        self._sessions: dict[str, _Session] = {}
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        self._closed = True
        for session in list(self._sessions.values()):
            session.writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    @property
    def connections(self) -> int:
        return len(self._sessions)

    # -- connections ---------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._serve(reader, writer)
        except asyncio.CancelledError:
            pass

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            hello = await read_frame(reader)
        except (ValueError, OSError):
            writer.close()
            return
        if not isinstance(hello, Hello) or hello.version != PROTOCOL_VERSION:
            try:
                writer.write(encode_frame(HelloAck(self.server_id, 0)))
                await writer.drain()
            except OSError:
                pass
            writer.close()
            self._count("rekey_handshakes_rejected_total")
            return
        session = _Session(hello.peer_id, writer)
        stale = self._sessions.pop(hello.peer_id, None)
        if stale is not None:
            stale.writer.close()
        self._sessions[hello.peer_id] = session
        await session.send(HelloAck(self.server_id, PROTOCOL_VERSION))
        try:
            while not self._closed:
                try:
                    frame = await read_frame(reader)
                except (ValueError, OSError, asyncio.IncompleteReadError):
                    break
                if frame is None:
                    break
                await self._dispatch(session, frame)
        finally:
            if self._sessions.get(session.peer_id) is session:
                del self._sessions[session.peer_id]
            writer.close()

    async def _dispatch(self, session: _Session, frame) -> None:
        if isinstance(frame, GrantRequest):
            await session.send(self._answer_grant(frame))
        elif isinstance(frame, Revoke):
            self.kdc.revoke(frame.subscriber, frame.topic)
            self._count("rekey_revocations_total")
            await session.send(GrantAck(frame.request_id, GRANT_DONE))
        elif isinstance(frame, Ping):
            # The KDC endpoint is its own settle root.
            await session.send(Pong(frame.token, frame.path))
        elif isinstance(frame, Heartbeat):
            pass
        else:
            self._count("rekey_protocol_errors_total")

    def _answer_grant(self, frame: GrantRequest) -> GrantAck:
        started = time.perf_counter()
        filters = (
            frame.filters[0] if len(frame.filters) == 1
            else list(frame.filters)
        )
        try:
            grant = self.kdc.authorize(
                frame.subscriber,
                filters,
                at_time=frame.at_time,
                publisher=frame.publisher,
                min_epoch=frame.min_epoch,
            )
        except AuthorizationDenied as exc:
            self._count("rekey_grants_denied_total")
            return GrantAck(frame.request_id, GRANT_DENIED, str(exc))
        except KDCUnavailableError as exc:
            self._count("rekey_grants_unavailable_total")
            return GrantAck(frame.request_id, GRANT_UNAVAILABLE, str(exc))
        except (FrameError, KeyError, ValueError) as exc:
            # A malformed or unregistered-topic request must not kill
            # the session; surface it as an unavailability the client
            # can log.
            self._count("rekey_protocol_errors_total")
            return GrantAck(frame.request_id, GRANT_UNAVAILABLE, str(exc))
        self._count("rekey_grants_issued_total")
        if self.registry is not None:
            self.registry.histogram(
                "rekey_authorize_seconds", server=self.server_id
            ).observe(time.perf_counter() - started)
        return GrantAck(frame.request_id, GRANT_OK, grant=grant)

    # -- epoch rollover --------------------------------------------------------

    async def roll_epoch(self, topic: str, at_time: float) -> int:
        """Broadcast *topic*'s epoch as of *at_time* to every client.

        Returns the epoch number announced.  The broadcast is the whole
        mechanism: receivers advance their logical clocks and run their
        renewal ticks, which come back here as GRANT requests pinned to
        ``min_epoch = old + 1``.
        """
        epoch = self.kdc.epoch_of(topic, at_time)
        frame = Rekey(topic, epoch, at_time)
        for session in list(self._sessions.values()):
            try:
                await session.send(frame)
            except (OSError, ConnectionError):
                pass  # the reader loop reaps the dead session
        self._count("rekey_rollovers_total")
        return epoch

    # -- metrics ----------------------------------------------------------------

    def _count(self, name: str, **labels: str) -> None:
        if self.registry is not None:
            self.registry.counter(
                name, server=self.server_id, **labels
            ).inc()
