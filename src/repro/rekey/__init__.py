"""``repro.rekey`` -- the live key-lifecycle subsystem.

The paper's epoch model makes every authorization a lease; this package
is the machinery that serves, renews, and revokes those leases while
events are flowing over real sockets:

- :class:`~repro.rekey.service.KdcServer` hosts a
  :class:`~repro.core.kdc.KDC` behind an rtnet TCP listener beside the
  broker tree, answering GRANT requests, accepting REVOKEs, and
  broadcasting REKEY on epoch rollover;
- :class:`~repro.rekey.client.KdcChannel` is the subscriber's side: an
  async grant client pluggable into
  :class:`~repro.core.renewal.RenewalManager`, plus the logical clock
  REKEY broadcasts advance.

:class:`~repro.rtnet.client.RtSubscriber` composes the two (pass it a
``kdc_channel``); :class:`~repro.rtnet.live.LiveSystem` wires the whole
choreography behind the synchronous facade.
"""

from repro.rekey.client import ChannelStats, KdcChannel
from repro.rekey.service import KdcServer

__all__ = ["ChannelStats", "KdcChannel", "KdcServer"]
