"""The subscriber's side of the key-lifecycle plane.

:class:`KdcChannel` is an :class:`~repro.rtnet.client.RtEndpoint` dialed
at a :class:`~repro.rekey.service.KdcServer`.  It exposes the *async
client* protocol :class:`~repro.core.renewal.RenewalManager` expects
(``is_async_client = True``: ``authorize(...)`` registers completion
callbacks and returns immediately; the grant installs when the GRANT_ACK
arrives), so the same renewal engine that drives the simulations drives
live TCP rekeying without modification.

The channel also owns the subscriber's **logical clock**: PSGuard
epochs are a function of event time, not wall time, so the harness can
drive ≥3 rollovers deterministically.  Every REKEY broadcast advances
the clock to the frame's ``at_time`` before the registered hooks (the
renewal tick) run; ``now()`` is what the renewal manager stamps
installed grants with.

``settle_grants()`` is the grant-plane flush barrier: it returns once
every initiated request has been answered -- combined with the server
answering PINGs itself, a join/renew/revoke choreography needs no
sleeps anywhere.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import GrantDenied, GrantExpired, KDCUnavailable
from repro.core.kdc import AuthorizationGrant
from repro.obs.metrics import MetricsRegistry
from repro.rtnet.client import RtEndpoint
from repro.rtnet.frames import (
    GRANT_DENIED,
    GRANT_DONE,
    GRANT_OK,
    Frame,
    GrantAck,
    GrantRequest,
    Rekey,
    Revoke,
    encode_frame,
)
from repro.siena.filters import Filter


@dataclass
class _PendingRequest:
    """One in-flight GRANT or REVOKE awaiting its GRANT_ACK."""

    frame: GrantRequest | Revoke
    on_grant: Callable[[AuthorizationGrant], None] | None
    on_error: Callable[[Exception], None] | None
    started: float
    future: asyncio.Future | None = None


@dataclass
class ChannelStats:
    """Key-lifecycle counters the chaos gates and benches read."""

    requests: int = 0
    grants_installed: int = 0
    grants_denied: int = 0
    grants_failed: int = 0
    #: Grants that arrived already past expiry + grace -- installed
    #: nothing; the renewal retries on the next tick.
    grants_expired: int = 0
    rekeys_seen: int = 0
    revokes_sent: int = 0


class KdcChannel(RtEndpoint):
    """A live connection to the KDC endpoint, usable as a renewal source."""

    role = "kdc-client"
    #: RenewalManager protocol switch: ``authorize`` completes via
    #: callbacks, possibly a reconnect later.
    is_async_client = True

    def __init__(
        self,
        peer_id: str,
        host: str,
        port: int,
        grace_period: float = 0.0,
        registry: MetricsRegistry | None = None,
        **kwargs,
    ):
        super().__init__(peer_id, host, port, registry=registry, **kwargs)
        #: Post-expiry slack a late grant is still worth installing for;
        #: mirror of the subscriber engine's grace window.
        self.grace_period = grace_period
        #: Key-lifecycle counters; ``stats`` stays the link-level
        #: :class:`~repro.rtnet.client.EndpointStats` of the base class.
        self.rekey_stats = ChannelStats()
        #: Called with each Rekey frame after the clock has advanced.
        self.on_rekey: list[Callable[[Rekey], None]] = []
        #: Called with each installed grant after its on_grant callback.
        self.on_install: list[Callable[[AuthorizationGrant], None]] = []
        #: Wall-clock request->install latency per granted renewal.
        self.grant_latencies_s: list[float] = []
        self._time = 0.0
        self._next_request = 0
        self._pending: dict[int, _PendingRequest] = {}
        self._send_tasks: set[asyncio.Task] = set()
        self._idle: asyncio.Future | None = None

    # -- logical clock -------------------------------------------------------

    def now(self) -> float:
        """The channel's logical time (monotone, REKEY-advanced)."""
        return self._time

    def advance(self, at_time: float) -> float:
        """Advance the logical clock; never moves backwards."""
        self._time = max(self._time, at_time)
        return self._time

    # -- the RenewalManager async-client protocol -----------------------------

    def authorize(
        self,
        subscriber: str,
        filters: Filter | list[Filter],
        at_time: float = 0.0,
        publisher: str | None = None,
        min_epoch: int | None = None,
        on_grant: Callable[[AuthorizationGrant], None] | None = None,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """Initiate one grant request; completion arrives via callbacks.

        Synchronous on purpose -- :class:`RenewalManager` calls it from
        plain code -- but must run on the endpoint's event loop thread
        (ticks are driven from REKEY handlers, which always are).
        """
        if isinstance(filters, Filter):
            filters = [filters]
        request_id = self._next_request
        self._next_request += 1
        frame = GrantRequest(
            request_id,
            subscriber,
            tuple(filters),
            at_time=at_time,
            publisher=publisher,
            min_epoch=min_epoch,
        )
        self._pending[request_id] = _PendingRequest(
            frame, on_grant, on_error, time.perf_counter()
        )
        self.rekey_stats.requests += 1
        self._track(asyncio.ensure_future(self.send(frame)))

    async def revoke(
        self, subscriber: str, topic: str, timeout: float = 10.0
    ) -> None:
        """Revoke (subscriber, topic) at the KDC; returns on its ack."""
        request_id = self._next_request
        self._next_request += 1
        frame = Revoke(request_id, subscriber, topic)
        future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = _PendingRequest(
            frame, None, None, time.perf_counter(), future
        )
        self.rekey_stats.revokes_sent += 1
        await self.send(frame)
        try:
            await asyncio.wait_for(future, timeout)
        finally:
            self._pending.pop(request_id, None)
            self._notify_if_idle()

    async def settle_grants(self, timeout: float = 10.0) -> None:
        """Return once every initiated request has been answered."""

        async def drain() -> None:
            while self._send_tasks or self._pending:
                if self._send_tasks:
                    await asyncio.gather(
                        *list(self._send_tasks), return_exceptions=True
                    )
                    continue
                self._idle = asyncio.get_event_loop().create_future()
                try:
                    await self._idle
                finally:
                    self._idle = None

        await asyncio.wait_for(drain(), timeout)

    # -- frame handling ------------------------------------------------------

    async def _handle(self, frame: Frame) -> None:
        if isinstance(frame, GrantAck):
            self._on_grant_ack(frame)
            return
        if isinstance(frame, Rekey):
            self.rekey_stats.rekeys_seen += 1
            self.advance(frame.at_time)
            self._count("rekey_rekeys_received_total")
            for hook in list(self.on_rekey):
                hook(frame)
            return
        await super()._handle(frame)

    def _on_grant_ack(self, ack: GrantAck) -> None:
        pending = self._pending.pop(ack.request_id, None)
        if pending is None:
            self._notify_if_idle()
            return
        try:
            if ack.status == GRANT_OK and ack.grant is not None:
                self._install(pending, ack.grant)
            elif ack.status == GRANT_DONE:
                if pending.future is not None and not pending.future.done():
                    pending.future.set_result(None)
            elif ack.status == GRANT_DENIED:
                self.rekey_stats.grants_denied += 1
                self._count("rekey_grants_denied_total")
                self._fail(pending, GrantDenied(ack.detail or "revoked"))
            else:
                self.rekey_stats.grants_failed += 1
                self._count("rekey_grants_failed_total")
                self._fail(
                    pending, KDCUnavailable(ack.detail or "unavailable")
                )
        finally:
            self._notify_if_idle()

    def _install(
        self, pending: _PendingRequest, grant: AuthorizationGrant
    ) -> None:
        if self.now() >= grant.expires_at + self.grace_period:
            # Too late to be worth anything: the epoch (plus grace) it
            # covers has already lapsed at this subscriber.
            self.rekey_stats.grants_expired += 1
            self._count("rekey_grants_expired_total")
            self._fail(
                pending,
                GrantExpired(
                    f"grant for {grant.topic!r} epoch {grant.epoch} expired "
                    f"at {grant.expires_at}, now {self.now()}"
                ),
            )
            return
        elapsed = time.perf_counter() - pending.started
        self.grant_latencies_s.append(elapsed)
        if self.registry is not None:
            self.registry.histogram(
                "rekey_grant_latency_seconds", peer=self.peer_id
            ).observe(elapsed)
        self.rekey_stats.grants_installed += 1
        self._count("rekey_grants_installed_total")
        if pending.on_grant is not None:
            pending.on_grant(grant)
        for hook in list(self.on_install):
            hook(grant)

    def _fail(self, pending: _PendingRequest, error: Exception) -> None:
        if pending.future is not None and not pending.future.done():
            pending.future.set_exception(error)
        elif pending.on_error is not None:
            pending.on_error(error)

    # -- plumbing ------------------------------------------------------------

    def _track(self, task: asyncio.Task) -> None:
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    def _notify_if_idle(self) -> None:
        if not self._pending and self._idle is not None:
            if not self._idle.done():
                self._idle.set_result(None)

    async def _on_connected(self) -> None:
        # The server is stateless, so reconnect recovery is simply
        # re-asking every unanswered question.
        for pending in self._pending.values():
            self._writer.write(encode_frame(pending.frame))
        if self._pending:
            await self._writer.drain()
