"""Fault-tolerant parallel multi-path dissemination (Section 4.2.1).

The paper notes the multi-path overlay buys more than privacy: "one could
easily extend our probabilistic multi-path routing algorithm to route an
event on two or more independent paths (in parallel).  This would make
our event dissemination system more fault tolerant and resilient to
message dropping based denial of service (DoS) attacks by malicious
routing nodes."

``RedundantRouter`` implements that extension: each event travels over
``k`` of its token's ``ind_t`` independent paths simultaneously.  Because
the paths are node-disjoint (Theorem 4.2), an adversary must place a
dropper on *every* chosen path to suppress an event, so the per-event
loss probability against a random fraction ``f`` of dropping nodes falls
roughly like ``(1 - (1-f)^d)^k``.

``DroppingNetwork`` simulates that adversary and measures delivery rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.obs.metrics import MetricsRegistry
from repro.routing.multipath import ProbabilisticRouter
from repro.topology.multipath import MultipathNetwork, SubscriberId


class RedundantRouter(ProbabilisticRouter):
    """Multi-path routing with per-event path redundancy ``k``."""

    def __init__(
        self,
        network: MultipathNetwork,
        frequencies: Mapping[Hashable, float],
        redundancy: int = 2,
        ind_max: int | None = None,
        tau: float | None = None,
        seed: int = 11,
        registry: MetricsRegistry | None = None,
    ):
        super().__init__(network, frequencies, ind_max=ind_max, tau=tau,
                         seed=seed, registry=registry)
        if redundancy < 1:
            raise ValueError("redundancy must be at least one path")
        if redundancy > network.ind:
            raise ValueError(
                f"redundancy {redundancy} exceeds the network's "
                f"ind={network.ind} independent paths"
            )
        self.redundancy = redundancy

    def route_redundant(
        self, token: Hashable, subscriber: SubscriberId
    ) -> list[list[Hashable]]:
        """The paths one event travels: ``min(k, ind_t)`` distinct choices.

        Paths are sampled without replacement from the token's available
        independent paths, so the copies never share an interior node.
        """
        available = self.paths_per_token.get(token, 1)
        paths = self.network.independent_paths(
            subscriber, max(available, self.redundancy)
        )
        count = min(self.redundancy, len(paths))
        return self.rng.sample(paths, count)

    def expected_apparent_frequency(self, token: Hashable) -> float:
        """Redundancy raises the per-node apparent rate to ``k/ind_t``.

        The privacy/fault-tolerance trade-off: each extra copy multiplies
        what any single on-path node observes.
        """
        base = super().expected_apparent_frequency(token)
        return base * min(
            self.redundancy, self.paths_per_token.get(token, 1)
        )


@dataclass
class DeliveryStats:
    """Outcome of a dissemination run under message-dropping nodes."""

    attempted: int = 0
    delivered: int = 0
    copies_sent: int = 0

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.attempted if self.attempted else 0.0

    @property
    def overhead(self) -> float:
        """Message copies per attempted delivery."""
        return self.copies_sent / self.attempted if self.attempted else 0.0


class DroppingNetwork:
    """A multi-path overlay where some routing nodes silently drop events.

    Models the DoS adversary the paper's extension defends against: a
    random fraction of interior nodes discard every event they should
    forward.  An event copy survives iff no interior node of its path is
    a dropper; the event is delivered iff any copy survives.
    """

    def __init__(
        self,
        network: MultipathNetwork,
        dropper_fraction: float,
        seed: int = 13,
    ):
        if not 0.0 <= dropper_fraction <= 1.0:
            raise ValueError("dropper fraction must be within [0, 1]")
        self.network = network
        rng = random.Random(seed)
        # Candidate droppers are the nodes that actually occupy interior
        # path positions.  (Selecting on ``len(node)`` would assume sized
        # node ids and breaks for plain int/str broker ids; iterating
        # ``network.brokers()`` keeps the seeded sampling order stable.)
        interior_positions = {
            node
            for subscriber in network.subscribers()
            for path in network.independent_paths(subscriber)
            for node in path[1:-1]
        }
        interior = [
            node for node in network.brokers() if node in interior_positions
        ]
        dropper_count = round(dropper_fraction * len(interior))
        self.droppers: set[Hashable] = set(
            rng.sample(interior, dropper_count)
        )

    def copy_survives(self, path: Iterable[Hashable]) -> bool:
        """Whether one event copy traverses *path* without being dropped."""
        nodes = list(path)
        return not any(node in self.droppers for node in nodes[1:-1])

    def run(
        self,
        router: RedundantRouter,
        events: int,
        seed: int = 17,
    ) -> DeliveryStats:
        """Publish *events* Zipf-sampled events to random subscribers."""
        rng = random.Random(seed)
        tokens = list(router.frequencies)
        weights = [router.frequencies[token] for token in tokens]
        subscribers = self.network.subscribers()
        stats = DeliveryStats()
        for _ in range(events):
            token = rng.choices(tokens, weights)[0]
            subscriber = rng.choice(subscribers)
            paths = router.route_redundant(token, subscriber)
            stats.attempted += 1
            stats.copies_sent += len(paths)
            if any(self.copy_survives(path) for path in paths):
                stats.delivered += 1
        return stats


def analytic_delivery_rate(
    dropper_fraction: float, path_interior_length: int, redundancy: int
) -> float:
    """Closed-form delivery probability for node-disjoint paths.

    One copy survives with probability ``(1-f)^d``; ``k`` disjoint copies
    fail together with probability ``(1 - (1-f)^d)^k``.
    """
    if not 0.0 <= dropper_fraction <= 1.0:
        raise ValueError("dropper fraction must be within [0, 1]")
    survive_one = (1.0 - dropper_fraction) ** path_interior_length
    return 1.0 - (1.0 - survive_one) ** redundancy
