"""Secure content-based event routing (Section 4).

- :mod:`repro.routing.tokens` -- tokenization of routable attributes via
  the Song-Wagner-Perrig scheme, so semi-honest brokers can match events
  against subscriptions without learning attribute values;
- :mod:`repro.routing.multipath` -- probabilistic multi-path event routing:
  ``ind_t = tau * lambda_t`` independent paths per token flatten the
  apparent token-frequency distribution;
- :mod:`repro.routing.entropy` -- the entropy metrics ``S_act``, ``S_app``,
  ``S_max`` of Section 4.2;
- :mod:`repro.routing.observer` -- per-node and coalition frequency
  observations (collusive and non-collusive settings);
- :mod:`repro.routing.attacks` -- the frequency-inference attack used to
  quantify leakage.
"""

from repro.routing.entropy import entropy_bits, max_entropy_bits, normalize
from repro.routing.faulttolerance import DroppingNetwork, RedundantRouter
from repro.routing.mix import BatchingMix, timing_linkage_attack
from repro.routing.multipath import ProbabilisticRouter, paths_for_frequency
from repro.routing.observer import CoalitionObserver, NodeObserver
from repro.routing.tokens import (
    RoutableToken,
    TokenAuthority,
    grant_routing_filters,
    tokenize_event,
    tokenized_match,
    tokenized_subscription,
)

__all__ = [
    "BatchingMix",
    "CoalitionObserver",
    "DroppingNetwork",
    "NodeObserver",
    "ProbabilisticRouter",
    "RedundantRouter",
    "RoutableToken",
    "TokenAuthority",
    "entropy_bits",
    "grant_routing_filters",
    "max_entropy_bits",
    "normalize",
    "paths_for_frequency",
    "timing_linkage_attack",
    "tokenize_event",
    "tokenized_match",
    "tokenized_subscription",
]
