"""The secure-routing experiments of Section 5.2.2 (Figures 6-8).

Simulates probabilistic multi-path event dissemination over a token
population with Zipf frequencies and Zipf-chosen subscriber interest sets,
then measures the apparent entropy curious routing nodes achieve:

- **non-collusive** (Fig 6): every node analyses only its own flows;
  ``S_app`` is the mean per-node entropy, swept over ``ind_max``;
- **collusive** (Fig 7): a random fraction of nodes pools distinct-event
  observations, swept over the colluding fraction at ``ind = 2``;
- **construction cost** (Fig 8): route-setup cost of ``G_ind`` for the
  same token population, normalized to ``ind_max = 1``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.routing.entropy import entropy_bits, max_entropy_bits
from repro.routing.multipath import ProbabilisticRouter
from repro.routing.observer import CoalitionObserver, NodeObserver
from repro.topology.multipath import MultipathNetwork
from repro.workloads.zipf import ZipfSampler, zipf_weights


@dataclass
class RoutingExperimentConfig:
    """Parameters shared by the Fig 6-8 experiments (paper defaults)."""

    num_tokens: int = 128
    tokens_per_subscriber: int = 32
    zipf_exponent: float = 1.0
    depth: int = 2
    arity: int = 5
    events: int = 20000
    seed: int = 23


@dataclass
class RoutingExperimentResult:
    """Entropies measured by one simulation run."""

    ind_max: int
    s_max: float
    s_act: float
    s_app: float
    observer: NodeObserver = field(repr=False)
    router: ProbabilisticRouter = field(repr=False)
    subscriber_sets: dict[object, list[object]] = field(repr=False)


def _setup(
    config: RoutingExperimentConfig, ind_max: int
) -> tuple[MultipathNetwork, ProbabilisticRouter, list, dict, random.Random]:
    if ind_max > config.arity:
        raise ValueError(
            f"ind_max={ind_max} needs arity >= ind_max (got {config.arity})"
        )
    rng = random.Random(config.seed)
    network = MultipathNetwork(
        config.depth, config.arity, ind=max(2, ind_max)
    )
    tokens = [f"token-{i}" for i in range(config.num_tokens)]
    frequencies = dict(
        zip(tokens, zipf_weights(config.num_tokens, config.zipf_exponent))
    )
    router = ProbabilisticRouter(
        network, frequencies, ind_max=ind_max, seed=config.seed + 1
    )
    sampler = ZipfSampler(tokens, config.zipf_exponent, rng)
    interest: dict[object, list[object]] = {}
    for subscriber in network.subscribers():
        interest[subscriber] = sampler.sample_distinct(
            min(config.tokens_per_subscriber, config.num_tokens)
        )
    subscribers_of: dict[object, list] = {token: [] for token in tokens}
    for subscriber, chosen in interest.items():
        for token in chosen:
            subscribers_of[token].append(subscriber)
    return network, router, tokens, subscribers_of, rng


def run_dissemination(
    config: RoutingExperimentConfig, ind_max: int
) -> RoutingExperimentResult:
    """Publish ``config.events`` events and record node observations."""
    network, router, tokens, subscribers_of, rng = _setup(config, ind_max)
    sampler = ZipfSampler(tokens, config.zipf_exponent, rng)
    observer = NodeObserver()
    actual_counts: dict[object, int] = {token: 0 for token in tokens}

    for event_id in range(config.events):
        token = sampler.sample()
        actual_counts[token] += 1
        observer.note_event()
        for subscriber in subscribers_of[token]:
            path = router.route(token, subscriber)
            observer.observe_path(path, token, event_id, flow=subscriber)

    s_act = entropy_bits(
        {token: count for token, count in actual_counts.items() if count}
    )
    return RoutingExperimentResult(
        ind_max=ind_max,
        s_max=max_entropy_bits(config.num_tokens),
        s_act=s_act,
        s_app=observer.system_apparent_entropy(),
        observer=observer,
        router=router,
        subscriber_sets=subscribers_of,
    )


def sweep_ind_max(
    config: RoutingExperimentConfig | None = None,
    ind_values: list[int] | None = None,
) -> list[RoutingExperimentResult]:
    """Figure 6: apparent entropy vs. maximum independent paths."""
    config = config or RoutingExperimentConfig()
    ind_values = ind_values or [1, 2, 3, 4, 5]
    return [run_dissemination(config, ind) for ind in ind_values]


def sweep_collusion(
    config: RoutingExperimentConfig | None = None,
    fractions: list[float] | None = None,
    ind_max: int = 5,
    samples: int = 5,
) -> list[tuple[float, float, RoutingExperimentResult]]:
    """Figure 7: coalition entropy vs. fraction of colluding nodes.

    Returns ``(fraction, coalition_entropy, result)`` triples.  The
    dissemination run is shared across fractions; each fraction's entropy
    is averaged over *samples* random coalitions.
    """
    config = config or RoutingExperimentConfig()
    fractions = fractions or [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
    result = run_dissemination(config, ind_max)
    rng = random.Random(config.seed + 2)
    nodes = sorted(result.observer.observing_nodes())
    rows = []
    for fraction in fractions:
        if fraction <= 0:
            rows.append((fraction, result.s_app, result))
            continue
        entropies = []
        for _ in range(samples):
            size = max(1, round(fraction * len(nodes)))
            coalition = rng.sample(nodes, size)
            entropies.append(
                CoalitionObserver(result.observer, coalition).entropy()
            )
        rows.append((fraction, sum(entropies) / len(entropies), result))
    return rows


def construction_cost_curve(
    config: RoutingExperimentConfig | None = None,
    ind_values: list[int] | None = None,
) -> list[tuple[int, float]]:
    """Figure 8: normalized route-setup cost vs. ``ind_max``.

    Cost of ``ind_max = 1`` normalizes the curve; saturation appears
    because only the most frequent tokens qualify for many paths.
    """
    config = config or RoutingExperimentConfig()
    ind_values = ind_values or list(range(1, 11))
    tokens = [f"token-{i}" for i in range(config.num_tokens)]
    frequencies = dict(
        zip(tokens, zipf_weights(config.num_tokens, config.zipf_exponent))
    )
    rows = []
    baseline = None
    for ind_max in ind_values:
        arity = max(config.arity, ind_max)
        network = MultipathNetwork(config.depth, arity, ind=max(2, ind_max))
        router = ProbabilisticRouter(network, frequencies, ind_max=ind_max)
        cost = router.construction_cost()
        if baseline is None:
            baseline = cost
        rows.append((ind_max, cost / baseline))
    return rows
