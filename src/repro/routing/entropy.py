"""Entropy metrics for routing-layer information leakage (Section 4.2).

The paper measures leakage as the Shannon entropy of the token-frequency
distribution a curious routing node observes:

- ``S_act = -sum_t lambda_t log lambda_t`` -- the actual distribution;
- ``S_app`` -- the apparent distribution after multi-path smoothing;
- ``S_max = log |Gamma|`` -- the indistinguishability ideal.

Lower entropy means a sharper distribution, hence a more accurate
frequency-inference attack; the metric is attack-algorithm independent.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping


def normalize(frequencies: Mapping[object, float]) -> dict[object, float]:
    """Scale a frequency map so it sums to one (dropping zero entries)."""
    positive = {
        token: freq for token, freq in frequencies.items() if freq > 0
    }
    total = sum(positive.values())
    if total <= 0:
        raise ValueError("no positive frequencies to normalize")
    return {token: freq / total for token, freq in positive.items()}


def entropy_bits(frequencies: Mapping[object, float]) -> float:
    """Shannon entropy (base 2) of a frequency map, after normalization."""
    distribution = normalize(frequencies)
    return -sum(p * math.log2(p) for p in distribution.values())


def max_entropy_bits(token_count: int) -> float:
    """``S_max = log2 |Gamma|``."""
    if token_count < 1:
        raise ValueError("need at least one token")
    return math.log2(token_count)


def apparent_frequencies(
    actual: Mapping[object, float], paths_per_token: Mapping[object, int]
) -> dict[object, float]:
    """Analytical apparent distribution ``lambda'_t = lambda_t / ind_t``.

    This is what any single routing node on one of the ``ind_t`` paths
    observes in expectation (Section 4.2); with ``ind_t`` proportional to
    ``lambda_t`` it flattens to a constant.
    """
    return {
        token: freq / max(1, paths_per_token.get(token, 1))
        for token, freq in actual.items()
    }


def entropy_gap(apparent: Mapping[object, float], token_count: int) -> float:
    """``S_max - S_app`` in bits (0 means perfect indistinguishability)."""
    return max_entropy_bits(token_count) - entropy_bits(apparent)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (ValueError on empty input)."""
    items = list(values)
    if not items:
        raise ValueError("mean of empty sequence")
    return sum(items) / len(items)
