"""The frequency-inference attack (Section 4.1).

A curious routing node knows the *a priori* publication-frequency
distribution over topics (domain knowledge) and observes the frequency of
each opaque token passing through it.  Matching the two rankings guesses
which token hides which topic.  Probabilistic multi-path routing flattens
the observed ranking, collapsing the attack's accuracy toward random
guessing.

The attack here is rank matching -- sort both distributions and align by
rank -- which is optimal for distinct frequencies under a permutation
prior, and exactly the attack the entropy metric upper-bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one inference attempt."""

    guesses: dict[Hashable, Hashable]
    correct: int
    total: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


def rank_matching_attack(
    observed_counts: Mapping[Hashable, float],
    prior_frequencies: Mapping[Hashable, float],
    truth: Mapping[Hashable, Hashable],
) -> AttackResult:
    """Guess the topic behind each token by frequency-rank alignment.

    *observed_counts* maps token -> count at the attacking node(s);
    *prior_frequencies* maps topic -> a-priori frequency; *truth* maps
    token -> actual topic (ground truth for scoring only).

    Tokens the attacker never saw are excluded from the attempt (it cannot
    rank them), matching how a passive eavesdropper operates.
    """
    token_ranking = sorted(
        observed_counts, key=lambda t: observed_counts[t], reverse=True
    )
    topic_ranking = sorted(
        prior_frequencies,
        key=lambda topic: prior_frequencies[topic],
        reverse=True,
    )
    guesses: dict[Hashable, Hashable] = {}
    correct = 0
    for token, topic in zip(token_ranking, topic_ranking):
        guesses[token] = topic
        if truth.get(token) == topic:
            correct += 1
    return AttackResult(guesses, correct, len(token_ranking))


def random_guess_accuracy(token_count: int) -> float:
    """Expected accuracy of random assignment: ``1/|Gamma|`` per token."""
    if token_count < 1:
        raise ValueError("need at least one token")
    return 1.0 / token_count
