"""Tokenization of routable attributes (Section 4.1).

Based on Song, Wagner and Perrig's searchable encryption:

- the KDC issues the token ``T(w) = F_{rk(KDC)}(w)`` for topic ``w``;
- a subscriber subscribes with the filter ``<topic, EQ, T(w)>``;
- a publisher attaches the routable attribute ``<r, F_{T(w)}(r)>`` for a
  fresh random nonce ``r``;
- a broker matches by checking ``F_{tok}(r) == match``.

A broker therefore learns only *that* an event matches a subscription it
carries -- never the topic string.  Because ``r`` is fresh per event, two
events under the same topic are unlinkable to a broker that carries no
matching subscription.

Numeric, category and string attributes route by their key-tree element
identifiers (Section 3.1 "we also use the key tree identifier for
tokenization"): every prefix of the event's ktid is tokenized the same
way, and a subscription for a cover element tokenizes that element, so
prefix containment becomes token equality at the right level.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.crypto.prf import F, constant_time_equal
from repro.core.ktid import KTID
from repro.obs.lru import LRUCache
from repro.siena.events import Event
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kdc import AuthorizationGrant
    from repro.obs.metrics import MetricsRegistry

_NONCE_BYTES = 16


@dataclass(frozen=True)
class RoutableToken:
    """The routable attribute pair ``<r, F_T(r)>`` carried by an event."""

    nonce: bytes
    proof: bytes

    def encode(self) -> str:
        """Hex encoding usable as a Siena string attribute value."""
        return (self.nonce + self.proof).hex()

    @classmethod
    def decode(cls, text: str) -> "RoutableToken":
        raw = bytes.fromhex(text)
        if len(raw) < _NONCE_BYTES + 1:
            raise ValueError("routable token too short")
        return cls(raw[:_NONCE_BYTES], raw[_NONCE_BYTES:])


def make_routable(token: bytes, nonce: bytes | None = None) -> RoutableToken:
    """Publisher side: build ``<r, F_{T(w)}(r)>`` for label token ``T(w)``."""
    if nonce is None:
        nonce = os.urandom(_NONCE_BYTES)
    return RoutableToken(nonce, F(token, nonce))


def routable_matches(token: bytes, routable: RoutableToken) -> bool:
    """Broker side: check ``F_{tok}(r) == match`` in constant time."""
    return constant_time_equal(F(token, routable.nonce), routable.proof)


class TokenAuthority:
    """Derives label tokens from the KDC master key.

    Distinct from decryption keys: compromise of a token reveals which
    events carry a label, never their contents.
    """

    def __init__(self, master_key: bytes):
        self.master_key = master_key

    def topic_token(self, topic: str) -> bytes:
        """``T(w) = F_{rk}(w)``."""
        return F(self.master_key, b"topic:" + topic.encode("utf-8"))

    def element_token(self, topic: str, attribute: str, element: object) -> bytes:
        """Token for one key-tree element of one attribute.

        Numeric elements are ktids; category/string elements are labels.
        """
        if isinstance(element, KTID):
            material = element.to_bytes()
        elif isinstance(element, str):
            material = element.encode("utf-8")
        else:
            raise TypeError(f"untokenizable element {element!r}")
        label = b"element:" + topic.encode("utf-8") + b"\x00"
        label += attribute.encode("utf-8") + b"\x00" + material
        return F(self.master_key, label)

    def ktid_prefix_tokens(
        self, topic: str, attribute: str, leaf: KTID
    ) -> list[bytes]:
        """Tokens for every prefix of *leaf* (publisher side).

        An event advertises all its prefixes; a cover-element subscription
        matches at exactly one of them.
        """
        prefixes = list(leaf.ancestors()) + [leaf]
        return [
            self.element_token(topic, attribute, prefix) for prefix in prefixes
        ]


class CachingTokenAuthority(TokenAuthority):
    """A :class:`TokenAuthority` that memoizes token pre-computation.

    Label tokens are deterministic PRFs of the master key, so memoization
    is exact: ``T(w)`` and element tokens never change for a fixed KDC.
    The LRU bound keeps hostile topic churn from growing the map without
    limit.  Hit/miss/eviction counters register in *registry* under
    ``token_authority_cache_*`` when one is supplied.
    """

    def __init__(
        self,
        master_key: bytes,
        capacity: int = 4096,
        registry: "MetricsRegistry | None" = None,
        **labels,
    ):
        super().__init__(master_key)
        self.cache = LRUCache(
            capacity, "token_authority_cache", registry, **labels
        )

    def topic_token(self, topic: str) -> bytes:
        return self.cache.get_or_compute(
            ("topic", topic), lambda: TokenAuthority.topic_token(self, topic)
        )

    def element_token(self, topic: str, attribute: str, element: object) -> bytes:
        if isinstance(element, KTID):
            tag: object = ("ktid", element.to_bytes())
        else:
            tag = element
        return self.cache.get_or_compute(
            ("element", topic, attribute, tag),
            lambda: TokenAuthority.element_token(self, topic, attribute, element),
        )


# -- integration with the Siena broker ------------------------------------------

#: Attribute name carrying the tokenized topic of an event.
TOPIC_TOKEN_ATTRIBUTE = "_ttok"
#: Attribute prefix carrying tokenized element labels, one per level.
ELEMENT_TOKEN_ATTRIBUTE = "_etok"


def token_plan(
    authority: TokenAuthority,
    elements: dict[str, object],
    topic: str,
) -> list[tuple[str, bytes]]:
    """The ``(attribute name, label token)`` pairs one event tokenizes.

    The *plan* separates deterministic token derivation from the per-event
    proof computation (``make_routable``), so callers can batch the proof
    PRFs -- across events, or across a crypto worker pool -- without
    duplicating the attribute-naming rules of :func:`tokenize_event`.
    """
    plan: list[tuple[str, bytes]] = [
        (TOPIC_TOKEN_ATTRIBUTE, authority.topic_token(topic))
    ]
    for attribute, element in elements.items():
        if isinstance(element, KTID):
            prefixes = list(element.ancestors()) + [element]
            for level, prefix in enumerate(prefixes):
                plan.append((
                    f"{ELEMENT_TOKEN_ATTRIBUTE}:{attribute}:{level}",
                    authority.element_token(topic, attribute, prefix),
                ))
        elif isinstance(element, str):
            plan.append((
                f"{ELEMENT_TOKEN_ATTRIBUTE}:{attribute}",
                authority.element_token(topic, attribute, element),
            ))
    return plan


def _assemble_tokenized(
    routable: Event, attributes: dict[str, str]
) -> Event:
    """Strip plaintext routing attributes and graft the token pairs on."""
    stripped = routable.without_attributes(
        *(set(routable.attributes) - {"_seq"})
    )
    return stripped.with_attributes(**attributes)


def tokenize_event(
    authority: TokenAuthority,
    routable: Event,
    elements: dict[str, object],
    topic: str,
) -> Event:
    """Replace plaintext routing attributes with tokenized ones.

    The returned event carries only the nonce/proof pairs; brokers with the
    right subscription tokens can match it, and nothing else.
    """
    token_attributes = {
        name: make_routable(token).encode()
        for name, token in token_plan(authority, elements, topic)
    }
    return _assemble_tokenized(routable, token_attributes)


def tokenize_event_batch(
    authority: TokenAuthority,
    items: list[tuple[Event, dict[str, object], str]],
    prf: "Callable[[list[tuple[bytes, bytes]]], list[bytes]] | None" = None,
) -> list[Event]:
    """Tokenize a batch of ``(routable, elements, topic)`` items at once.

    All proof PRFs of the batch are evaluated through *prf* -- a batch
    function mapping ``(token, nonce)`` pairs to proofs, typically
    :meth:`repro.parallel.CryptoPool.prf_batch` -- falling back to the
    in-process PRF when None.  Semantically identical to calling
    :func:`tokenize_event` per item (nonces are fresh either way).
    """
    plans = [token_plan(authority, elements, topic)
             for _, elements, topic in items]
    pairs: list[tuple[bytes, bytes]] = []
    for plan in plans:
        for _, token in plan:
            pairs.append((token, os.urandom(_NONCE_BYTES)))
    if prf is None:
        proofs = [F(token, nonce) for token, nonce in pairs]
    else:
        proofs = prf(pairs)
    tokenized: list[Event] = []
    cursor = 0
    for (routable, _, _), plan in zip(items, plans):
        attributes: dict[str, str] = {}
        for name, _token in plan:
            nonce = pairs[cursor][1]
            attributes[name] = RoutableToken(nonce, proofs[cursor]).encode()
            cursor += 1
        tokenized.append(_assemble_tokenized(routable, attributes))
    return tokenized


def tokenized_subscription(
    authority: TokenAuthority,
    topic: str,
    element_constraints: dict[str, object] | None = None,
) -> Filter:
    """Build the tokenized filter a subscriber registers with its broker.

    ``element_constraints`` maps attribute name to the granted cover
    element (one filter per cover element; a multi-element cover registers
    several filters).
    """
    constraints = [
        Constraint(
            TOPIC_TOKEN_ATTRIBUTE,
            Op.EQ,
            authority.topic_token(topic).hex(),
        )
    ]
    for attribute, element in (element_constraints or {}).items():
        token = authority.element_token(topic, attribute, element)
        if isinstance(element, KTID):
            name = f"{ELEMENT_TOKEN_ATTRIBUTE}:{attribute}:{element.depth}"
        else:
            name = f"{ELEMENT_TOKEN_ATTRIBUTE}:{attribute}"
        constraints.append(Constraint(name, Op.EQ, token.hex()))
    return Filter(constraints)


def grant_routing_filters(
    authority: TokenAuthority, grant: "AuthorizationGrant"
) -> list[Filter]:
    """The tokenized routing filters one authorization grant implies.

    Numeric clauses route on their KTID cover elements (prefix
    containment becomes token equality at the cover's level, one filter
    per element); grants without KTID covers route on the topic token
    alone -- their fine-grained access control stays where it
    cryptographically lives, in the grant's component keys.  This is the
    subscription-side bridge from "what the KDC authorized" to "what the
    broker network routes on", used by the real-network clients
    (:mod:`repro.rtnet`) and the benchmark drivers.
    """
    filters: list[Filter] = []
    seen: set[Filter] = set()
    for clause_grant in grant.clauses:
        for component in clause_grant.components:
            if not isinstance(component.element, KTID):
                continue
            routing_filter = tokenized_subscription(
                authority, grant.topic, {component.attribute: component.element}
            )
            if routing_filter not in seen:
                seen.add(routing_filter)
                filters.append(routing_filter)
    if not filters:
        filters.append(tokenized_subscription(authority, grant.topic))
    return filters


def _tokenized_match(
    subscription: Filter,
    event: Event,
    matches: Callable[[bytes, RoutableToken], bool],
) -> bool:
    for constraint in subscription:
        if not constraint.name.startswith(
            (TOPIC_TOKEN_ATTRIBUTE, ELEMENT_TOKEN_ATTRIBUTE)
        ):
            if not constraint.matches(event):
                return False
            continue
        value = event.get(constraint.name)
        if not isinstance(value, str):
            return False
        try:
            routable = RoutableToken.decode(value)
            token = bytes.fromhex(str(constraint.value))
        except ValueError:
            return False
        if not matches(token, routable):
            return False
    return True


def tokenized_match(subscription: Filter, event: Event) -> bool:
    """Broker match predicate for tokenized subscriptions and events.

    Subscription constraint values are hex label tokens; event attribute
    values are hex-encoded ``<r, F_T(r)>`` pairs.  A constraint matches
    when ``F_{tok}(r) == match``.  Non-token constraints fall back to plain
    matching (mixed plaintext/tokenized deployments).
    """
    return _tokenized_match(subscription, event, routable_matches)


class TokenPRFCache:
    """Memoizes broker-side proof recomputation ``F_{tok}(r)``.

    Every broker on an event's path recomputes the same PRF for the same
    ``(token, nonce)`` pair -- the dominant per-hop crypto cost of
    tokenized matching.  The PRF is a pure function of its inputs, so the
    memo is exact and can be shared by every broker in a process.  The
    nonce is fresh per event, so entries stop hitting once an event leaves
    the network; the LRU bound reclaims them.
    """

    def __init__(
        self,
        capacity: int = 65536,
        registry: "MetricsRegistry | None" = None,
        **labels,
    ):
        self.cache = LRUCache(capacity, "token_prf_cache", registry, **labels)

    def proof(self, token: bytes, nonce: bytes) -> bytes:
        """``F(token, nonce)``, served from cache when already computed."""
        return self.cache.get_or_compute(
            (token, nonce), lambda: F(token, nonce)
        )

    def matches(self, token: bytes, routable: RoutableToken) -> bool:
        """Drop-in for :func:`routable_matches` backed by the memo."""
        return constant_time_equal(
            self.proof(token, routable.nonce), routable.proof
        )


def cached_tokenized_match(
    cache: TokenPRFCache,
) -> Callable[[Filter, Event], bool]:
    """A :func:`tokenized_match`-equivalent predicate backed by *cache*.

    Returns the exact same verdicts as :func:`tokenized_match` (the PRF is
    pure), while amortizing proof recomputation across the brokers that
    share the cache.
    """

    def match(subscription: Filter, event: Event) -> bool:
        return _tokenized_match(subscription, event, cache.matches)

    return match
