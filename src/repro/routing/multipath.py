"""Probabilistic multi-path event routing (Section 4.2).

For a token ``t`` published with frequency ``lambda_t``, the publisher
provisions ``ind_t = tau * lambda_t`` independent paths (capped at
``ind_max``) and routes each event over ONE path chosen uniformly at
random.  Every on-path node then observes the apparent frequency
``lambda_t / ind_t ~= 1/tau`` -- constant across tokens, so frequency
inference learns (nearly) nothing.  Routing cost is unchanged: each event
still traverses exactly one path.
"""

from __future__ import annotations

import math
import random
from typing import Hashable, Mapping

from repro.obs.metrics import MetricsRegistry
from repro.topology.multipath import MultipathNetwork, SubscriberId


def paths_for_frequency(
    frequency: float,
    tau: float,
    ind_max: int,
) -> int:
    """``ind_t = clamp(round(tau * lambda_t), 1, ind_max)``."""
    if frequency < 0:
        raise ValueError("frequencies must be non-negative")
    if ind_max < 1:
        raise ValueError("ind_max must be at least one")
    return max(1, min(ind_max, round(tau * frequency)))


def tau_for(
    frequencies: Mapping[object, float],
    design_paths: int = 10,
    saturate_quantile: float = 0.1,
) -> float:
    """Pick the system constant ``tau`` of ``ind_t = tau * lambda_t``.

    ``tau`` is a *design* constant, independent of the deployed cap
    ``ind_max``: it fixes the apparent per-path frequency ``1/tau`` that
    uncapped tokens present.  The calibration here asks the top
    *saturate_quantile* of tokens for *design_paths* paths, which
    reproduces the paper's Fig 8 observation that with ``ind_max = 10``
    only the ~12 most popular of 128 Zipf tokens use all ten paths while
    ~48 use fewer than two.
    """
    if not 0 < saturate_quantile <= 1:
        raise ValueError("saturate_quantile must be in (0, 1]")
    if design_paths < 1:
        raise ValueError("design_paths must be positive")
    positive = sorted(
        (f for f in frequencies.values() if f > 0), reverse=True
    )
    if not positive:
        raise ValueError("need at least one positive frequency")
    index = min(
        len(positive) - 1, max(0, math.ceil(saturate_quantile * len(positive)) - 1)
    )
    return design_paths / positive[index]


class ProbabilisticRouter:
    """Routes events over ``G_ind``, one uniformly chosen path per event."""

    def __init__(
        self,
        network: MultipathNetwork,
        frequencies: Mapping[Hashable, float],
        ind_max: int | None = None,
        tau: float | None = None,
        seed: int = 11,
        registry: MetricsRegistry | None = None,
    ):
        self.network = network
        self.registry = registry if registry is not None else MetricsRegistry()
        self._c_routes = self.registry.counter("multipath_routes_total")
        self._c_batch_routes = self.registry.counter(
            "multipath_batch_routes_total"
        )
        self._h_path_hops = self.registry.histogram("multipath_path_hops")
        self.frequencies = dict(frequencies)
        self.ind_max = ind_max if ind_max is not None else network.ind
        if self.ind_max > network.ind:
            raise ValueError(
                f"ind_max={self.ind_max} exceeds the network's ind="
                f"{network.ind}"
            )
        self.tau = tau if tau is not None else tau_for(self.frequencies)
        self.rng = random.Random(seed)
        self.paths_per_token = {
            token: paths_for_frequency(freq, self.tau, self.ind_max)
            for token, freq in self.frequencies.items()
        }

    def route(
        self, token: Hashable, subscriber: SubscriberId
    ) -> list[Hashable]:
        """One event's path to *subscriber*, chosen uniformly at random."""
        available = self.paths_per_token.get(token, 1)
        paths = self.network.independent_paths(subscriber, available)
        chosen = self.rng.choice(paths)
        self._c_routes.inc()
        self._h_path_hops.observe(len(chosen))
        return chosen

    def route_batch(
        self, token: Hashable, subscriber: SubscriberId, count: int
    ) -> list[Hashable]:
        """One path carrying a whole batch of *count* same-token events.

        Amortizes path selection and setup: the batch makes one uniform
        draw instead of *count* draws.  The apparent-frequency guarantee
        degrades gracefully -- an on-path node now sees batch arrivals at
        ``lambda_t / (ind_t * B)`` with burst size ``B`` -- so batching
        trades a bounded amount of traffic-shape entropy for throughput;
        callers that need per-event unlinkability route batches of one.
        """
        if count < 1:
            raise ValueError("a batch routes at least one event")
        available = self.paths_per_token.get(token, 1)
        paths = self.network.independent_paths(subscriber, available)
        chosen = self.rng.choice(paths)
        self._c_routes.inc(count)
        self._c_batch_routes.inc()
        self._h_path_hops.observe(len(chosen))
        return chosen

    def publish(
        self,
        events: object | list[object],
        token: Hashable,
        subscriber: SubscriberId,
        *,
        at_time: float = 0.0,
        parallel: object | None = None,
    ) -> list[Hashable]:
        """Unified publish surface: route one event or a batch of them.

        A single event delegates to :meth:`route`; a list makes one
        uniform path draw for the whole batch via :meth:`route_batch`.
        *at_time* and *parallel* are accepted for signature uniformity
        with the broker surfaces and ignored -- path selection is
        timeless and already O(1) per batch, so there is nothing for a
        process pool to offload (a serial fallback by construction).
        """
        del at_time, parallel
        if isinstance(events, list):
            return self.route_batch(token, subscriber, len(events))
        return self.route(token, subscriber)

    def expected_apparent_frequency(self, token: Hashable) -> float:
        """``lambda_t / ind_t`` -- a single on-path node's expectation."""
        return self.frequencies[token] / self.paths_per_token[token]

    def construction_cost(self) -> float:
        """Route-setup cost for this token population (Fig 8 metric)."""
        return self.network.construction_cost(self.paths_per_token)

    def path_usage_histogram(self) -> dict[int, int]:
        """How many tokens use each path count (Fig 8's discussion)."""
        histogram: dict[int, int] = {}
        for paths in self.paths_per_token.values():
            histogram[paths] = histogram.get(paths, 0) + 1
        return histogram


def ideal_ind_max(frequencies: Mapping[object, float]) -> int:
    """``max_t lambda_t / min_t lambda_t`` (Section 5.2.2's ideal)."""
    positive = [f for f in frequencies.values() if f > 0]
    if not positive:
        raise ValueError("need at least one positive frequency")
    return max(1, math.ceil(max(positive) / min(positive)))
