"""Curious-node frequency observation (Sections 4.2, 5.2.2).

A curious routing node "observes the frequency of the events that match a
given subscription filter" (Section 4.1) -- its unit of observation is a
*flow*: one filter token toward one downstream subscriber.  Probabilistic
multi-path routing spreads each flow's ``lambda_t`` events over ``ind_t``
node-disjoint paths, so any single node sees at most ``lambda_t / ind_t``
of a flow -- constant (``1/tau``) across tokens when ``ind_t = tau *
lambda_t``.

``NodeObserver`` records per-node, per-flow counts.  A node's apparent
frequency for a token is its best (highest-rate) flow for that token.
``CoalitionObserver`` merges colluding nodes' views by *distinct events*:
a coalition straddling all ``ind_t`` paths of a flow reconstructs the full
``lambda_t`` (Figure 7's collusive setting; with every node colluding the
apparent entropy collapses to ``S_act``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable

from repro.routing.entropy import entropy_bits


class NodeObserver:
    """Per-node token-frequency observations, flow by flow."""

    def __init__(self):
        #: node -> (token, flow) -> event count
        self.flow_counts: dict[
            Hashable, dict[tuple[Hashable, Hashable], int]
        ] = defaultdict(lambda: defaultdict(int))
        #: node -> (token, flow) -> distinct event ids (coalition merging)
        self.event_ids: dict[
            Hashable, dict[tuple[Hashable, Hashable], set[int]]
        ] = defaultdict(lambda: defaultdict(set))
        self.total_events = 0

    def observe_path(
        self,
        path: Iterable[Hashable],
        token: Hashable,
        event_id: int,
        flow: Hashable = None,
    ) -> None:
        """Record one event of one flow traversing *path*.

        Endpoints (publisher, subscriber) are excluded -- they trivially
        know their own traffic; only intermediate routing nodes are
        curious-node candidates.
        """
        nodes = list(path)
        for node in nodes[1:-1]:
            self.flow_counts[node][(token, flow)] += 1
            self.event_ids[node][(token, flow)].add(event_id)

    def note_event(self) -> None:
        """Count one published event (denominator for frequencies)."""
        self.total_events += 1

    # -- single-node (non-collusive) views ---------------------------------

    def node_token_frequencies(
        self, node: Hashable, aggregate_flows: bool = False
    ) -> dict[Hashable, int]:
        """Apparent per-token counts at one node.

        By default, a token's count is its best single flow (flows are not
        linkable across subscribers).  ``aggregate_flows=True`` models a
        stronger local attacker who sums all flows sharing a filter token.
        """
        frequencies: dict[Hashable, int] = defaultdict(int)
        for (token, _flow), count in self.flow_counts[node].items():
            if aggregate_flows:
                frequencies[token] += count
            else:
                frequencies[token] = max(frequencies[token], count)
        return dict(frequencies)

    def node_entropy(
        self, node: Hashable, aggregate_flows: bool = False
    ) -> float:
        """Entropy of one node's apparent token distribution."""
        return entropy_bits(self.node_token_frequencies(node, aggregate_flows))

    def observing_nodes(self) -> list[Hashable]:
        """Nodes that observed at least one event."""
        return [
            node for node, counts in self.flow_counts.items() if counts
        ]

    def mean_node_entropy(self, aggregate_flows: bool = False) -> float:
        """Average per-node entropy (each node restricted to its own view).

        A *local* variant of ``S_app``: it under-states the system entropy
        because every node's support is truncated to the tokens its own
        subscribers carry.  Kept for the observation-model ablation.
        """
        nodes = self.observing_nodes()
        if not nodes:
            raise ValueError("no observations recorded")
        return sum(
            self.node_entropy(node, aggregate_flows) for node in nodes
        ) / len(nodes)

    # -- system-level apparent distribution (the paper's S_app) --------------

    def system_apparent_frequencies(self) -> dict[Hashable, float]:
        """The apparent frequency ``lambda'_t`` each token presents.

        For every token, this is the per-flow rate a curious node on one of
        its paths observes -- empirically, the mean over observing nodes of
        that node's best-flow count.  Multi-path routing makes this
        ``lambda_t / ind_t``: with ``ind_t = tau * lambda_t`` the head of
        the distribution flattens to ``1/tau``.
        """
        sums: dict[Hashable, float] = defaultdict(float)
        counts: dict[Hashable, int] = defaultdict(int)
        for node in self.observing_nodes():
            for token, best in self.node_token_frequencies(node).items():
                sums[token] += best
                counts[token] += 1
        return {
            token: sums[token] / counts[token] for token in sums
        }

    def system_apparent_entropy(self) -> float:
        """``S_app``: entropy of the system-wide apparent distribution."""
        frequencies = self.system_apparent_frequencies()
        if not frequencies:
            raise ValueError("no observations recorded")
        return entropy_bits(frequencies)


class CoalitionObserver:
    """The merged view of a colluding subset of routing nodes."""

    def __init__(self, observer: NodeObserver, coalition: Iterable[Hashable]):
        self.observer = observer
        self.coalition = set(coalition)

    def merged_counts(self) -> dict[Hashable, int]:
        """Per-token apparent counts after pooling observations.

        Colluding nodes compare notes flow by flow: members sitting on
        different independent paths of the same flow merge their *distinct*
        event sets, reconstructing up to the flow's full ``lambda_t``.  A
        token's apparent count is then its best reconstructed flow.  With
        every node colluding this recovers the actual distribution
        (``S_app -> S_act``, the Fig 7 limit).
        """
        merged: dict[tuple[Hashable, Hashable], set[int]] = defaultdict(set)
        for node in self.coalition:
            for flow_key, ids in self.observer.event_ids.get(node, {}).items():
                merged[flow_key] |= ids
        best: dict[Hashable, int] = defaultdict(int)
        for (token, _flow), ids in merged.items():
            best[token] = max(best[token], len(ids))
        return dict(best)

    def entropy(self) -> float:
        """Apparent entropy of the coalition's merged distribution."""
        counts = self.merged_counts()
        if not counts:
            raise ValueError("the coalition observed no events")
        return entropy_bits(counts)
