"""Latency accounting for multi-path dissemination.

The paper claims probabilistic multi-path routing "adds no additional
messaging cost or latency" (Section 7): every independent path of
Theorem 4.2 has exactly the tree's depth, and each event still travels
exactly one path.  This module embeds ``G_ind`` onto a transit-stub
topology and measures per-event end-to-end latency, so the claim becomes
a measurement instead of an assertion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.routing.multipath import ProbabilisticRouter
from repro.topology.multipath import MultipathNetwork
from repro.topology.transit_stub import TransitStubTopology


@dataclass(frozen=True)
class LatencyStats:
    """Per-event latency statistics for one routing configuration."""

    mean: float
    minimum: float
    maximum: float
    samples: int


class EmbeddedMultipathNetwork:
    """``G_ind`` with every overlay node placed on an Internet topology."""

    def __init__(
        self,
        network: MultipathNetwork,
        topology: TransitStubTopology | None = None,
        per_hop_processing: float = 0.0002,
        seed: int = 7,
    ):
        self.network = network
        self.topology = topology or TransitStubTopology(seed=seed)
        self.per_hop_processing = per_hop_processing
        nodes = list(network.brokers()) + list(network.subscribers())
        placement_points = self.topology.sample_overlay(len(nodes))
        self.placement: dict[Hashable, int] = dict(
            zip(nodes, placement_points)
        )

    def path_latency(self, path: list[Hashable]) -> float:
        """One-way latency along an overlay path (links + processing)."""
        total = 0.0
        for source, target in zip(path, path[1:]):
            total += self.topology.one_way_delay(
                self.placement[source], self.placement[target]
            )
            total += self.per_hop_processing
        return total

    def measure(
        self,
        router: ProbabilisticRouter,
        events: int = 2000,
        seed: int = 19,
    ) -> LatencyStats:
        """Route *events* and collect end-to-end latency statistics."""
        rng = random.Random(seed)
        tokens = list(router.frequencies)
        weights = [router.frequencies[token] for token in tokens]
        subscribers = self.network.subscribers()
        latencies = []
        for _ in range(events):
            token = rng.choices(tokens, weights)[0]
            subscriber = rng.choice(subscribers)
            path = router.route(token, subscriber)
            latencies.append(self.path_latency(path))
        return LatencyStats(
            mean=sum(latencies) / len(latencies),
            minimum=min(latencies),
            maximum=max(latencies),
            samples=len(latencies),
        )


def compare_latency_across_ind(
    frequencies: Mapping[Hashable, float],
    ind_values: tuple[int, ...] = (1, 2, 3, 4, 5),
    depth: int = 2,
    arity: int = 5,
    events: int = 2000,
    seed: int = 7,
) -> dict[int, LatencyStats]:
    """Mean event latency for each ``ind_max`` over the same embedding.

    All configurations share one node placement, so differences come only
    from which (equal-length) paths events take.
    """
    network = MultipathNetwork(depth=depth, arity=arity,
                               ind=max(2, max(ind_values)))
    embedded = EmbeddedMultipathNetwork(network, seed=seed)
    results = {}
    for ind_max in ind_values:
        router = ProbabilisticRouter(
            network, dict(frequencies), ind_max=ind_max, seed=seed + ind_max
        )
        results[ind_max] = embedded.measure(router, events=events, seed=seed)
    return results
