"""Batching mixes: the timing-analysis complement to multi-path routing.

Section 4 positions PSGuard's multi-path routing as a defense against
attacks on the *frequency* at which events are published, complementing
Perng et al.'s mix-network defense [14] against popularity analysis.  A
third channel remains: *timing*.  Even with flattened frequencies, a
curious broker can match the precise timestamps of the events it relays
against publishers' known publication schedules and link opaque tokens to
publishers.

``BatchingMix`` implements the classic countermeasure the mix literature
(and [14]) builds on: a relay accumulates events for a window ``W`` and
flushes them at the boundary in random order, quantizing every timestamp
to the window grid and destroying intra-window order.  ``timing_linkage_
attack`` implements the attacker; the residual linkage accuracy falls
toward chance as ``W`` grows past the gap between publisher schedules
(``benchmarks/bench_ablation_timing_mix.py``), at the cost of ``W/2``
added latency on average.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence


@dataclass(frozen=True)
class MixedEvent:
    """One event as it leaves the mix."""

    release_time: float
    token: Hashable


class BatchingMix:
    """A timed batching mix: buffer for a window, flush shuffled.

    ``window <= 0`` disables mixing (events pass through untouched),
    which doubles as the attack's baseline.
    """

    def __init__(self, window: float, seed: int = 41):
        if window < 0:
            raise ValueError("mix window must be non-negative")
        self.window = window
        self.rng = random.Random(seed)

    def process(
        self, arrivals: Iterable[tuple[float, Hashable]]
    ) -> list[MixedEvent]:
        """Mix a full arrival trace ``(time, token)`` into release order."""
        if self.window == 0:
            return [
                MixedEvent(time, token)
                for time, token in sorted(arrivals, key=lambda item: item[0])
            ]
        batches: dict[int, list[Hashable]] = {}
        for time, token in arrivals:
            if time < 0:
                raise ValueError("arrival times must be non-negative")
            batches.setdefault(int(time // self.window), []).append(token)
        released: list[MixedEvent] = []
        for batch_index in sorted(batches):
            tokens = batches[batch_index]
            self.rng.shuffle(tokens)
            release_time = (batch_index + 1) * self.window
            released.extend(
                MixedEvent(release_time, token) for token in tokens
            )
        return released

    def added_latency(self) -> float:
        """Mean extra delay a mixed event suffers (``W / 2``)."""
        return self.window / 2.0


def _alignment_score(
    observed: Sequence[float], schedule: Sequence[float]
) -> tuple[float, float]:
    """How well *schedule* explains the observed release times.

    A mix only *delays*: each release must have a schedule point at or
    before it (causality), and a well-matched schedule produces a
    near-constant delay.  The score is ``(stddev of delays, mean delay)``
    compared lexicographically -- tight, consistent delays first; among
    equally consistent candidates, the smaller delay.  A release with no
    admissible schedule point scores infinitely bad.
    """
    if not observed or not schedule:
        return (float("inf"), float("inf"))
    import bisect

    ordered = sorted(schedule)
    delays = []
    for time in observed:
        index = bisect.bisect_right(ordered, time + 1e-9) - 1
        if index < 0:
            return (float("inf"), float("inf"))  # released before published
        delays.append(time - ordered[index])
    mean = sum(delays) / len(delays)
    variance = sum((delay - mean) ** 2 for delay in delays) / len(delays)
    # Round the spread to millisecond granularity so sub-noise jitter
    # doesn't decide ties; the mean delay then discriminates.
    return (round(variance**0.5, 3), mean)


@dataclass(frozen=True)
class TimingAttackResult:
    """Outcome of a timing-linkage attempt."""

    assignments: dict[Hashable, Hashable]
    correct: int
    total: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


def timing_linkage_attack(
    released: Sequence[MixedEvent],
    publisher_schedules: dict[Hashable, Sequence[float]],
    truth: dict[Hashable, Hashable],
) -> TimingAttackResult:
    """Link each token to a publisher by timestamp alignment.

    The attacker knows each publisher's publication schedule a priori
    (the paper's threat: "a priori knowledge about the frequency at which
    events are published") and observes the mix's output.  Each token is
    assigned to the publisher whose schedule best explains its release
    times.
    """
    observed: dict[Hashable, list[float]] = {}
    for event in released:
        observed.setdefault(event.token, []).append(event.release_time)

    assignments: dict[Hashable, Hashable] = {}
    correct = 0
    for token, times in observed.items():
        best_publisher = min(
            publisher_schedules,
            key=lambda publisher: _alignment_score(
                times, publisher_schedules[publisher]
            ),
        )
        assignments[token] = best_publisher
        if truth.get(token) == best_publisher:
            correct += 1
    return TimingAttackResult(assignments, correct, len(observed))


def interleaved_trace(
    publisher_schedules: dict[Hashable, Sequence[float]],
    tokens_per_publisher: dict[Hashable, Sequence[Hashable]],
    seed: int = 43,
) -> tuple[list[tuple[float, Hashable]], dict[Hashable, Hashable]]:
    """Build an arrival trace: each publisher emits its tokens on schedule.

    Each publication slot carries one of the publisher's tokens (chosen
    round-robin), producing the ground-truth token->publisher map the
    attack is scored against.
    """
    rng = random.Random(seed)
    arrivals: list[tuple[float, Hashable]] = []
    truth: dict[Hashable, Hashable] = {}
    for publisher, schedule in publisher_schedules.items():
        tokens = list(tokens_per_publisher[publisher])
        if not tokens:
            raise ValueError(f"publisher {publisher!r} has no tokens")
        for token in tokens:
            truth[token] = publisher
        for index, time in enumerate(schedule):
            jitter = rng.uniform(0, 1e-6)
            arrivals.append((time + jitter, tokens[index % len(tokens)]))
    arrivals.sort(key=lambda item: item[0])
    return arrivals, truth
