"""The rtnet wire protocol: length-prefixed frames over TCP.

Every message on an rtnet connection is one *frame*::

    +----------------+------------+------------------+
    | length (4, BE) | type (1)   | body (length - 1) |
    +----------------+------------+------------------+

The length covers the type byte plus the body and must lie in
``[1, FRAME_MAX]``; anything else is a protocol violation surfaced as
:class:`~repro.errors.FrameError` (never a hang, never a crash with an
unexpected exception type).  Bodies reuse the existing PSGuard codecs:
EVENT carries :func:`repro.core.wire.encode_sealed_event` bytes
verbatim, SUBSCRIBE/UNSUBSCRIBE carry
:func:`repro.core.wire.encode_filter` bytes, and GRANT_ACK carries
:func:`repro.core.wire.encode_grant` bytes, so the framing layer adds
no second serialization of the security-bearing payloads.

Connections open with a HELLO / HELLO_ACK exchange negotiating the
protocol version (a ``HELLO_ACK`` with version 0 is a rejection); PING /
PONG implement the source-routed settle barrier brokers and clients use
to flush in-flight control traffic (see :mod:`repro.rtnet.server`).
The key-lifecycle plane (see :mod:`repro.rekey`) speaks GRANT /
GRANT_ACK request-reply plus the REKEY and REVOKE control broadcasts.
"""

from __future__ import annotations

import asyncio
import enum
import struct
from dataclasses import dataclass

from repro.errors import FrameError
from repro.core.kdc import AuthorizationGrant
from repro.core.wire import (
    decode_filter,
    decode_grant,
    encode_filter,
    encode_grant,
)
from repro.siena.filters import Filter

#: Version carried in HELLO; bumped on incompatible frame changes.
PROTOCOL_VERSION = 1
#: Hard cap on one frame's (type + body) size: 4 MiB.
FRAME_MAX = 1 << 22

_HEADER = struct.Struct(">I")


class FrameType(enum.IntEnum):
    """The one-byte frame discriminator."""

    HELLO = 1
    HELLO_ACK = 2
    SUBSCRIBE = 3
    UNSUBSCRIBE = 4
    EVENT = 5
    ACK = 6
    HEARTBEAT = 7
    PING = 8
    PONG = 9
    GRANT = 10
    GRANT_ACK = 11
    REKEY = 12
    REVOKE = 13


def _pack_text(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack(">H", len(raw)) + raw


def _unpack_text(data: bytes, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from(">H", data, offset)
    offset += 2
    raw = data[offset: offset + length]
    if len(raw) != length:
        raise FrameError("truncated text field")
    return raw.decode("utf-8"), offset + length


def _pack_path(path: tuple[str, ...]) -> bytes:
    return struct.pack(">H", len(path)) + b"".join(
        _pack_text(hop) for hop in path
    )


def _unpack_path(data: bytes, offset: int) -> tuple[tuple[str, ...], int]:
    (count,) = struct.unpack_from(">H", data, offset)
    offset += 2
    hops = []
    for _ in range(count):
        hop, offset = _unpack_text(data, offset)
        hops.append(hop)
    return tuple(hops), offset


@dataclass(frozen=True)
class Hello:
    """Connection opener: who is dialing, as what, speaking which version."""

    peer_id: str
    role: str  # "broker" | "publisher" | "subscriber"
    version: int = PROTOCOL_VERSION

    type = FrameType.HELLO

    def encode_body(self) -> bytes:
        return (
            struct.pack(">H", self.version)
            + _pack_text(self.peer_id)
            + _pack_text(self.role)
        )


@dataclass(frozen=True)
class HelloAck:
    """Server's answer: its id and the accepted version (0 = rejected)."""

    peer_id: str
    version: int = PROTOCOL_VERSION

    type = FrameType.HELLO_ACK

    def encode_body(self) -> bytes:
        return struct.pack(">H", self.version) + _pack_text(self.peer_id)


@dataclass(frozen=True)
class Subscribe:
    """Register *filter* for the sending peer at the receiving broker."""

    filter: Filter

    type = FrameType.SUBSCRIBE

    def encode_body(self) -> bytes:
        return encode_filter(self.filter)


@dataclass(frozen=True)
class Unsubscribe:
    """Withdraw *filter* for the sending peer."""

    filter: Filter

    type = FrameType.UNSUBSCRIBE

    def encode_body(self) -> bytes:
        return encode_filter(self.filter)


@dataclass(frozen=True)
class EventFrame:
    """One sealed event in flight.

    *payload* is the PSE2 encoding of the (tokenized) sealed event,
    forwarded verbatim hop to hop -- brokers re-frame but never re-seal.
    *seq* numbers the frame on its link (acked on publisher links);
    *sent_at* is the publisher's wall-clock send time, for end-to-end
    latency measurement on a shared clock.
    """

    seq: int
    sent_at: float
    payload: bytes

    type = FrameType.EVENT

    def encode_body(self) -> bytes:
        return struct.pack(">qd", self.seq, self.sent_at) + self.payload


@dataclass(frozen=True)
class Ack:
    """Broker's receipt for EVENT *seq* on a publisher link."""

    seq: int

    type = FrameType.ACK

    def encode_body(self) -> bytes:
        return struct.pack(">q", self.seq)


@dataclass(frozen=True)
class Heartbeat:
    """Liveness beacon; carries the sender's wall-clock send time."""

    sent_at: float

    type = FrameType.HEARTBEAT

    def encode_body(self) -> bytes:
        return struct.pack(">d", self.sent_at)


@dataclass(frozen=True)
class Ping:
    """Settle probe, source-routed to the tree root.

    Each broker forwarding a PING toward its parent appends the peer it
    arrived from to *path*; the root answers with a PONG carrying the
    accumulated path, which unwinds hop by hop back to the prober.
    PING/PONG travel in the same priority class as events, so a returned
    PONG proves every frame queued ahead of it on the round trip has
    been transmitted -- a deterministic flush barrier with no sleeps.
    """

    token: bytes
    path: tuple[str, ...] = ()

    type = FrameType.PING

    def encode_body(self) -> bytes:
        return _pack_text(self.token.hex()) + _pack_path(self.path)


@dataclass(frozen=True)
class Pong:
    """The root's answer to a PING, unwinding *path* back to the prober."""

    token: bytes
    path: tuple[str, ...] = ()

    type = FrameType.PONG

    def encode_body(self) -> bytes:
        return _pack_text(self.token.hex()) + _pack_path(self.path)


@dataclass(frozen=True)
class GrantRequest:
    """Ask the KDC endpoint to authorize *filters* for *subscriber*.

    *request_id* correlates the GRANT_ACK reply on the same connection.
    *at_time* anchors the grant's epoch; *min_epoch* (optional) asks for
    a grant no older than that epoch -- the renewal path's way of
    requesting next-epoch keys before the boundary.  Filters travel as
    :func:`repro.core.wire.encode_filter` blobs.
    """

    request_id: int
    subscriber: str
    filters: tuple[Filter, ...]
    at_time: float = 0.0
    publisher: str | None = None
    min_epoch: int | None = None

    type = FrameType.GRANT

    def encode_body(self) -> bytes:
        parts = [
            struct.pack(">q", self.request_id),
            _pack_text(self.subscriber),
            _pack_text(self.publisher or ""),
            struct.pack(">d", self.at_time),
        ]
        if self.min_epoch is None:
            parts.append(bytes([0]))
        else:
            parts.append(bytes([1]) + struct.pack(">q", self.min_epoch))
        parts.append(struct.pack(">H", len(self.filters)))
        for subscription in self.filters:
            raw = encode_filter(subscription)
            parts.append(struct.pack(">I", len(raw)) + raw)
        return b"".join(parts)


#: GRANT_ACK statuses: OK carries a grant; DENIED is terminal (revoked);
#: UNAVAILABLE is retryable; DONE acknowledges a grant-less operation
#: (e.g. a REVOKE) that completed.
GRANT_OK = 0
GRANT_DENIED = 1
GRANT_UNAVAILABLE = 2
GRANT_DONE = 3


@dataclass(frozen=True)
class GrantAck:
    """The KDC endpoint's reply to a GRANT or REVOKE request.

    *status* is one of ``GRANT_OK`` (the body carries an
    :func:`repro.core.wire.encode_grant` blob), ``GRANT_DENIED``
    (authorization refused -- terminal), ``GRANT_UNAVAILABLE`` (the KDC
    could not serve the request -- retryable), or ``GRANT_DONE`` (a
    grant-less operation completed).  *detail* is a human-readable
    reason for non-OK statuses.
    """

    request_id: int
    status: int
    detail: str = ""
    grant: AuthorizationGrant | None = None

    type = FrameType.GRANT_ACK

    def encode_body(self) -> bytes:
        raw = b"" if self.grant is None else encode_grant(self.grant)
        return (
            struct.pack(">qB", self.request_id, self.status)
            + _pack_text(self.detail)
            + struct.pack(">I", len(raw))
            + raw
        )


@dataclass(frozen=True)
class Rekey:
    """Epoch-rollover broadcast: *topic* is now in *epoch* as of *at_time*.

    The KDC endpoint pushes this to every connected client when an epoch
    boundary is crossed; subscribers treat it as a logical-clock
    advancement and run their renewal tick against the new time, which
    fetches next-epoch grants inside the pre-expiry lead window.
    """

    topic: str
    epoch: int
    at_time: float

    type = FrameType.REKEY

    def encode_body(self) -> bytes:
        return _pack_text(self.topic) + struct.pack(
            ">qd", self.epoch, self.at_time
        )


@dataclass(frozen=True)
class Revoke:
    """Administrative request: revoke *subscriber* on *topic* at the KDC.

    Lazy revocation -- the subscriber's current-epoch grant keeps
    working until its epoch lapses, but every later renewal is denied.
    Acknowledged with a ``GRANT_DONE`` GrantAck carrying *request_id*.
    """

    request_id: int
    subscriber: str
    topic: str

    type = FrameType.REVOKE

    def encode_body(self) -> bytes:
        return (
            struct.pack(">q", self.request_id)
            + _pack_text(self.subscriber)
            + _pack_text(self.topic)
        )


Frame = (
    Hello | HelloAck | Subscribe | Unsubscribe
    | EventFrame | Ack | Heartbeat | Ping | Pong
    | GrantRequest | GrantAck | Rekey | Revoke
)


def encode_frame(frame: Frame) -> bytes:
    """Serialize *frame* with its length prefix."""
    payload = bytes([frame.type]) + frame.encode_body()
    if len(payload) > FRAME_MAX:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds FRAME_MAX ({FRAME_MAX})"
        )
    return _HEADER.pack(len(payload)) + payload


def _decode_token_path(body: bytes) -> tuple[bytes, tuple[str, ...], int]:
    text, offset = _unpack_text(body, 0)
    token = bytes.fromhex(text)
    path, offset = _unpack_path(body, offset)
    return token, path, offset


def _unpack_length_prefixed(data: bytes, offset: int) -> tuple[bytes, int]:
    (length,) = struct.unpack_from(">I", data, offset)
    offset += 4
    raw = data[offset: offset + length]
    if len(raw) != length:
        raise FrameError("truncated length-prefixed field")
    return raw, offset + length


def decode_payload(payload: bytes) -> Frame:
    """Decode one frame payload (type byte + body); raises FrameError."""
    if not payload:
        raise FrameError("empty frame payload")
    try:
        frame_type = FrameType(payload[0])
    except ValueError:
        raise FrameError(f"unknown frame type {payload[0]}") from None
    body = payload[1:]
    try:
        if frame_type is FrameType.HELLO:
            (version,) = struct.unpack_from(">H", body, 0)
            peer_id, offset = _unpack_text(body, 2)
            role, offset = _unpack_text(body, offset)
            frame: Frame = Hello(peer_id, role, version)
        elif frame_type is FrameType.HELLO_ACK:
            (version,) = struct.unpack_from(">H", body, 0)
            peer_id, offset = _unpack_text(body, 2)
            frame = HelloAck(peer_id, version)
        elif frame_type is FrameType.SUBSCRIBE:
            return Subscribe(decode_filter(body))
        elif frame_type is FrameType.UNSUBSCRIBE:
            return Unsubscribe(decode_filter(body))
        elif frame_type is FrameType.EVENT:
            if len(body) < 16:
                raise FrameError("truncated event frame")
            seq, sent_at = struct.unpack_from(">qd", body, 0)
            return EventFrame(seq, sent_at, body[16:])
        elif frame_type is FrameType.ACK:
            (seq,) = struct.unpack(">q", body)
            return Ack(seq)
        elif frame_type is FrameType.HEARTBEAT:
            (sent_at,) = struct.unpack(">d", body)
            return Heartbeat(sent_at)
        elif frame_type is FrameType.PING:
            token, path, offset = _decode_token_path(body)
            frame = Ping(token, path)
        elif frame_type is FrameType.PONG:
            token, path, offset = _decode_token_path(body)
            frame = Pong(token, path)
        elif frame_type is FrameType.GRANT:
            (request_id,) = struct.unpack_from(">q", body, 0)
            subscriber, offset = _unpack_text(body, 8)
            publisher, offset = _unpack_text(body, offset)
            (at_time,) = struct.unpack_from(">d", body, offset)
            offset += 8
            min_epoch: int | None = None
            flag = body[offset]
            offset += 1
            if flag:
                (min_epoch,) = struct.unpack_from(">q", body, offset)
                offset += 8
            (count,) = struct.unpack_from(">H", body, offset)
            offset += 2
            filters = []
            for _ in range(count):
                raw, offset = _unpack_length_prefixed(body, offset)
                filters.append(decode_filter(raw))
            frame = GrantRequest(
                request_id, subscriber, tuple(filters), at_time,
                publisher or None, min_epoch,
            )
        elif frame_type is FrameType.GRANT_ACK:
            request_id, status = struct.unpack_from(">qB", body, 0)
            detail, offset = _unpack_text(body, 9)
            raw, offset = _unpack_length_prefixed(body, offset)
            grant = decode_grant(raw) if raw else None
            frame = GrantAck(request_id, status, detail, grant)
        elif frame_type is FrameType.REKEY:
            topic, offset = _unpack_text(body, 0)
            epoch, at_time = struct.unpack_from(">qd", body, offset)
            offset += 16
            frame = Rekey(topic, epoch, at_time)
        else:
            (request_id,) = struct.unpack_from(">q", body, 0)
            subscriber, offset = _unpack_text(body, 8)
            topic, offset = _unpack_text(body, offset)
            frame = Revoke(request_id, subscriber, topic)
    except struct.error as exc:
        raise FrameError(f"truncated {frame_type.name} frame: {exc}") from exc
    except IndexError as exc:
        raise FrameError(f"truncated {frame_type.name} frame") from exc
    except UnicodeDecodeError as exc:
        raise FrameError(f"corrupt text in {frame_type.name} frame") from exc
    if offset != len(body):
        raise FrameError(f"trailing bytes after {frame_type.name} frame")
    return frame


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte-chunk stream.

    Feed it whatever the transport hands you; it returns every complete
    frame and buffers the remainder.  Oversized or zero-length prefixes
    raise :class:`~repro.errors.FrameError` immediately -- a malicious
    length prefix
    must never make the receiver buffer unbounded input.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        self._buffer.extend(data)
        frames: list[Frame] = []
        while len(self._buffer) >= 4:
            (length,) = _HEADER.unpack_from(self._buffer, 0)
            if not 1 <= length <= FRAME_MAX:
                raise FrameError(f"invalid frame length {length}")
            if len(self._buffer) < 4 + length:
                break
            payload = bytes(self._buffer[4: 4 + length])
            del self._buffer[: 4 + length]
            frames.append(decode_payload(payload))
        return frames

    @property
    def pending(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)


async def read_frame(reader: asyncio.StreamReader) -> Frame | None:
    """Read one frame from *reader*; ``None`` on clean EOF.

    EOF mid-frame and malformed prefixes raise
    :class:`~repro.errors.FrameError` (a :class:`ValueError` subclass),
    so connection loops need exactly two exit paths: ``None`` (peer
    closed) and ``ValueError``/``OSError`` (broken peer).
    """
    header = await reader.read(4)
    if not header:
        return None
    while len(header) < 4:
        more = await reader.read(4 - len(header))
        if not more:
            raise FrameError("connection closed mid frame header")
        header += more
    (length,) = _HEADER.unpack(header)
    if not 1 <= length <= FRAME_MAX:
        raise FrameError(f"invalid frame length {length}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid frame body") from exc
    return decode_payload(payload)
