"""The rtnet wire protocol: length-prefixed frames over TCP.

Every message on an rtnet connection is one *frame*::

    +----------------+------------+------------------+
    | length (4, BE) | type (1)   | body (length - 1) |
    +----------------+------------+------------------+

The length covers the type byte plus the body and must lie in
``[1, FRAME_MAX]``; anything else is a protocol violation surfaced as
:class:`ValueError` (never a hang, never a crash with an unexpected
exception type).  Bodies reuse the existing PSGuard codecs: EVENT
carries :func:`repro.core.wire.encode_sealed_event` bytes verbatim,
SUBSCRIBE/UNSUBSCRIBE carry :func:`repro.core.wire.encode_filter`
bytes, so the framing layer adds no second serialization of the
security-bearing payloads.

Connections open with a HELLO / HELLO_ACK exchange negotiating the
protocol version (a ``HELLO_ACK`` with version 0 is a rejection); PING /
PONG implement the source-routed settle barrier brokers and clients use
to flush in-flight control traffic (see :mod:`repro.rtnet.server`).
"""

from __future__ import annotations

import asyncio
import enum
import struct
from dataclasses import dataclass

from repro.core.wire import decode_filter, encode_filter
from repro.siena.filters import Filter

#: Version carried in HELLO; bumped on incompatible frame changes.
PROTOCOL_VERSION = 1
#: Hard cap on one frame's (type + body) size: 4 MiB.
FRAME_MAX = 1 << 22

_HEADER = struct.Struct(">I")


class FrameType(enum.IntEnum):
    """The one-byte frame discriminator."""

    HELLO = 1
    HELLO_ACK = 2
    SUBSCRIBE = 3
    UNSUBSCRIBE = 4
    EVENT = 5
    ACK = 6
    HEARTBEAT = 7
    PING = 8
    PONG = 9


def _pack_text(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack(">H", len(raw)) + raw


def _unpack_text(data: bytes, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from(">H", data, offset)
    offset += 2
    raw = data[offset: offset + length]
    if len(raw) != length:
        raise ValueError("truncated text field")
    return raw.decode("utf-8"), offset + length


def _pack_path(path: tuple[str, ...]) -> bytes:
    return struct.pack(">H", len(path)) + b"".join(
        _pack_text(hop) for hop in path
    )


def _unpack_path(data: bytes, offset: int) -> tuple[tuple[str, ...], int]:
    (count,) = struct.unpack_from(">H", data, offset)
    offset += 2
    hops = []
    for _ in range(count):
        hop, offset = _unpack_text(data, offset)
        hops.append(hop)
    return tuple(hops), offset


@dataclass(frozen=True)
class Hello:
    """Connection opener: who is dialing, as what, speaking which version."""

    peer_id: str
    role: str  # "broker" | "publisher" | "subscriber"
    version: int = PROTOCOL_VERSION

    type = FrameType.HELLO

    def encode_body(self) -> bytes:
        return (
            struct.pack(">H", self.version)
            + _pack_text(self.peer_id)
            + _pack_text(self.role)
        )


@dataclass(frozen=True)
class HelloAck:
    """Server's answer: its id and the accepted version (0 = rejected)."""

    peer_id: str
    version: int = PROTOCOL_VERSION

    type = FrameType.HELLO_ACK

    def encode_body(self) -> bytes:
        return struct.pack(">H", self.version) + _pack_text(self.peer_id)


@dataclass(frozen=True)
class Subscribe:
    """Register *filter* for the sending peer at the receiving broker."""

    filter: Filter

    type = FrameType.SUBSCRIBE

    def encode_body(self) -> bytes:
        return encode_filter(self.filter)


@dataclass(frozen=True)
class Unsubscribe:
    """Withdraw *filter* for the sending peer."""

    filter: Filter

    type = FrameType.UNSUBSCRIBE

    def encode_body(self) -> bytes:
        return encode_filter(self.filter)


@dataclass(frozen=True)
class EventFrame:
    """One sealed event in flight.

    *payload* is the PSE2 encoding of the (tokenized) sealed event,
    forwarded verbatim hop to hop -- brokers re-frame but never re-seal.
    *seq* numbers the frame on its link (acked on publisher links);
    *sent_at* is the publisher's wall-clock send time, for end-to-end
    latency measurement on a shared clock.
    """

    seq: int
    sent_at: float
    payload: bytes

    type = FrameType.EVENT

    def encode_body(self) -> bytes:
        return struct.pack(">qd", self.seq, self.sent_at) + self.payload


@dataclass(frozen=True)
class Ack:
    """Broker's receipt for EVENT *seq* on a publisher link."""

    seq: int

    type = FrameType.ACK

    def encode_body(self) -> bytes:
        return struct.pack(">q", self.seq)


@dataclass(frozen=True)
class Heartbeat:
    """Liveness beacon; carries the sender's wall-clock send time."""

    sent_at: float

    type = FrameType.HEARTBEAT

    def encode_body(self) -> bytes:
        return struct.pack(">d", self.sent_at)


@dataclass(frozen=True)
class Ping:
    """Settle probe, source-routed to the tree root.

    Each broker forwarding a PING toward its parent appends the peer it
    arrived from to *path*; the root answers with a PONG carrying the
    accumulated path, which unwinds hop by hop back to the prober.
    PING/PONG travel in the same priority class as events, so a returned
    PONG proves every frame queued ahead of it on the round trip has
    been transmitted -- a deterministic flush barrier with no sleeps.
    """

    token: bytes
    path: tuple[str, ...] = ()

    type = FrameType.PING

    def encode_body(self) -> bytes:
        return _pack_text(self.token.hex()) + _pack_path(self.path)


@dataclass(frozen=True)
class Pong:
    """The root's answer to a PING, unwinding *path* back to the prober."""

    token: bytes
    path: tuple[str, ...] = ()

    type = FrameType.PONG

    def encode_body(self) -> bytes:
        return _pack_text(self.token.hex()) + _pack_path(self.path)


Frame = (
    Hello | HelloAck | Subscribe | Unsubscribe
    | EventFrame | Ack | Heartbeat | Ping | Pong
)


def encode_frame(frame: Frame) -> bytes:
    """Serialize *frame* with its length prefix."""
    payload = bytes([frame.type]) + frame.encode_body()
    if len(payload) > FRAME_MAX:
        raise ValueError(
            f"frame of {len(payload)} bytes exceeds FRAME_MAX ({FRAME_MAX})"
        )
    return _HEADER.pack(len(payload)) + payload


def _decode_token_path(body: bytes) -> tuple[bytes, tuple[str, ...], int]:
    text, offset = _unpack_text(body, 0)
    token = bytes.fromhex(text)
    path, offset = _unpack_path(body, offset)
    return token, path, offset


def decode_payload(payload: bytes) -> Frame:
    """Decode one frame payload (type byte + body); raises ValueError."""
    if not payload:
        raise ValueError("empty frame payload")
    try:
        frame_type = FrameType(payload[0])
    except ValueError:
        raise ValueError(f"unknown frame type {payload[0]}") from None
    body = payload[1:]
    try:
        if frame_type is FrameType.HELLO:
            (version,) = struct.unpack_from(">H", body, 0)
            peer_id, offset = _unpack_text(body, 2)
            role, offset = _unpack_text(body, offset)
            frame: Frame = Hello(peer_id, role, version)
        elif frame_type is FrameType.HELLO_ACK:
            (version,) = struct.unpack_from(">H", body, 0)
            peer_id, offset = _unpack_text(body, 2)
            frame = HelloAck(peer_id, version)
        elif frame_type is FrameType.SUBSCRIBE:
            return Subscribe(decode_filter(body))
        elif frame_type is FrameType.UNSUBSCRIBE:
            return Unsubscribe(decode_filter(body))
        elif frame_type is FrameType.EVENT:
            if len(body) < 16:
                raise ValueError("truncated event frame")
            seq, sent_at = struct.unpack_from(">qd", body, 0)
            return EventFrame(seq, sent_at, body[16:])
        elif frame_type is FrameType.ACK:
            (seq,) = struct.unpack(">q", body)
            return Ack(seq)
        elif frame_type is FrameType.HEARTBEAT:
            (sent_at,) = struct.unpack(">d", body)
            return Heartbeat(sent_at)
        elif frame_type is FrameType.PING:
            token, path, offset = _decode_token_path(body)
            frame = Ping(token, path)
        else:
            token, path, offset = _decode_token_path(body)
            frame = Pong(token, path)
    except struct.error as exc:
        raise ValueError(f"truncated {frame_type.name} frame: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise ValueError(f"corrupt text in {frame_type.name} frame") from exc
    if offset != len(body):
        raise ValueError(f"trailing bytes after {frame_type.name} frame")
    return frame


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte-chunk stream.

    Feed it whatever the transport hands you; it returns every complete
    frame and buffers the remainder.  Oversized or zero-length prefixes
    raise :class:`ValueError` immediately -- a malicious length prefix
    must never make the receiver buffer unbounded input.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        self._buffer.extend(data)
        frames: list[Frame] = []
        while len(self._buffer) >= 4:
            (length,) = _HEADER.unpack_from(self._buffer, 0)
            if not 1 <= length <= FRAME_MAX:
                raise ValueError(f"invalid frame length {length}")
            if len(self._buffer) < 4 + length:
                break
            payload = bytes(self._buffer[4: 4 + length])
            del self._buffer[: 4 + length]
            frames.append(decode_payload(payload))
        return frames

    @property
    def pending(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)


async def read_frame(reader: asyncio.StreamReader) -> Frame | None:
    """Read one frame from *reader*; ``None`` on clean EOF.

    EOF mid-frame and malformed prefixes raise :class:`ValueError`, so
    connection loops need exactly two exit paths: ``None`` (peer closed)
    and ``ValueError``/``OSError`` (broken peer).
    """
    header = await reader.read(4)
    if not header:
        return None
    while len(header) < 4:
        more = await reader.read(4 - len(header))
        if not more:
            raise ValueError("connection closed mid frame header")
        header += more
    (length,) = _HEADER.unpack(header)
    if not 1 <= length <= FRAME_MAX:
        raise ValueError(f"invalid frame length {length}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ValueError("connection closed mid frame body") from exc
    return decode_payload(payload)
