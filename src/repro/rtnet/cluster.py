"""Materialize a broker tree as a localhost TCP cluster.

The launcher stands up ``num_brokers`` :class:`~repro.rtnet.server.
BrokerServer` instances as asyncio tasks in this process, shaped exactly
like the in-process :class:`~repro.siena.network.BrokerTree`: broker
``b{i}``'s parent is ``b{(i-1)//arity}``, ``b0`` is the root.  Each
child *dials* its parent (parents listen first), so start-up is a
breadth-first wave of real TCP handshakes.

Publishers attach at the root (events fan down, matching Siena's
publish-at-root convention of the synchronous facade); subscribers
attach round-robin across the leaves.
"""

from __future__ import annotations

import asyncio

from repro.obs.metrics import MetricsRegistry
from repro.routing.tokens import tokenized_match
from repro.rtnet.server import BrokerServer
from repro.siena.broker import MatchPredicate


class ClusterLauncher:
    """Launch and tear down a loopback broker-tree cluster."""

    def __init__(
        self,
        num_brokers: int = 7,
        arity: int = 2,
        host: str = "127.0.0.1",
        match: MatchPredicate = tokenized_match,
        registry: MetricsRegistry | None = None,
        egress_capacity: int = 512,
        kdc=None,
    ):
        if num_brokers < 1:
            raise ValueError("a cluster needs at least one broker")
        if arity < 1:
            raise ValueError("arity must be positive")
        self.num_brokers = num_brokers
        self.arity = arity
        self.host = host
        self.registry = registry
        self.servers: list[BrokerServer] = [
            BrokerServer(
                f"b{index}",
                host=host,
                match=match,
                registry=registry,
                egress_capacity=egress_capacity,
            )
            for index in range(num_brokers)
        ]
        #: The KDC endpoint hosted beside the tree, when a
        #: :class:`~repro.core.kdc.KDC` is handed in.
        self.kdc_server = None
        if kdc is not None:
            # Local import: repro.rekey sits on top of rtnet.client.
            from repro.rekey.service import KdcServer

            self.kdc_server = KdcServer(kdc, host=host, registry=registry)
        self._subscriber_cursor = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind every listener, then wire children to parents."""
        if self.kdc_server is not None:
            await self.kdc_server.start()
        for server in self.servers:
            await server.start()
        for index in range(1, self.num_brokers):
            parent = self.servers[(index - 1) // self.arity]
            await self.servers[index].connect_parent(
                parent.host, parent.port
            )

    async def stop(self) -> None:
        # Children first, so parents never see mid-shutdown redials.
        for server in reversed(self.servers):
            await server.stop()
        if self.kdc_server is not None:
            await self.kdc_server.stop()

    async def __aenter__(self) -> "ClusterLauncher":
        await self.start()
        return self

    async def __aexit__(self, *_exc_info) -> None:
        await self.stop()

    # -- attach points -------------------------------------------------------

    @property
    def root(self) -> BrokerServer:
        return self.servers[0]

    def leaf_indices(self) -> list[int]:
        """Brokers with no children (where subscribers attach)."""
        leaves = [
            index
            for index in range(self.num_brokers)
            if self.arity * index + 1 >= self.num_brokers
        ]
        return leaves or [0]

    def publisher_address(self) -> tuple[str, int]:
        """Where publishers dial in: the root broker."""
        return self.root.address

    def subscriber_address(self) -> tuple[str, int]:
        """Next subscriber attach point, round-robin across leaves."""
        leaves = self.leaf_indices()
        index = leaves[self._subscriber_cursor % len(leaves)]
        self._subscriber_cursor += 1
        return self.servers[index].address

    def kdc_address(self) -> tuple[str, int]:
        """Where :class:`~repro.rekey.KdcChannel` clients dial in."""
        if self.kdc_server is None:
            raise ValueError("cluster launched without a kdc")
        return self.kdc_server.address

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """Per-broker counter snapshot (delivery/forwarding totals)."""
        return {
            server.broker_id: {
                "events_received": server.broker.stats.events_received,
                "events_forwarded": server.broker.stats.events_forwarded,
                "deliveries": server.broker.stats.deliveries,
                "subscriptions_received": (
                    server.broker.stats.subscriptions_received
                ),
            }
            for server in self.servers
        }


async def settle_cluster(clients, timeout: float = 10.0) -> None:
    """Settle every endpoint in *clients* (a flush barrier for each)."""
    await asyncio.gather(
        *(client.settle(timeout=timeout) for client in clients)
    )
