"""A synchronous facade over a live TCP cluster.

:class:`LiveSystem` mirrors the :class:`repro.api.System` surface --
``publisher()``, ``subscribe()``, ``snapshot()`` -- but the events flow
over real sockets: an asyncio loop runs in a daemon thread hosting a
:class:`~repro.rtnet.cluster.ClusterLauncher`, and every facade call is
submitted to it with ``run_coroutine_threadsafe``.  It is what
``System.builder().transport("tcp").build()`` returns, so switching a
session from the in-process tree to a localhost TCP deployment is a
one-line change.
"""

from __future__ import annotations

import asyncio
import threading

from repro.core.envelope import OpenResult
from repro.core.kdc import KDC
from repro.core.renewal import RenewalPolicy
from repro.obs import Observability
from repro.routing.tokens import TokenAuthority
from repro.rtnet.client import RtPublisher, RtSubscriber
from repro.rtnet.cluster import ClusterLauncher
from repro.siena.events import Event
from repro.siena.filters import Filter

_CALL_TIMEOUT = 30.0


class LivePublisher:
    """Synchronous wrapper over one :class:`RtPublisher`."""

    def __init__(self, system: "LiveSystem", endpoint: RtPublisher):
        self._system = system
        self.endpoint = endpoint

    @property
    def publisher_id(self) -> str:
        return self.endpoint.peer_id

    def publish(
        self,
        event: Event,
        secret_attributes: set[str] | None = None,
        at_time: float = 0.0,
    ) -> None:
        self._system._call(
            self.endpoint.publish(
                event, secret_attributes=secret_attributes, at_time=at_time
            )
        )

    def settle(self, timeout: float = 10.0) -> None:
        """Block until everything published so far reached the root."""
        self._system._call(self.endpoint.settle(timeout=timeout))


class LiveSubscriber:
    """Synchronous wrapper over one :class:`RtSubscriber`."""

    def __init__(self, system: "LiveSystem", endpoint: RtSubscriber):
        self._system = system
        self.endpoint = endpoint

    @property
    def subscriber_id(self) -> str:
        return self.endpoint.peer_id

    @property
    def opened(self) -> list[OpenResult]:
        return self.endpoint.opened

    @property
    def unreadable(self) -> int:
        return self.endpoint.unreadable

    @property
    def renewal_stats(self):
        """The endpoint's :class:`~repro.core.renewal.RenewalStats`,
        or ``None`` when the subscriber was provisioned out-of-band."""
        renewal = self.endpoint.renewal
        return renewal.stats if renewal is not None else None

    def settle(self, timeout: float = 10.0) -> None:
        """Block until everything in flight toward this subscriber's
        leaf (as of the barrier's round trip) has been delivered."""
        self._system._call(self.endpoint.settle(timeout=timeout))


class LiveSystem:
    """A PSGuard deployment over localhost TCP, driven synchronously."""

    def __init__(
        self,
        kdc: KDC,
        obs: Observability,
        num_brokers: int = 7,
        arity: int = 2,
        host: str = "127.0.0.1",
        renewal: RenewalPolicy | None = None,
    ):
        self.kdc = kdc
        self.obs = obs
        self.registry = obs.registry
        self.authority = TokenAuthority(kdc.master_key)
        #: Default key-lifecycle policy for live subscribers; when set,
        #: ``subscribe()`` provisions grants in-band through the hosted
        #: KDC endpoint and keeps them renewed across epoch rollovers.
        self.renewal = renewal
        self.cluster = ClusterLauncher(
            num_brokers=num_brokers,
            arity=arity,
            host=host,
            registry=obs.registry,
            kdc=kdc if renewal is not None else None,
        )
        self.publishers: dict[str, LivePublisher] = {}
        self.subscribers: dict[str, LiveSubscriber] = {}
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="rtnet-live", daemon=True
        )
        self._thread.start()
        self._call(self.cluster.start())

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def _call(self, coroutine, timeout: float = _CALL_TIMEOUT):
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout=timeout)

    # -- principals -----------------------------------------------------------

    def schema_lookup(self, topic: str):
        return self.kdc.config_for(topic).schema

    def publisher(self, publisher_id: str) -> LivePublisher:
        """Get or create a publishing session attached at the root."""
        session = self.publishers.get(publisher_id)
        if session is None:
            host, port = self.cluster.publisher_address()
            endpoint = RtPublisher(
                publisher_id,
                host,
                port,
                self.kdc,
                authority=self.authority,
                registry=self.registry,
            )
            self._call(endpoint.connect())
            session = LivePublisher(self, endpoint)
            self.publishers[publisher_id] = session
        return session

    def subscribe(
        self,
        subscriber_id: str,
        *filters: Filter,
        grace_period: float = 0.0,
        at_time: float | None = None,
    ) -> LiveSubscriber:
        """Authorize *filters* and attach a live subscriber.

        Without a renewal policy this provisions grants out-of-band
        (directly against the KDC object, anchored at time 0).  With one
        (``builder().renewal(...)`` or the ``LiveSystem(renewal=...)``
        knob), the subscriber *joins*: it dials the hosted KDC endpoint,
        fetches its grants in-band over GRANT/GRANT_ACK, and keeps them
        renewed across every epoch rollover.
        """
        if subscriber_id in self.subscribers:
            raise ValueError(f"subscriber {subscriber_id!r} already attached")
        host, port = self.cluster.subscriber_address()
        if self.renewal is not None:
            from repro.rekey.client import KdcChannel

            channel = KdcChannel(
                f"{subscriber_id}-kdc",
                *self.cluster.kdc_address(),
                registry=self.registry,
            )
            self._call(channel.connect())
            endpoint = RtSubscriber(
                subscriber_id,
                host,
                port,
                schema_lookup=self.schema_lookup,
                authority=self.authority,
                registry=self.registry,
                kdc_channel=channel,
                renewal=self.renewal,
            )
            self._call(endpoint.connect())
            for subscription_filter in filters:
                self._call(endpoint.join(subscription_filter, at_time=at_time))
        else:
            endpoint = RtSubscriber(
                subscriber_id,
                host,
                port,
                schema_lookup=self.schema_lookup,
                authority=self.authority,
                grace_period=grace_period,
                registry=self.registry,
            )
            self._call(endpoint.connect())
            for subscription_filter in filters:
                grant = self.kdc.authorize(
                    subscriber_id,
                    subscription_filter,
                    at_time=at_time if at_time is not None else 0.0,
                )
                self._call(endpoint.add_grant(grant))
        session = LiveSubscriber(self, endpoint)
        self.subscribers[subscriber_id] = session
        return session

    # -- membership churn ------------------------------------------------------

    def leave(self, subscriber_id: str) -> LiveSubscriber:
        """Detach *subscriber_id* mid-stream: stop renewing, withdraw
        its routing filters, and close its endpoints."""
        session = self.subscribers.pop(subscriber_id)
        self._call(session.endpoint.leave())
        if session.endpoint.kdc_channel is not None:
            self._call(session.endpoint.kdc_channel.close())
        self._call(session.endpoint.close())
        return session

    def revoke(self, subscriber_id: str, topic: str) -> None:
        """Revoke (subscriber, topic) at the KDC -- lazily: the victim's
        current-epoch grant keeps working until the epoch lapses, and
        its next renewal is denied."""
        self.kdc.revoke(subscriber_id, topic)

    def roll_epoch(self, topic: str, at_time: float) -> int:
        """Advance *topic* to its epoch at *at_time* and broadcast REKEY
        to every joined subscriber; requires a renewal policy (the KDC
        endpoint carries the broadcast)."""
        if self.cluster.kdc_server is None:
            raise ValueError("roll_epoch() needs a renewal policy")
        epoch = self._call(
            self.cluster.kdc_server.roll_epoch(topic, at_time)
        )
        for session in self.subscribers.values():
            self._call(session.endpoint.settle_rekey())
        return epoch

    def settle(self, timeout: float = 10.0) -> None:
        """Flush the whole system: publishers first (events reach the
        root), then subscribers (the fan-out drains to the edges)."""
        for publisher in self.publishers.values():
            publisher.settle(timeout=timeout)
        for subscriber in self.subscribers.values():
            subscriber.settle(timeout=timeout)

    # -- observability --------------------------------------------------------

    def snapshot(self) -> dict:
        return self.obs.snapshot()

    def to_prometheus(self) -> str:
        return self.obs.to_prometheus()

    def broker_stats(self) -> dict:
        return self.cluster.stats()

    # -- teardown -------------------------------------------------------------

    def close(self) -> None:
        """Disconnect every endpoint and stop the cluster and loop."""
        for session in list(self.subscribers.values()):
            if session.endpoint.kdc_channel is not None:
                self._call(session.endpoint.kdc_channel.close())
            self._call(session.endpoint.close())
        for session in list(self.publishers.values()):
            self._call(session.endpoint.close())
        self._call(self.cluster.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "LiveSystem":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()
