"""Publisher and subscriber endpoints for the TCP runtime.

Both endpoints share one connection core (:class:`RtEndpoint`): dial,
HELLO/HELLO_ACK version negotiation, a reader task dispatching inbound
frames, and automatic reconnection with exponential backoff + jitter.
What differs is what rides on top:

- :class:`RtPublisher` seals and tokenizes events locally (the broker
  network never sees plaintext routing attributes), numbers each EVENT
  frame, and keeps the unacked tail for resend after a reconnect --
  at-least-once to its home broker;
- :class:`RtSubscriber` re-registers every filter after a reconnect,
  resolves each arriving event's topic from its held topic tokens, and
  opens events through the standard :class:`~repro.core.subscriber.
  Subscriber` engine, whose
  :class:`~repro.recovery.dedup.DedupWindow` turns the publisher's
  at-least-once resends into exactly-once processing.
"""

from __future__ import annotations

import asyncio
import os
import random
import time
from dataclasses import dataclass, replace
from typing import Callable

from repro.core.envelope import OpenResult
from repro.core.kdc import KDC, AuthorizationGrant
from repro.core.ktid import KTID
from repro.core.publisher import Publisher
from repro.core.renewal import RenewalManager, RenewalPolicy
from repro.core.subscriber import Subscriber
from repro.core.wire import decode_sealed_event, encode_sealed_event
from repro.obs.metrics import MetricsRegistry
from repro.routing.tokens import (
    TOPIC_TOKEN_ATTRIBUTE,
    RoutableToken,
    TokenAuthority,
    grant_routing_filters,
    routable_matches,
    tokenize_event,
)
from repro.rtnet.frames import (
    PROTOCOL_VERSION,
    Ack,
    EventFrame,
    Frame,
    Heartbeat,
    Hello,
    HelloAck,
    Ping,
    Pong,
    Subscribe,
    Unsubscribe,
    encode_frame,
    read_frame,
)
from repro.siena.events import Event
from repro.siena.filters import Filter


class HandshakeError(ConnectionError):
    """The server rejected our HELLO (version mismatch); do not retry."""


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with jitter for reconnection attempts.

    Delay for attempt ``n`` (0-based) is ``base * factor**n`` capped at
    *max_delay*, scaled down by up to *jitter* uniformly at random so a
    herd of clients does not redial in lockstep.
    """

    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    max_attempts: int | None = None

    def delay(self, attempt: int, rng: random.Random) -> float:
        raw = min(self.max_delay, self.base * self.factor ** attempt)
        return raw * (1.0 - self.jitter * rng.random())


@dataclass
class EndpointStats:
    """Connection-lifecycle counters an endpoint keeps."""

    connects: int = 0
    reconnects: int = 0
    frames_sent: int = 0
    frames_received: int = 0


class RtEndpoint:
    """The connection core shared by publisher and subscriber endpoints."""

    role = "client"

    def __init__(
        self,
        peer_id: str,
        host: str,
        port: int,
        backoff: BackoffPolicy | None = None,
        registry: MetricsRegistry | None = None,
        rng: random.Random | None = None,
    ):
        self.peer_id = peer_id
        self.host = host
        self.port = port
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.registry = registry
        self.rng = rng if rng is not None else random.Random()
        self.broker_id: str | None = None
        self.stats = EndpointStats()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._recv_task: asyncio.Task | None = None
        self._write_lock = asyncio.Lock()
        self._connected = asyncio.Event()
        self._closed = False
        self._pongs: dict[bytes, asyncio.Future] = {}

    # -- connection lifecycle ----------------------------------------------

    async def connect(self) -> None:
        """Dial the broker, shake hands, and start the receive loop."""
        await self._establish()
        self._recv_task = asyncio.ensure_future(self._recv_loop())

    async def _establish(self) -> None:
        attempt = 0
        while True:
            if self._closed:
                raise ConnectionError("endpoint closed")
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port
                )
                break
            except OSError:
                if (
                    self.backoff.max_attempts is not None
                    and attempt + 1 >= self.backoff.max_attempts
                ):
                    raise
                await asyncio.sleep(self.backoff.delay(attempt, self.rng))
                attempt += 1
        writer.write(
            encode_frame(Hello(self.peer_id, self.role, PROTOCOL_VERSION))
        )
        await writer.drain()
        ack = await read_frame(reader)
        if not isinstance(ack, HelloAck) or ack.version != PROTOCOL_VERSION:
            writer.close()
            raise HandshakeError(
                f"broker rejected handshake: {ack!r}"
            )
        self.broker_id = ack.peer_id
        self._reader, self._writer = reader, writer
        self.stats.connects += 1
        self._count("rtnet_client_connects_total")
        self._connected.set()
        await self._on_connected()

    async def _on_connected(self) -> None:
        """Hook run after every successful (re)connection."""

    async def _recv_loop(self) -> None:
        while not self._closed:
            try:
                frame = await read_frame(self._reader)
            except (ValueError, OSError, asyncio.IncompleteReadError):
                frame = None
            if frame is None:
                if self._closed:
                    return
                self._connected.clear()
                self.stats.reconnects += 1
                self._count("rtnet_client_reconnects_total")
                try:
                    await self._establish()
                except HandshakeError:
                    self._closed = True
                    return
                except ConnectionError:
                    return
                continue
            self.stats.frames_received += 1
            await self._handle(frame)

    async def _handle(self, frame: Frame) -> None:
        if isinstance(frame, Pong) and not frame.path:
            waiter = self._pongs.pop(frame.token, None)
            if waiter is not None and not waiter.done():
                waiter.set_result(None)

    async def close(self) -> None:
        """Tear the connection down; no reconnection afterwards."""
        self._closed = True
        if self._recv_task is not None:
            self._recv_task.cancel()
            try:
                await self._recv_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    # -- sending -------------------------------------------------------------

    async def send(self, frame: Frame) -> None:
        """Write one frame, honouring transport backpressure."""
        async with self._write_lock:
            await self._connected.wait()
            self._writer.write(encode_frame(frame))
            await self._writer.drain()
        self.stats.frames_sent += 1
        self._count("rtnet_client_frames_sent_total")

    async def heartbeat(self) -> None:
        await self.send(Heartbeat(time.time()))

    async def settle(self, timeout: float = 10.0) -> None:
        """Flush the broker path: returns once a PING has round-tripped
        to the tree root and back, proving every frame sent before it
        (same priority class, FIFO per link) has been processed."""
        token = os.urandom(8)
        waiter = asyncio.get_event_loop().create_future()
        self._pongs[token] = waiter
        try:
            await self.send(Ping(token))
            await asyncio.wait_for(waiter, timeout)
        finally:
            self._pongs.pop(token, None)

    def _count(self, name: str, **labels: str) -> None:
        if self.registry is not None:
            self.registry.counter(
                name, peer=self.peer_id, **labels
            ).inc()


class RtPublisher(RtEndpoint):
    """A publishing principal speaking rtnet to its home broker.

    Seals with the standard :class:`~repro.core.publisher.Publisher`
    engine, tokenizes the routable part so brokers match without
    learning attribute values, and resends the unacked tail after every
    reconnect (the subscriber-side dedup window absorbs the duplicates).
    """

    role = "publisher"

    def __init__(
        self,
        publisher_id: str,
        host: str,
        port: int,
        kdc: KDC,
        authority: TokenAuthority | None = None,
        **kwargs,
    ):
        super().__init__(publisher_id, host, port, **kwargs)
        self.engine = Publisher(publisher_id, kdc)
        self.authority = (
            authority
            if authority is not None
            else TokenAuthority(kdc.master_key)
        )
        self._next_seq = 0
        self._unacked: dict[int, EventFrame] = {}

    async def publish(
        self,
        event: Event,
        secret_attributes: set[str] | None = None,
        at_time: float = 0.0,
    ) -> None:
        """Seal, tokenize, frame and send one publication."""
        topic = event.get("topic")
        sealed = self.engine.publish(
            event, secret_attributes=secret_attributes, at_time=at_time
        )
        elements = {
            attribute: element
            for attribute, element in sealed.elements.items()
            if isinstance(element, KTID)
        }
        tokenized = tokenize_event(
            self.authority, sealed.routable, elements, topic
        )
        payload = encode_sealed_event(replace(sealed, routable=tokenized))
        frame = EventFrame(self._next_seq, time.time(), payload)
        self._next_seq += 1
        self._unacked[frame.seq] = frame
        await self.send(frame)

    @property
    def unacked(self) -> int:
        """EVENT frames not yet receipted by the home broker."""
        return len(self._unacked)

    async def _on_connected(self) -> None:
        # At-least-once: replay the unacked tail in order; subscribers
        # suppress any double delivery through their dedup windows.
        for seq in sorted(self._unacked):
            frame = self._unacked[seq]
            self._writer.write(encode_frame(frame))
        if self._unacked:
            await self._writer.drain()

    async def _handle(self, frame: Frame) -> None:
        if isinstance(frame, Ack):
            self._unacked.pop(frame.seq, None)
            return
        await super()._handle(frame)


class RtSubscriber(RtEndpoint):
    """A subscribing principal speaking rtnet to its home broker.

    Holds KDC grants; each grant is turned into its tokenized routing
    filters (:func:`~repro.routing.tokens.grant_routing_filters`) and
    registered with the broker.  Arriving events carry only token pairs,
    so the subscriber first resolves the topic by matching the event's
    topic token against the tokens of its granted topics, then opens the
    event with the standard engine -- an unauthorized subscriber resolves
    nothing (no token held) or fails cryptographically (no matching
    grant keys), and only :attr:`unreadable` moves.
    """

    role = "subscriber"

    def __init__(
        self,
        subscriber_id: str,
        host: str,
        port: int,
        schema_lookup: Callable,
        authority: TokenAuthority,
        grace_period: float = 0.0,
        dedup_window: int = 1024,
        on_open: Callable[[OpenResult], None] | None = None,
        clock: Callable[[], float] | None = None,
        kdc_channel=None,
        renewal: "RenewalPolicy | None" = None,
        **kwargs,
    ):
        if renewal is not None and kdc_channel is None:
            raise ValueError("a renewal policy needs a kdc_channel")
        if renewal is not None:
            grace_period = renewal.grace
        super().__init__(subscriber_id, host, port, **kwargs)
        self.engine = Subscriber(
            subscriber_id,
            grace_period=grace_period,
            dedup_window=dedup_window,
        )
        self.schema_lookup = schema_lookup
        self.authority = authority
        self.on_open = on_open
        #: Events are opened at this logical time; with a KDC channel
        #: attached it defaults to the channel's REKEY-advanced clock.
        if clock is None:
            clock = kdc_channel.now if kdc_channel is not None else lambda: 0.0
        self.clock = clock
        #: The live key-lifecycle plane, when attached (see repro.rekey).
        self.kdc_channel = kdc_channel
        self.renewal: RenewalManager | None = None
        if kdc_channel is not None:
            policy = renewal if renewal is not None else RenewalPolicy()
            kdc_channel.grace_period = max(
                kdc_channel.grace_period, policy.grace
            )
            self.renewal = RenewalManager(
                self.engine, kdc_channel, renew_lead_time=policy.lead
            )
            kdc_channel.on_rekey.append(self._on_rekey)
            kdc_channel.on_install.append(self._on_grant_installed)
        self._grant_tasks: set[asyncio.Task] = set()
        self.opened: list[OpenResult] = []
        self.unreadable = 0
        self.duplicates = 0
        #: Delivery log: one ``(origin, sequence, verdict)`` triple per
        #: arriving event, with verdict ``open``/``unreadable``/
        #: ``duplicate`` -- the benchmark compares this stream against an
        #: in-process reference run for end-to-end equivalence.
        self.log: list[tuple[object, object, str]] = []
        #: end-to-end publish->open latencies (seconds), one per opened
        #: event, measured against the EVENT frame's sent_at stamp.
        self.latencies_s: list[float] = []
        self._filters: list[Filter] = []
        #: topic-token material for topic resolution: (token, topic).
        self._topic_tokens: list[tuple[bytes, str]] = []

    # -- subscriptions -------------------------------------------------------

    async def add_grant(self, grant: AuthorizationGrant) -> None:
        """Install a pre-provisioned grant and register its routing
        filters (the out-of-band path; live deployments use :meth:`join`)."""
        self.engine.add_grant(grant)
        await self._register_grant(grant)

    async def subscribe(self, routing_filter: Filter) -> None:
        """Register one (tokenized) filter with the home broker."""
        if routing_filter in self._filters:
            return
        self._filters.append(routing_filter)
        await self.send(Subscribe(routing_filter))

    async def unsubscribe(self, routing_filter: Filter) -> None:
        if routing_filter in self._filters:
            self._filters.remove(routing_filter)
            await self.send(Unsubscribe(routing_filter))

    # -- live key lifecycle (requires a kdc_channel) -------------------------

    async def join(
        self,
        filters: Filter | list[Filter],
        at_time: float | None = None,
        publisher: str | None = None,
        timeout: float = 10.0,
    ) -> None:
        """Fetch a grant for *filters* in-band and keep it renewed.

        Registers a standing subscription with the renewal manager (the
        first grant is requested immediately over the KDC channel) and
        returns once the grant round trip and the resulting routing-
        filter registrations have settled -- after ``join`` returns, the
        next matching publication will be delivered and opened.
        """
        if self.renewal is None:
            raise ValueError("join() needs a kdc_channel")
        if at_time is None:
            at_time = self.kdc_channel.now()
        self.renewal.add_subscription(
            filters, at_time=at_time, publisher=publisher
        )
        await self.settle_rekey(timeout=timeout)

    async def leave(self, at_time: float | None = None) -> None:
        """Stop renewing and withdraw every registered routing filter.

        Lazy semantics on the key plane (held grants simply lapse) but
        eager on the routing plane: the broker stops forwarding to this
        subscriber as soon as the unsubscriptions flush.
        """
        if self.renewal is not None:
            if at_time is None:
                at_time = self.kdc_channel.now()
            self.renewal.cancel_all(at_time)
        for routing_filter in list(self._filters):
            await self.unsubscribe(routing_filter)
        await self.settle()

    async def settle_rekey(self, timeout: float = 10.0) -> None:
        """Flush the grant plane: every initiated grant request has been
        answered, every resulting routing registration has been sent,
        and the home-broker path has settled behind them."""
        if self.kdc_channel is not None:
            await self.kdc_channel.settle_grants(timeout=timeout)
        while self._grant_tasks:
            await asyncio.gather(
                *list(self._grant_tasks), return_exceptions=True
            )
        await self.settle(timeout=timeout)

    def _on_rekey(self, frame) -> None:
        """REKEY broadcast: tick the renewal engine at the new time.

        The channel has already advanced the logical clock; due grants
        (inside their pre-expiry lead of the announced time) start
        renewing here, pinned to ``min_epoch = old + 1``.
        """
        if self.renewal is not None:
            self.renewal.tick(frame.at_time)

    def _on_grant_installed(self, grant: AuthorizationGrant) -> None:
        """A renewal landed: register its routing state with the broker.

        Routing tokens are epoch-independent -- they drive routing, not
        decryption -- so a renewed grant dedupes to zero new SUBSCRIBE
        frames; only a genuinely new subscription registers filters.
        """
        task = asyncio.ensure_future(self._register_grant(grant))
        self._grant_tasks.add(task)
        task.add_done_callback(self._grant_tasks.discard)

    async def _register_grant(self, grant: AuthorizationGrant) -> None:
        if all(topic != grant.topic for _, topic in self._topic_tokens):
            self._topic_tokens.append(
                (self.authority.topic_token(grant.topic), grant.topic)
            )
        for routing_filter in grant_routing_filters(self.authority, grant):
            await self.subscribe(routing_filter)

    async def _on_connected(self) -> None:
        # Resubscribe-on-reconnect: the broker dropped this interface's
        # registrations when the connection died.
        for routing_filter in self._filters:
            self._writer.write(encode_frame(Subscribe(routing_filter)))
        if self._filters:
            await self._writer.drain()

    # -- delivery ------------------------------------------------------------

    def _resolve_topic(self, routable: Event) -> str | None:
        """Recover the topic from the event's topic token, if granted."""
        value = routable.get(TOPIC_TOKEN_ATTRIBUTE)
        if not isinstance(value, str):
            # Mixed deployments may route plaintext events.
            topic = routable.get("topic")
            return topic if isinstance(topic, str) else None
        try:
            token_pair = RoutableToken.decode(value)
        except ValueError:
            return None
        for token, topic in self._topic_tokens:
            if routable_matches(token, token_pair):
                return topic
        return None

    async def _handle(self, frame: Frame) -> None:
        if not isinstance(frame, EventFrame):
            await super()._handle(frame)
            return
        try:
            sealed = decode_sealed_event(frame.payload)
        except ValueError:
            self.unreadable += 1
            self.log.append((None, None, "corrupt"))
            return
        topic = self._resolve_topic(sealed.routable)
        if topic is not None and sealed.routable.get("topic") is None:
            sealed = replace(
                sealed,
                routable=sealed.routable.with_attributes(topic=topic),
            )
        duplicates_before = self.engine.stats.duplicates_suppressed
        result = (
            self.engine.receive(
                sealed, self.schema_lookup, at_time=self.clock()
            )
            if topic is not None
            else None
        )
        if self.engine.stats.duplicates_suppressed > duplicates_before:
            self.duplicates += 1
            self.log.append((sealed.origin, sealed.sequence, "duplicate"))
            return
        self.log.append(
            (
                sealed.origin,
                sealed.sequence,
                "open" if result is not None else "unreadable",
            )
        )
        if result is not None:
            self.opened.append(result)
            self.latencies_s.append(time.time() - frame.sent_at)
            if self.registry is not None:
                self.registry.histogram(
                    "rtnet_e2e_latency_seconds", peer=self.peer_id
                ).observe(self.latencies_s[-1])
            if self.on_open is not None:
                self.on_open(result)
        else:
            self.unreadable += 1
