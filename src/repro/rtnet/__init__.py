"""The real-network runtime: PSGuard over asyncio TCP sockets.

Everything below the sockets is the existing stack -- sealed events in
their PSE2 wire format, tokenized routing, the Siena broker core,
bounded priority queues -- deployed over a real transport:

- :mod:`repro.rtnet.frames` -- the length-prefixed frame protocol
  (HELLO version negotiation, SUBSCRIBE/UNSUBSCRIBE, EVENT, ACK,
  HEARTBEAT, the PING/PONG settle barrier, and the
  GRANT/GRANT_ACK/REKEY/REVOKE key-lifecycle plane of
  :mod:`repro.rekey`);
- :mod:`repro.rtnet.server` -- :class:`BrokerServer`, one broker behind
  an asyncio TCP listener with per-peer egress queues and hop-by-hop
  backpressure;
- :mod:`repro.rtnet.client` -- :class:`RtPublisher` /
  :class:`RtSubscriber` endpoints with reconnect + exponential backoff,
  resubscribe-on-reconnect and exactly-once delivery across reconnects;
- :mod:`repro.rtnet.cluster` -- :class:`ClusterLauncher`, a broker tree
  as a localhost TCP cluster;
- :mod:`repro.rtnet.live` -- :class:`LiveSystem`, the synchronous facade
  ``System.builder().transport("tcp").build()`` returns.
"""

from repro.rtnet.client import (
    BackoffPolicy,
    HandshakeError,
    RtEndpoint,
    RtPublisher,
    RtSubscriber,
)
from repro.rtnet.cluster import ClusterLauncher, settle_cluster
from repro.rtnet.frames import (
    FRAME_MAX,
    GRANT_DENIED,
    GRANT_DONE,
    GRANT_OK,
    GRANT_UNAVAILABLE,
    PROTOCOL_VERSION,
    Ack,
    EventFrame,
    Frame,
    FrameDecoder,
    FrameType,
    GrantAck,
    GrantRequest,
    Heartbeat,
    Hello,
    HelloAck,
    Ping,
    Pong,
    Rekey,
    Revoke,
    Subscribe,
    Unsubscribe,
    decode_payload,
    encode_frame,
    read_frame,
)
from repro.rtnet.live import LivePublisher, LiveSubscriber, LiveSystem
from repro.rtnet.server import CONTROL_PRIORITY, BrokerServer

__all__ = [
    "Ack",
    "BackoffPolicy",
    "BrokerServer",
    "CONTROL_PRIORITY",
    "ClusterLauncher",
    "EventFrame",
    "FRAME_MAX",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "GRANT_DENIED",
    "GRANT_DONE",
    "GRANT_OK",
    "GRANT_UNAVAILABLE",
    "GrantAck",
    "GrantRequest",
    "HandshakeError",
    "Heartbeat",
    "Hello",
    "HelloAck",
    "LivePublisher",
    "LiveSubscriber",
    "LiveSystem",
    "PROTOCOL_VERSION",
    "Ping",
    "Pong",
    "Rekey",
    "Revoke",
    "RtEndpoint",
    "RtPublisher",
    "RtSubscriber",
    "Subscribe",
    "Unsubscribe",
    "decode_payload",
    "encode_frame",
    "read_frame",
    "settle_cluster",
]
