"""An asyncio TCP server hosting one :class:`repro.siena.Broker`.

The broker core stays transport-agnostic; this module supplies the real
network around it:

- one **reader task per connection** feeding a bounded shared ingress
  queue (a full queue stops the reader, TCP's receive window fills, and
  the sender's ``drain()`` blocks -- hop-by-hop backpressure with no
  custom credit protocol on the wire);
- one **dispatcher task** draining the ingress queue, so broker state is
  only ever touched from a single task and per-connection frame order is
  preserved;
- one **egress queue + pump task per peer**: the egress queue is a
  :class:`repro.flow.BoundedPriorityQueue` (control frames at a priority
  class above events, load shedding under overload per the configured
  policy), and the pump writes frames and awaits ``drain()`` so a slow
  peer backpressures its queue rather than the whole process.

Events arriving on the wire are PSE2 payloads; the dispatcher decodes
the routable part for matching but forwards the *original payload
bytes* to every matched peer -- brokers re-frame, never re-seal.
PING frames are source-routed to the tree root and answered with a
PONG that unwinds the recorded path, giving clients a deterministic
flush barrier (see :class:`repro.rtnet.frames.Ping`).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Hashable

from repro.flow.policy import NORMAL, priority_of
from repro.flow.queues import DROP_OLDEST, BoundedPriorityQueue
from repro.obs.metrics import MetricsRegistry
from repro.routing.tokens import tokenized_match
from repro.rtnet.client import BackoffPolicy
from repro.rtnet.frames import (
    PROTOCOL_VERSION,
    Ack,
    EventFrame,
    Frame,
    Heartbeat,
    Hello,
    HelloAck,
    Ping,
    Pong,
    Subscribe,
    Unsubscribe,
    encode_frame,
    read_frame,
)
from repro.siena.broker import Broker, MatchPredicate
from repro.core.wire import decode_sealed_event

#: Priority class for control frames (SUBSCRIBE, ACK, ...): strictly
#: better than every event class, so overload never sheds control state.
CONTROL_PRIORITY = -1


@dataclass
class _Peer:
    """Per-connection server state."""

    peer_id: str
    role: str
    writer: asyncio.StreamWriter
    egress: BoundedPriorityQueue
    wake: asyncio.Event
    pump: asyncio.Task | None = None
    reader_task: asyncio.Task | None = None
    next_seq: int = 0
    last_seen: float = 0.0


class BrokerServer:
    """One broker of the overlay, listening on a TCP socket.

    ``await start()`` binds the listener (``port=0`` picks a free port,
    read back from :attr:`port`); ``await connect_parent(host, port)``
    dials the parent broker and keeps that link alive across parent
    restarts (reconnect + covering-set replay).  ``await stop()`` tears
    everything down.
    """

    def __init__(
        self,
        broker_id: Hashable,
        host: str = "127.0.0.1",
        port: int = 0,
        match: MatchPredicate = tokenized_match,
        registry: MetricsRegistry | None = None,
        egress_capacity: int = 512,
        ingress_capacity: int = 1024,
        shed_policy: str = DROP_OLDEST,
        backoff: BackoffPolicy | None = None,
    ):
        self.broker_id = str(broker_id)
        self.host = host
        self.port = port
        self.registry = registry
        self.broker = Broker(broker_id, match=match, registry=registry)
        self.egress_capacity = egress_capacity
        self.shed_policy = shed_policy
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self._server: asyncio.AbstractServer | None = None
        self._ingress: asyncio.Queue = asyncio.Queue(maxsize=ingress_capacity)
        self._dispatcher: asyncio.Task | None = None
        self._peers: dict[str, _Peer] = {}
        self._parent: _Peer | None = None
        self._parent_reader: asyncio.StreamReader | None = None
        self._parent_task: asyncio.Task | None = None
        self._parent_addr: tuple[str, int] | None = None
        self._closed = False
        #: The EVENT frame currently being routed; send/deliver closures
        #: forward its payload bytes instead of re-encoding the event.
        self._relay: EventFrame | None = None
        if registry is not None:
            registry.gauge(
                "rtnet_ingress_depth", broker=self.broker_id
            ).set(0)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())

    async def stop(self) -> None:
        self._closed = True
        tasks = []
        if self._parent_task is not None:
            self._parent_task.cancel()
            tasks.append(self._parent_task)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            tasks.append(self._dispatcher)
        for peer in list(self._peers.values()):
            if peer.pump is not None:
                peer.pump.cancel()
                tasks.append(peer.pump)
            if peer.reader_task is not None:
                peer.reader_task.cancel()
                tasks.append(peer.reader_task)
            peer.writer.close()
        if self._parent is not None and self._parent.pump is not None:
            self._parent.pump.cancel()
            tasks.append(self._parent.pump)
            self._parent.writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    # -- inbound connections --------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Swallow the shutdown cancellation so asyncio's stream-protocol
        # done-callback does not log it as an unhandled exception.
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            hello = await read_frame(reader)
        except (ValueError, OSError):
            writer.close()
            return
        if not isinstance(hello, Hello) or hello.version != PROTOCOL_VERSION:
            # Version 0 in the HELLO_ACK tells the dialer "rejected".
            try:
                writer.write(encode_frame(HelloAck(self.broker_id, 0)))
                await writer.drain()
            except OSError:
                pass
            writer.close()
            self._count("rtnet_handshakes_rejected_total")
            return
        writer.write(encode_frame(HelloAck(self.broker_id, PROTOCOL_VERSION)))
        await writer.drain()

        peer = self._register_peer(hello.peer_id, hello.role, writer)
        if hello.role == "broker":
            self.broker.attach_child(
                hello.peer_id, self._link_sender(peer)
            )
        elif hello.role == "subscriber":
            self.broker.attach_client(
                hello.peer_id, self._client_deliverer(peer)
            )
        peer.reader_task = asyncio.current_task()
        await self._reader_loop(peer, reader)

    def _register_peer(
        self, peer_id: str, role: str, writer: asyncio.StreamWriter
    ) -> _Peer:
        stale = self._peers.pop(peer_id, None)
        if stale is not None and stale.pump is not None:
            stale.pump.cancel()
            stale.writer.close()
        peer = _Peer(
            peer_id,
            role,
            writer,
            BoundedPriorityQueue(
                self.egress_capacity,
                shed_policy=self.shed_policy,
                registry=self.registry,
                broker=self.broker_id,
                queue=f"egress:{peer_id}",
            ),
            asyncio.Event(),
            last_seen=time.time(),
        )
        peer.pump = asyncio.ensure_future(self._pump_loop(peer))
        self._peers[peer_id] = peer
        return peer

    async def _reader_loop(
        self, peer: _Peer, reader: asyncio.StreamReader
    ) -> None:
        try:
            while not self._closed:
                frame = await read_frame(reader)
                if frame is None:
                    break
                self._count(
                    "rtnet_frames_total",
                    direction="in",
                    type=frame.type.name.lower(),
                )
                await self._ingress.put((peer, frame))
                self._gauge("rtnet_ingress_depth", self._ingress.qsize())
        except (ValueError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            if not self._closed:
                self._drop_peer(peer)

    def _drop_peer(self, peer: _Peer) -> None:
        if self._peers.get(peer.peer_id) is not peer:
            return
        del self._peers[peer.peer_id]
        if peer.pump is not None:
            peer.pump.cancel()
        peer.writer.close()
        if peer.role == "broker":
            self.broker.detach_child(peer.peer_id)
        elif peer.role == "subscriber":
            self.broker.clients.pop(peer.peer_id, None)
            self.broker.drop_interface(peer.peer_id)
        self._count("rtnet_peer_disconnects_total", role=peer.role)

    # -- parent link -----------------------------------------------------------

    async def connect_parent(self, host: str, port: int) -> None:
        """Dial the parent broker; keeps the link alive until stopped."""
        self._parent_addr = (host, port)
        await self._dial_parent(first=True)
        self._parent_task = asyncio.ensure_future(self._parent_loop())

    async def _dial_parent(self, first: bool) -> None:
        attempt = 0
        while not self._closed:
            try:
                reader, writer = await asyncio.open_connection(
                    *self._parent_addr
                )
                writer.write(
                    encode_frame(
                        Hello(self.broker_id, "broker", PROTOCOL_VERSION)
                    )
                )
                await writer.drain()
                ack = await read_frame(reader)
            except (OSError, ValueError):
                await asyncio.sleep(self.backoff.delay(attempt, self.backoff_rng))
                attempt += 1
                continue
            if not isinstance(ack, HelloAck) or ack.version != PROTOCOL_VERSION:
                writer.close()
                raise ConnectionError(
                    f"parent rejected handshake: {ack!r}"
                )
            parent = _Peer(
                ack.peer_id,
                "parent",
                writer,
                BoundedPriorityQueue(
                    self.egress_capacity,
                    shed_policy=self.shed_policy,
                    registry=self.registry,
                    broker=self.broker_id,
                    queue="egress:parent",
                ),
                asyncio.Event(),
            )
            parent.pump = asyncio.ensure_future(self._pump_loop(parent))
            self._parent = parent
            self._parent_reader = reader
            self.broker.attach_parent(ack.peer_id, self._link_sender(parent))
            if not first:
                # The parent lost this interface's registrations; replay
                # the covering set (tree repair over a real socket).
                self.broker.replay_upstream()
                self._count("rtnet_parent_reconnects_total")
            return

    async def _parent_loop(self) -> None:
        """Read from the parent link; redial (with replay) when it dies."""
        while not self._closed:
            try:
                frame = await read_frame(self._parent_reader)
            except (ValueError, OSError, asyncio.IncompleteReadError):
                frame = None
            if frame is None:
                if self._closed:
                    return
                old = self._parent
                if old is not None and old.pump is not None:
                    old.pump.cancel()
                    old.writer.close()
                self._parent = None
                await self._dial_parent(first=False)
                continue
            self._count(
                "rtnet_frames_total",
                direction="in",
                type=frame.type.name.lower(),
            )
            await self._ingress.put((self._parent, frame))

    # The backoff RNG is deliberately shared process state: parent links
    # of co-located brokers should not redial in lockstep either.
    backoff_rng = random.Random()

    # -- dispatch ---------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            peer, frame = await self._ingress.get()
            self._gauge("rtnet_ingress_depth", self._ingress.qsize())
            try:
                self._dispatch(peer, frame)
            except ValueError:
                self._count("rtnet_protocol_errors_total")

    def _dispatch(self, peer: _Peer, frame: Frame) -> None:
        peer.last_seen = time.time()
        if isinstance(frame, Subscribe):
            self.broker.subscribe(peer.peer_id, frame.filter)
        elif isinstance(frame, Unsubscribe):
            self.broker.unsubscribe(peer.peer_id, frame.filter)
        elif isinstance(frame, EventFrame):
            self._dispatch_event(peer, frame)
        elif isinstance(frame, Ping):
            if self._parent is not None:
                self._enqueue(
                    self._parent,
                    Ping(frame.token, frame.path + (peer.peer_id,)),
                    NORMAL,
                )
            else:
                # Root of the tree: start the unwind.
                self._enqueue(peer, Pong(frame.token, frame.path), NORMAL)
        elif isinstance(frame, Pong):
            if frame.path:
                next_hop = self._peers.get(frame.path[-1])
                if next_hop is not None:
                    self._enqueue(
                        next_hop,
                        Pong(frame.token, frame.path[:-1]),
                        NORMAL,
                    )
        elif isinstance(frame, Heartbeat):
            self._count("rtnet_heartbeats_total")
        elif isinstance(frame, Ack):
            pass
        else:
            raise ValueError(f"unexpected frame {frame.type.name}")

    def _dispatch_event(self, peer: _Peer, frame: EventFrame) -> None:
        sealed = decode_sealed_event(frame.payload)
        if self.registry is not None:
            self.registry.histogram(
                "rtnet_relay_latency_seconds", broker=self.broker_id
            ).observe(max(0.0, time.time() - frame.sent_at))
        arrived_from = (
            None if peer.role == "publisher" else peer.peer_id
        )
        self._relay = frame
        try:
            self.broker.publish(sealed.routable, arrived_from=arrived_from)
        finally:
            self._relay = None
        if peer.role == "publisher":
            self._enqueue(peer, Ack(frame.seq), CONTROL_PRIORITY)

    # -- egress -----------------------------------------------------------------

    def _link_sender(self, peer: _Peer):
        """The ``send(kind, payload)`` callable the broker core expects."""

        def send(kind: str, payload) -> None:
            if kind == "subscribe":
                self._enqueue(peer, Subscribe(payload), CONTROL_PRIORITY)
            elif kind == "unsubscribe":
                self._enqueue(peer, Unsubscribe(payload), CONTROL_PRIORITY)
            elif kind == "publish":
                self._forward_event(peer, payload)
            else:  # pragma: no cover - rtnet never batches on the wire
                raise ValueError(f"unroutable message kind {kind!r}")

        return send

    def _client_deliverer(self, peer: _Peer):
        def deliver(event) -> None:
            self._forward_event(peer, event)

        return deliver

    def _forward_event(self, peer: _Peer, event) -> None:
        relay = self._relay
        if relay is None:  # pragma: no cover - defensive
            raise ValueError("event forwarded outside a relay context")
        frame = EventFrame(peer.next_seq, relay.sent_at, relay.payload)
        peer.next_seq += 1
        self._enqueue(peer, frame, priority_of(event))

    def _enqueue(self, peer: _Peer, frame: Frame, priority: int) -> None:
        offer = peer.egress.offer(frame, priority)
        if offer.accepted:
            peer.wake.set()
        # Shed frames are counted by the queue itself (flow_shed_total).

    async def _pump_loop(self, peer: _Peer) -> None:
        try:
            while True:
                entry = peer.egress.take()
                if entry is None:
                    peer.wake.clear()
                    await peer.wake.wait()
                    continue
                frame, _priority = entry
                peer.writer.write(encode_frame(frame))
                await peer.writer.drain()
                self._count(
                    "rtnet_frames_total",
                    direction="out",
                    type=frame.type.name.lower(),
                )
        except (OSError, asyncio.CancelledError):
            return

    # -- metrics ----------------------------------------------------------------

    def _count(self, name: str, **labels: str) -> None:
        if self.registry is not None:
            self.registry.counter(
                name, broker=self.broker_id, **labels
            ).inc()

    def _gauge(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.gauge(name, broker=self.broker_id).set(value)
