"""String prefix/suffix key space.

String matching (Sections 3, 5.2): a subscription ``<attr, prefix, p>``
matches every event whose string value starts with ``p`` (suffix matching
is the mirror image over reversed strings).

The key tree is the trie of characters: ``K(p || c) = H(K(p) || c)``.  An
authorization key for prefix ``p`` derives the key of every extension of
``p``; the encryption key of an event value ``s`` is the key of the node
``s || END`` (a terminator branch, so the key for the *exact* string is
never an ancestor of a longer string's key -- holding the key for event
value ``"ab"`` must not let one read events valued ``"abc"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import H
from repro.core.keyspace import derive_root_key

#: Terminator marker appended below the last character of an event value.
_END = b"\x00end"


@dataclass(frozen=True)
class StringKeySpace:
    """Hierarchical key derivation over string prefixes (or suffixes)."""

    name: str
    suffix_mode: bool = False
    max_length: int = 256

    def _canonical(self, text: str) -> str:
        if len(text) > self.max_length:
            raise ValueError(
                f"string of length {len(text)} exceeds the key space "
                f"maximum {self.max_length}"
            )
        return text[::-1] if self.suffix_mode else text

    def root_key(self, topic_key: bytes) -> bytes:
        """Root key of this attribute's key trie."""
        label = f"{self.name}:{'suffix' if self.suffix_mode else 'prefix'}"
        return derive_root_key(topic_key, label)

    def _derive_prefix_key(self, root: bytes, prefix: str) -> bytes:
        key = root
        for character in prefix:
            key = H(key + character.encode("utf-8"))
        return key

    def authorization_key(
        self, topic_key: bytes, pattern: str
    ) -> tuple[str, bytes]:
        """Authorization key for a prefix (or suffix) subscription."""
        canonical = self._canonical(pattern)
        key = self._derive_prefix_key(self.root_key(topic_key), canonical)
        return pattern, key

    def encryption_key(self, topic_key: bytes, value: str) -> tuple[str, bytes]:
        """Encryption key for an event's exact string value."""
        canonical = self._canonical(value)
        key = self._derive_prefix_key(self.root_key(topic_key), canonical)
        return value, H(key + _END)

    def matches(self, pattern: str, value: str) -> bool:
        """Plaintext matching predicate (prefix or suffix)."""
        if self.suffix_mode:
            return value.endswith(pattern)
        return value.startswith(pattern)

    def derive_encryption_key(
        self, authorization: tuple[str, bytes], event_value: str
    ) -> tuple[bytes, int]:
        """Subscriber-side derivation; raises when the pattern misses.

        Returns ``(key, hash_ops)`` where ``hash_ops`` counts one ``H`` per
        remaining character plus the terminator step.
        """
        pattern, pattern_key = authorization
        if not self.matches(pattern, event_value):
            raise ValueError(
                f"pattern {pattern!r} does not match value {event_value!r}"
            )
        canonical_value = self._canonical(event_value)
        remaining = canonical_value[len(pattern):]
        key = pattern_key
        for character in remaining:
            key = H(key + character.encode("utf-8"))
        return H(key + _END), len(remaining) + 1
