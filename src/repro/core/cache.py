"""The key cache of Section 3.2.3.

When a subscriber derives an encryption key ``K_{ktid_alpha}`` from an
authorization key ``K_{ktid_phi}`` it caches every intermediate key on the
derivation path.  A later derivation for ``ktid_alpha'`` starts from the
*deepest cached ancestor* of the target -- the paper's "optimal cached
key" -- so derivation cost drops from ``H * (|alpha'| - |phi|)`` to
``H * (|alpha'| - |phi'|)``.  The win is largest when events exhibit
temporal locality (e.g. consecutive stock quotes; Figure 11 and
``examples/stock_ticker.py``).

The cache is bounded in bytes and evicts least-recently-used entries,
matching the cache-size axis of Figure 11.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.crypto.hashes import KEY_BYTES

#: A derivation path: namespace plus branch labels from the tree root.
CachePath = tuple[Hashable, ...]


class KeyCache:
    """A byte-bounded LRU cache of derived keys, keyed by derivation path."""

    def __init__(self, capacity_bytes: int = 64 * 1024):
        if capacity_bytes < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[CachePath, bytes] = OrderedDict()
        self._size_bytes = 0
        self.hits = 0
        self.misses = 0

    @staticmethod
    def entry_cost(path: CachePath) -> int:
        """Approximate memory footprint of one cache entry, in bytes."""
        path_cost = sum(
            len(part) if isinstance(part, (str, bytes)) else 1 for part in path
        )
        return KEY_BYTES + path_cost + 8  # key + path + bookkeeping

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        """Current footprint of all cached entries."""
        return self._size_bytes

    def put(self, path: CachePath, key: bytes) -> None:
        """Insert (or refresh) a derived key; evicts LRU entries as needed."""
        cost = self.entry_cost(path)
        if cost > self.capacity_bytes:
            return  # entry can never fit
        if path in self._entries:
            self._entries.move_to_end(path)
            self._entries[path] = key
            return
        self._entries[path] = key
        self._size_bytes += cost
        while self._size_bytes > self.capacity_bytes and self._entries:
            evicted_path, _ = self._entries.popitem(last=False)
            self._size_bytes -= self.entry_cost(evicted_path)

    def get(self, path: CachePath) -> bytes | None:
        """Exact-path lookup; refreshes recency on hit."""
        key = self._entries.get(path)
        if key is None:
            self.misses += 1
            return None
        self._entries.move_to_end(path)
        self.hits += 1
        return key

    def deepest_ancestor(
        self, path: CachePath, floor: int = 0
    ) -> tuple[CachePath, bytes] | None:
        """The longest cached prefix of *path* with length >= *floor*.

        This is the optimal starting point for a derivation toward *path*.
        Recency is refreshed on hit.  ``floor`` lets callers exclude
        prefixes above their authorization element (keys above it are never
        cached anyway, but the guard keeps the contract explicit).
        """
        for length in range(len(path), floor - 1, -1):
            candidate = path[:length]
            key = self._entries.get(candidate)
            if key is not None:
                self._entries.move_to_end(candidate)
                self.hits += 1
                return candidate, key
        self.misses += 1
        return None

    def clear(self) -> None:
        """Drop all entries and reset hit/miss counters."""
        self._entries.clear()
        self._size_bytes = 0
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
