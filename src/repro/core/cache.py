"""The key cache of Section 3.2.3.

When a subscriber derives an encryption key ``K_{ktid_alpha}`` from an
authorization key ``K_{ktid_phi}`` it caches every intermediate key on the
derivation path.  A later derivation for ``ktid_alpha'`` starts from the
*deepest cached ancestor* of the target -- the paper's "optimal cached
key" -- so derivation cost drops from ``H * (|alpha'| - |phi|)`` to
``H * (|alpha'| - |phi'|)``.  The win is largest when events exhibit
temporal locality (e.g. consecutive stock quotes; Figure 11 and
``examples/stock_ticker.py``).

The cache is bounded in bytes and evicts least-recently-used entries,
matching the cache-size axis of Figure 11.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from repro.crypto.hashes import KEY_BYTES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs is runtime-free)
    from repro.obs.metrics import MetricsRegistry

#: A derivation path: namespace plus branch labels from the tree root.
CachePath = tuple[Hashable, ...]


class KeyCache:
    """A byte-bounded LRU cache of derived keys, keyed by derivation path."""

    def __init__(self, capacity_bytes: int = 64 * 1024):
        if capacity_bytes < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[CachePath, bytes] = OrderedDict()
        self._size_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._c_hits = None
        self._c_misses = None
        self._c_evictions = None
        self._g_bytes = None

    def instrument(
        self, registry: "MetricsRegistry", name: str = "key_cache", **labels
    ) -> "KeyCache":
        """Register hit/miss/eviction counters and a size gauge in *registry*.

        Counters account from the moment of instrumentation (existing local
        totals are not replayed).  Returns ``self`` for chaining.
        """
        self._c_hits = registry.counter(f"{name}_hits_total", **labels)
        self._c_misses = registry.counter(f"{name}_misses_total", **labels)
        self._c_evictions = registry.counter(f"{name}_evictions_total", **labels)
        self._g_bytes = registry.gauge(f"{name}_size_bytes", **labels)
        self._g_bytes.set(self._size_bytes)
        return self

    @staticmethod
    def entry_cost(path: CachePath) -> int:
        """Approximate memory footprint of one cache entry, in bytes."""
        path_cost = sum(
            len(part) if isinstance(part, (str, bytes)) else 1 for part in path
        )
        return KEY_BYTES + path_cost + 8  # key + path + bookkeeping

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        """Current footprint of all cached entries."""
        return self._size_bytes

    def put(self, path: CachePath, key: bytes) -> None:
        """Insert (or refresh) a derived key; evicts LRU entries as needed."""
        cost = self.entry_cost(path)
        if cost > self.capacity_bytes:
            return  # entry can never fit
        if path in self._entries:
            self._entries.move_to_end(path)
            self._entries[path] = key
            return
        self._entries[path] = key
        self._size_bytes += cost
        while self._size_bytes > self.capacity_bytes and self._entries:
            evicted_path, _ = self._entries.popitem(last=False)
            self._size_bytes -= self.entry_cost(evicted_path)
            self.evictions += 1
            if self._c_evictions is not None:
                self._c_evictions.inc()
        if self._g_bytes is not None:
            self._g_bytes.set(self._size_bytes)

    def _count_hit(self) -> None:
        self.hits += 1
        if self._c_hits is not None:
            self._c_hits.inc()

    def _count_miss(self) -> None:
        self.misses += 1
        if self._c_misses is not None:
            self._c_misses.inc()

    def get(self, path: CachePath) -> bytes | None:
        """Exact-path lookup; refreshes recency on hit."""
        key = self._entries.get(path)
        if key is None:
            self._count_miss()
            return None
        self._entries.move_to_end(path)
        self._count_hit()
        return key

    def deepest_ancestor(
        self, path: CachePath, floor: int = 0
    ) -> tuple[CachePath, bytes] | None:
        """The longest cached prefix of *path* with length >= *floor*.

        This is the optimal starting point for a derivation toward *path*.
        Recency is refreshed on hit.  ``floor`` lets callers exclude
        prefixes above their authorization element (keys above it are never
        cached anyway, but the guard keeps the contract explicit).
        """
        for length in range(len(path), floor - 1, -1):
            candidate = path[:length]
            key = self._entries.get(candidate)
            if key is not None:
                self._entries.move_to_end(candidate)
                self._count_hit()
                return candidate, key
        self._count_miss()
        return None

    def clear(self) -> None:
        """Drop all entries and reset local hit/miss/eviction counters.

        Registry counters (if :meth:`instrument`-ed) are monotonic and keep
        their lifetime totals; only the size gauge tracks the reset.
        """
        self._entries.clear()
        self._size_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if self._g_bytes is not None:
            self._g_bytes.set(0)

    def stats(self) -> dict:
        """JSON-able summary used by ``repro bench`` reports."""
        return {
            "entries": len(self._entries),
            "capacity_bytes": self.capacity_bytes,
            "size_bytes": self._size_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
