"""Topic (keyword) key space.

The simplest matching type: a subscription ``<topic, EQ, w>`` matches an
event ``<topic, w>``.  The authorization key *is* the encryption key:
``K(w) = KH_{rk(KDC)}(w)`` (Section 3.1).  With multiple publishers on a
common topic, the KDC instead issues per-publisher topic keys
``K_P(w) = KH_{rk(KDC)}(P || w)`` so publisher ``P'`` cannot read ``P``'s
events (Section 3.1, "Multiple Publishers").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prf import KH


@dataclass(frozen=True)
class TopicKeySpace:
    """Key derivation for one topic namespace under a KDC master key."""

    per_publisher: bool = False

    def topic_key(
        self, master_key: bytes, topic: str, publisher: str | None = None
    ) -> bytes:
        """Derive the topic key ``K(w)`` or per-publisher ``K_P(w)``.

        The topic key roots every attribute key tree for events under this
        topic, and directly encrypts events whose only match constraint is
        the topic itself.
        """
        if self.per_publisher:
            if not publisher:
                raise ValueError(
                    "per-publisher key space requires a publisher identity"
                )
            material = f"{publisher}\x00{topic}".encode("utf-8")
        else:
            material = topic.encode("utf-8")
        return KH(master_key, material)
