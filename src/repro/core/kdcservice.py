"""A highly-available KDC: replicas as nodes on the simulated network.

Section 3.2.1 makes the KDC *stateless*: every key is re-derivable from
``rk(KDC)``, so it "can be replicated on demand with no consistency
protocol".  What that sentence glosses over is the small **mutable
registry** every replica still needs -- topic configurations, epoch
retunes, and revocations.  This module supplies the missing piece:

- :class:`KDCReplica` -- one service node wrapping a stateless
  :class:`~repro.core.kdc.KDC` that shares the cluster master key but
  owns a *private* copy of the registry, reconstructed purely from a
  replicated command log (replicas never share Python state);
- :class:`KDCCluster` -- N replicas with **epoch-numbered leadership**
  (a view counter bumped on every primary change) and a deterministic
  primary-backup registry log: mutations go to the primary, are
  replicated to backups, and anti-entropy sync plus **catch-up on
  restart** bound every replica's staleness;
- request **deduplication**: every client request carries a request id
  and replicas memoize their responses, so a retransmitted authorize /
  renew (the reply was lost, not the request) is answered from the
  cache instead of being re-issued -- making the client's at-least-once
  retry loop observably idempotent.

Key derivations (``authorize``, ``publisher_key``) are served by *any*
alive, caught-up replica -- that is the paper's availability argument.
Only registry mutations need the primary.  A replica that is down, or
recovering until its catch-up completes, simply refuses -- the
:class:`~repro.core.kdcclient.KDCClient` fails over to the next one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import (
    KDC,
    AuthorizationDenied,
    TopicConfig,
)
from repro.net.faults import FaultInjector
from repro.net.service import ServiceNetwork
from repro.obs.metrics import MetricsRegistry, RegistryBackedStats

#: How many memoized responses a replica keeps for request dedup.
DEDUP_CAPACITY = 4096


@dataclass(frozen=True)
class RegistryCommand:
    """One replicated registry mutation (1-based *seq* in the log)."""

    seq: int
    op: str  # "register_topic" | "set_epoch_length" | "revoke" | "reinstate"
    args: tuple


@dataclass(frozen=True)
class KDCRequest:
    """One control-plane message to a replica."""

    kind: str  # "authorize" | "publisher_key" | "admin" | "sync" | "replicate"
    request_id: tuple | None
    payload: dict


@dataclass
class KDCResponse:
    """A replica's answer, with its view of the leadership for redirects."""

    ok: bool
    value: object = None
    #: "denied" and "bad_request" are terminal; "recovering",
    #: "not_primary", and "stale" invite a failover to another replica.
    error: str | None = None
    view: int = 0
    primary: Hashable | None = None

    @property
    def retryable(self) -> bool:
        return self.error in ("recovering", "not_primary", "stale")


class ReplicaStats(RegistryBackedStats):
    """Per-replica accounting for the chaos reports.

    Registry-backed (``kdc_replica_<field>_total``, labelled
    ``replica=<id>``); the attribute API is a thin view over counters.
    """

    _int_fields = (
        "requests_served",
        "authorizations",
        "publisher_keys",
        "dedup_hits",
        "commands_applied",
        "syncs_served",
        "catchups_completed",
        "rejected_recovering",
        "rejected_not_primary",
        "denials",
    )
    _metric_prefix = "kdc_replica_"


class ClusterStats(RegistryBackedStats):
    """Cluster-wide leadership accounting (``kdc_view_changes_total``)."""

    _int_fields = ("view_changes",)
    _metric_prefix = "kdc_"

    def __init__(self, registry: MetricsRegistry | None = None, **labels):
        super().__init__(registry, **labels)
        #: ``(time, view, primary)`` leadership history.
        self.leadership_log: list[tuple[float, int, Hashable]] = []


class KDCReplica:
    """One KDC service node: stateless derivation + replicated registry."""

    def __init__(
        self,
        replica_id: Hashable,
        master_key: bytes,
        registry: MetricsRegistry | None = None,
    ):
        self.replica_id = replica_id
        self.kdc = KDC(master_key=master_key)
        #: The replicated registry log this replica has applied, in order.
        self.log: list[RegistryCommand] = []
        #: A restarted replica refuses service until caught up.
        self.recovering = False
        self.stats = ReplicaStats(registry, replica=str(replica_id))
        self._dedup: dict[tuple, KDCResponse] = {}
        self._dedup_order: deque[tuple] = deque()

    @property
    def applied_seq(self) -> int:
        return len(self.log)

    # -- log ------------------------------------------------------------------

    def append(self, command: RegistryCommand) -> bool:
        """Apply *command* if it is exactly the next log entry.

        Applies before appending, so a command that fails validation
        leaves the log untouched.
        """
        if command.seq != self.applied_seq + 1:
            return False
        self._apply(command)
        self.log.append(command)
        self.stats.commands_applied += 1
        return True

    def _apply(self, command: RegistryCommand) -> None:
        if command.op == "register_topic":
            topic, schema, epoch_length, per_publisher = command.args
            self.kdc.register_topic(
                topic, schema, epoch_length, per_publisher
            )
        elif command.op == "set_epoch_length":
            topic, length = command.args
            if length <= 0:
                raise ValueError("epoch length must be positive")
            self.kdc.config_for(topic).epoch_length = length
        elif command.op == "revoke":
            self.kdc.revoke(*command.args)
        elif command.op == "reinstate":
            self.kdc.reinstate(*command.args)
        else:  # pragma: no cover - commands are constructed internally
            raise ValueError(f"unknown registry op {command.op!r}")

    # -- request dedup --------------------------------------------------------

    def _remember(self, request_id: tuple | None, response: KDCResponse) -> None:
        if request_id is None:
            return
        if len(self._dedup) >= DEDUP_CAPACITY:
            evicted = self._dedup_order.popleft()
            self._dedup.pop(evicted, None)
        self._dedup[request_id] = response
        self._dedup_order.append(request_id)

    # -- serving --------------------------------------------------------------

    def serve(self, request: KDCRequest, view: int, primary: Hashable) -> KDCResponse:
        """Answer one read/derive request (authorize / publisher_key)."""
        self.stats.requests_served += 1
        if request.request_id is not None:
            cached = self._dedup.get(request.request_id)
            if cached is not None:
                self.stats.dedup_hits += 1
                return cached
        if self.recovering:
            self.stats.rejected_recovering += 1
            return KDCResponse(
                ok=False, error="recovering", view=view, primary=primary
            )
        response = self._serve_fresh(request, view, primary)
        # Retryable outcomes are transient by definition -- memoizing one
        # would keep answering "stale" after the replica caught up.
        if not response.retryable:
            self._remember(request.request_id, response)
        return response

    def _serve_fresh(
        self, request: KDCRequest, view: int, primary: Hashable
    ) -> KDCResponse:
        payload = request.payload
        try:
            if request.kind == "authorize":
                grant = self.kdc.authorize(
                    payload["subscriber"],
                    payload["filters"],
                    at_time=payload.get("at_time", 0.0),
                    publisher=payload.get("publisher"),
                    min_epoch=payload.get("min_epoch"),
                )
                self.stats.authorizations += 1
                return KDCResponse(
                    ok=True, value=grant, view=view, primary=primary
                )
            if request.kind == "publisher_key":
                key = self.kdc.issue_publisher_key(
                    payload["topic"],
                    payload["publisher"],
                    at_time=payload.get("at_time", 0.0),
                )
                self.stats.publisher_keys += 1
                return KDCResponse(
                    ok=True, value=key, view=view, primary=primary
                )
        except AuthorizationDenied:
            self.stats.denials += 1
            return KDCResponse(
                ok=False, error="denied", view=view, primary=primary
            )
        except KeyError:
            # An unknown topic on a backup is indistinguishable from a
            # not-yet-replicated registration; only the primary -- the
            # log authority -- may declare it terminally unregistered.
            error = "bad_request" if self.replica_id == primary else "stale"
            return KDCResponse(
                ok=False, error=error, view=view, primary=primary
            )
        except (ValueError, TypeError):
            return KDCResponse(
                ok=False, error="bad_request", view=view, primary=primary
            )
        return KDCResponse(
            ok=False, error="bad_request", view=view, primary=primary
        )


class KDCCluster:
    """N KDC replicas with view-numbered leadership on a service network.

    Replica crash/restart windows come from the *faults* injector (the
    same one that breaks links), so one seeded
    :class:`~repro.net.faults.FaultPlan` drives the whole failure
    timeline.  Leadership is deterministic: the primary changes only
    when the current primary crashes (or the first replica rejoins an
    empty cluster), moving to the next alive replica in ring order and
    bumping the view number.
    """

    def __init__(
        self,
        network: ServiceNetwork,
        replica_ids: Iterable[Hashable],
        master_key: bytes,
        faults: FaultInjector | None = None,
        sync_interval: float | None = 0.25,
        catchup_retry: float = 0.1,
        registry: MetricsRegistry | None = None,
    ):
        self.network = network
        self.sim = network.sim
        # Share the control-plane network's registry unless told otherwise.
        self.registry = (
            registry if registry is not None else network.registry
        )
        self.replica_ids = list(replica_ids)
        if not self.replica_ids:
            raise ValueError("need at least one replica")
        self.replicas = {
            replica_id: KDCReplica(replica_id, master_key, self.registry)
            for replica_id in self.replica_ids
        }
        self.view = 0
        self.primary_id: Hashable | None = self.replica_ids[0]
        self.stats = ClusterStats(self.registry)
        self._g_view = self.registry.gauge("kdc_view")
        self.catchup_retry = catchup_retry
        for replica_id in self.replica_ids:
            network.register(
                replica_id,
                lambda src, req, rid=replica_id: self._handle(rid, src, req),
            )
        if faults is not None:
            faults.on_transition(self._on_transition)
        if sync_interval is not None:
            self._start_anti_entropy(sync_interval)

    # -- bootstrap -------------------------------------------------------------

    def register_topic(
        self,
        topic: str,
        schema: CompositeKeySpace,
        epoch_length: float = 3600.0,
        per_publisher: bool = False,
    ) -> None:
        """Provision a topic on every replica (pre-run bootstrap path)."""
        self._append_everywhere(
            "register_topic", (topic, schema, epoch_length, per_publisher)
        )

    def revoke(self, subscriber: str, topic: str) -> None:
        """Provisioning-path revocation (tests drive the RPC path too)."""
        self._append_everywhere("revoke", (subscriber, topic))

    def _append_everywhere(self, op: str, args: tuple) -> None:
        primary = self._primary_replica()
        if primary is None:
            raise RuntimeError("no alive replica to accept the mutation")
        command = RegistryCommand(primary.applied_seq + 1, op, args)
        primary.append(command)
        self._replicate(command)

    # -- leadership ------------------------------------------------------------

    def _primary_replica(self) -> KDCReplica | None:
        if self.primary_id is None:
            return None
        return self.replicas[self.primary_id]

    def _alive(self, replica_id: Hashable) -> bool:
        return self.network.node_up(replica_id)

    def _elect(self, after: Hashable | None) -> None:
        """Move leadership to the next alive replica in ring order."""
        order = self.replica_ids
        start = (order.index(after) + 1) if after in order else 0
        for shift in range(len(order)):
            candidate = order[(start + shift) % len(order)]
            if self._alive(candidate):
                self.primary_id = candidate
                break
        else:
            self.primary_id = None
        self.view += 1
        self.stats.view_changes += 1
        self._g_view.set(self.view)
        self.stats.leadership_log.append(
            (self.sim.now, self.view, self.primary_id)
        )

    def _on_transition(self, kind: str, node: Hashable) -> None:
        replica = self.replicas.get(node)
        if replica is None:
            return
        if kind == "crash":
            if node == self.primary_id:
                self._elect(after=node)
            return
        # Restart: rejoin as a recovering backup and catch up from the
        # current primary; a lone rejoiner becomes primary outright (its
        # log is the freshest one that still exists).
        if self.primary_id is None:
            self._elect(after=None)
            return
        if node == self.primary_id:
            return
        replica.recovering = True
        self._catch_up(replica)

    # -- replication -----------------------------------------------------------

    def _replicate(self, command: RegistryCommand) -> None:
        primary_id = self.primary_id
        for replica_id in self.replica_ids:
            if replica_id == primary_id:
                continue
            self.network.request(
                primary_id,
                replica_id,
                KDCRequest("replicate", None, {"command": command}),
            )

    def _start_anti_entropy(self, interval: float) -> None:
        """Backups periodically pull the log suffix they are missing.

        This bounds staleness when a ``replicate`` message is lost on a
        faulty link -- the deterministic stand-in for a retransmitting
        replication stream.
        """

        def pull() -> None:
            for replica_id, replica in self.replicas.items():
                if (
                    replica_id != self.primary_id
                    and self._alive(replica_id)
                    and not replica.recovering
                ):
                    self._sync_once(replica)
            self.sim.schedule(interval, pull)

        self.sim.schedule(interval, pull)

    def _sync_once(self, replica: KDCReplica) -> None:
        primary_id = self.primary_id
        if primary_id is None or primary_id == replica.replica_id:
            return
        self.network.request(
            replica.replica_id,
            primary_id,
            KDCRequest("sync", None, {"from_seq": replica.applied_seq}),
            on_reply=lambda reply: self._absorb_sync(replica, reply),
        )

    def _absorb_sync(self, replica: KDCReplica, reply: object) -> None:
        if not isinstance(reply, KDCResponse) or not reply.ok:
            return
        for command in reply.value:
            replica.append(command)

    # -- restart catch-up ------------------------------------------------------

    def _catch_up(self, replica: KDCReplica) -> None:
        """Pull the missed log suffix; retry until it lands."""
        if not replica.recovering or not self._alive(replica.replica_id):
            return
        primary_id = self.primary_id
        if primary_id is None or primary_id == replica.replica_id:
            replica.recovering = False
            return

        def absorb(reply: object) -> None:
            if not replica.recovering:
                return
            if isinstance(reply, KDCResponse) and reply.ok:
                for command in reply.value:
                    replica.append(command)
                replica.recovering = False
                replica.stats.catchups_completed += 1

        self.network.request(
            replica.replica_id,
            primary_id,
            KDCRequest("sync", None, {"from_seq": replica.applied_seq}),
            on_reply=absorb,
        )
        # The reply may be lost on a faulty link: keep pulling until the
        # catch-up completes (each attempt is idempotent).
        self.sim.schedule(self.catchup_retry, lambda: self._catch_up(replica))

    # -- request dispatch ------------------------------------------------------

    def _handle(
        self, replica_id: Hashable, src: Hashable, request: object
    ) -> KDCResponse | None:
        if not isinstance(request, KDCRequest):
            return None
        replica = self.replicas[replica_id]
        if request.kind in ("authorize", "publisher_key"):
            return replica.serve(request, self.view, self.primary_id)
        if request.kind == "admin":
            return self._handle_admin(replica, request)
        if request.kind == "sync":
            replica.stats.syncs_served += 1
            from_seq = request.payload.get("from_seq", 0)
            return KDCResponse(
                ok=True,
                value=list(replica.log[from_seq:]),
                view=self.view,
                primary=self.primary_id,
            )
        if request.kind == "replicate":
            command = request.payload["command"]
            if not replica.append(command) and command.seq > replica.applied_seq:
                # A gap: an earlier replicate was lost; pull the suffix.
                self._sync_once(replica)
            return None
        return KDCResponse(
            ok=False,
            error="bad_request",
            view=self.view,
            primary=self.primary_id,
        )

    def _handle_admin(
        self, replica: KDCReplica, request: KDCRequest
    ) -> KDCResponse:
        replica.stats.requests_served += 1
        if request.request_id is not None:
            cached = replica._dedup.get(request.request_id)
            if cached is not None:
                replica.stats.dedup_hits += 1
                return cached
        if replica.replica_id != self.primary_id:
            replica.stats.rejected_not_primary += 1
            return KDCResponse(
                ok=False,
                error="not_primary",
                view=self.view,
                primary=self.primary_id,
            )
        if replica.recovering:
            replica.stats.rejected_recovering += 1
            return KDCResponse(
                ok=False,
                error="recovering",
                view=self.view,
                primary=self.primary_id,
            )
        op = request.payload["op"]
        args = tuple(request.payload["args"])
        try:
            command = RegistryCommand(replica.applied_seq + 1, op, args)
            replica.append(command)
        except (KeyError, ValueError, TypeError):
            response = KDCResponse(
                ok=False,
                error="bad_request",
                view=self.view,
                primary=self.primary_id,
            )
            replica._remember(request.request_id, response)
            return response
        self._replicate(command)
        response = KDCResponse(
            ok=True,
            value=command.seq,
            view=self.view,
            primary=self.primary_id,
        )
        replica._remember(request.request_id, response)
        return response

    # -- introspection ---------------------------------------------------------

    def registry_of(self, replica_id: Hashable) -> dict[str, TopicConfig]:
        """A replica's current (private) registry view."""
        return self.replicas[replica_id].kdc.registry

    def converged(self) -> bool:
        """Whether every alive replica has applied the same log."""
        logs = [
            tuple(replica.log)
            for replica_id, replica in self.replicas.items()
            if self._alive(replica_id)
        ]
        return len(set(logs)) <= 1
