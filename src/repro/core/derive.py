"""Cache-aware key derivation walks.

Implements the optimization of Section 3.2.3: every intermediate key
computed while walking a key tree is cached, and later derivations start
from the *deepest cached ancestor* of their target instead of from the
authorization key.

All key spaces share one path vocabulary so their entries coexist in one
:class:`~repro.core.cache.KeyCache`:

- numeric trees contribute integer branch digits,
- category trees contribute label strings,
- string tries contribute characters plus the terminator marker.

Entries are namespaced by ``(topic, attribute, key-fingerprint)`` so keys
from different topics, attributes or epochs can never be confused.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.crypto.hashes import H
from repro.core.cache import KeyCache
from repro.core.category import CategoryKeySpace
from repro.core.ktid import KTID
from repro.core.nakt import NumericKeySpace
from repro.core.strings import StringKeySpace

#: Terminator path element for string-space event values.
STRING_END = "\x00end"

PathPart = Hashable


def derivation_step(key: bytes, part: PathPart) -> bytes:
    """One downward derivation step ``H(key || branch)``.

    Integer parts are tree digits (numeric key trees); string parts are
    labels/characters (category trees and string tries).
    """
    if isinstance(part, int):
        return H(key + bytes([part]))
    if isinstance(part, str):
        return H(key + part.encode("utf-8"))
    raise TypeError(f"unsupported path part {part!r}")


def cache_namespace(
    topic: str, attribute: str, scope: Hashable
) -> tuple[PathPart, ...]:
    """Cache namespace for one attribute tree within one epoch.

    *scope* disambiguates epochs: publishers pass a topic-key fingerprint,
    subscribers their grant's epoch number.
    """
    if isinstance(scope, (bytes, bytearray)):
        scope = bytes(scope[:4])
    return ("ns", topic, attribute, scope)


def element_path(space: object, element: object) -> tuple[PathPart, ...]:
    """Root-relative path of a *granted* key-space element."""
    if isinstance(space, NumericKeySpace):
        if not isinstance(element, KTID):
            raise TypeError("numeric elements are KTIDs")
        return tuple(element.digits)
    if isinstance(space, CategoryKeySpace):
        return tuple(space.tree.path(space.tree.label_of(str(element))))
    if isinstance(space, StringKeySpace):
        pattern = str(element)
        canonical = pattern[::-1] if space.suffix_mode else pattern
        return tuple(canonical)
    raise TypeError(f"unknown key space type {type(space).__name__}")


def value_path(space: object, value: object) -> tuple[PathPart, ...]:
    """Root-relative path of an *event value*'s leaf key."""
    if isinstance(space, NumericKeySpace):
        if isinstance(value, KTID):
            return tuple(value.digits)
        return tuple(space.ktid(value).digits)
    if isinstance(space, CategoryKeySpace):
        return tuple(space.tree.path(space.tree.label_of(str(value))))
    if isinstance(space, StringKeySpace):
        text = str(value)
        canonical = text[::-1] if space.suffix_mode else text
        return tuple(canonical) + (STRING_END,)
    raise TypeError(f"unknown key space type {type(space).__name__}")


def cached_walk(
    cache: KeyCache | None,
    namespace: tuple[PathPart, ...],
    start_parts: Sequence[PathPart],
    start_key: bytes,
    target_parts: Sequence[PathPart],
) -> tuple[bytes, int]:
    """Derive the key at *target_parts* starting at *start_parts*.

    ``start_parts`` must be a prefix of ``target_parts`` (both
    root-relative).  When a cache is supplied, the walk starts from the
    deepest cached ancestor at or below the start, and every intermediate
    key is cached on the way down.  Returns ``(key, hash_operations)``.
    """
    start = tuple(start_parts)
    target = tuple(target_parts)
    if target[: len(start)] != start:
        raise ValueError(
            f"start path {start!r} is not a prefix of target {target!r}"
        )

    full_target = namespace + target
    position = len(namespace) + len(start)
    key = start_key

    if cache is not None:
        hit = cache.deepest_ancestor(full_target, floor=position)
        if hit is not None:
            position = len(hit[0])
            key = hit[1]

    operations = 0
    while position < len(full_target):
        key = derivation_step(key, full_target[position])
        position += 1
        operations += 1
        if cache is not None:
            cache.put(full_target[:position], key)
    return key, operations
