"""The Numeric Attribute Key Tree (NAKT) of Section 3.1.

Supports range subscriptions ``<num, in, (l, u)>`` over a numeric attribute
with range ``(0, |R(num)| - 1)`` and least count ``lc(num)``:

- a value ``v`` maps to the leaf ``ktid(v)``, a depth-``m`` digit string of
  ``floor(v / lc)`` where ``m = ceil(log_a(|R|/lc))``;
- the encryption key of an event ``<num, v>`` is the leaf key
  ``K_{ktid(v)}``;
- the authorization keys of a subscription ``(l, u)`` are the keys of the
  *minimal aligned cover* of the range -- at most ``2(a-1)log_a(|R|/lc)-2``
  elements, minimized at ``a = 2`` (the paper's binary-optimality claim,
  reproduced by ``benchmarks/bench_ablation_arity.py``).

A subscriber derives ``K_{ktid(v)}`` from a cover key ``K_{ktid}`` iff
``ktid`` is a prefix of ``ktid(v)`` iff ``l <= v <= u``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.keyspace import (
    derive_between,
    derive_node_key,
    derive_root_key,
)
from repro.core.ktid import KTID


@dataclass(frozen=True)
class NumericKeySpace:
    """The key space of one numeric attribute.

    ``range_size`` is ``|R(num)|`` (values span ``0 .. range_size - 1``),
    ``least_count`` is ``lc(num)`` -- the smallest subscribable interval --
    and ``arity`` the tree fan-out ``a``.
    """

    name: str
    range_size: int
    least_count: int = 1
    arity: int = 2

    def __post_init__(self) -> None:
        if self.range_size < 1:
            raise ValueError(f"range size must be positive, got {self.range_size}")
        if self.least_count < 1:
            raise ValueError(
                f"least count must be positive, got {self.least_count}"
            )
        if self.least_count > self.range_size:
            raise ValueError("least count cannot exceed the range size")
        if self.arity < 2:
            raise ValueError(f"arity must be >= 2, got {self.arity}")

    # -- geometry ------------------------------------------------------------

    @property
    def leaf_count(self) -> int:
        """Number of leaves: aligned blocks of ``least_count`` values."""
        return math.ceil(self.range_size / self.least_count)

    @property
    def depth(self) -> int:
        """Tree depth ``m = ceil(log_a(leaf_count))``."""
        if self.leaf_count == 1:
            return 0
        return math.ceil(math.log(self.leaf_count, self.arity))

    def _check_value(self, value: float) -> int:
        if not 0 <= value < self.range_size:
            raise ValueError(
                f"value {value} outside range [0, {self.range_size - 1}] "
                f"of attribute {self.name!r}"
            )
        return int(value // self.least_count)

    def ktid(self, value: float) -> KTID:
        """The leaf identifier ``ktid(v)`` of an attribute value.

        >>> NumericKeySpace("age", 32, least_count=4).ktid(22)
        KTID(101, arity=2)
        """
        return KTID.from_index(self._check_value(value), self.depth, self.arity)

    def node_range(self, ktid: KTID) -> tuple[int, int]:
        """Inclusive value range ``(low, high)`` covered by a tree node."""
        if ktid.arity != self.arity or ktid.depth > self.depth:
            raise ValueError(f"{ktid!r} does not belong to this key space")
        span = self.arity ** (self.depth - ktid.depth)
        low_block = ktid.index * span
        high_block = low_block + span - 1
        low = low_block * self.least_count
        high = min((high_block + 1) * self.least_count, self.range_size) - 1
        if low >= self.range_size:
            raise ValueError(f"{ktid!r} lies entirely outside the value range")
        return low, high

    # -- minimal range cover -----------------------------------------------

    def cover(self, low: float, high: float) -> list[KTID]:
        """Minimal set of aligned tree elements spanning ``[low, high]``.

        The subscription is snapped outward to least-count boundaries (a
        subscription can only be expressed at ``lc`` granularity).  Greedy
        maximal-aligned-block selection yields the provably minimal cover.

        >>> space = NumericKeySpace("num", 32)
        >>> [str(k) for k in space.cover(8, 19)]  # paper: {(8,15), (16,19)}
        ['01', '100']
        """
        if low > high:
            raise ValueError(f"empty subscription range ({low}, {high})")
        first_block = self._check_value(low)
        last_block = self._check_value(min(high, self.range_size - 1))

        elements: list[KTID] = []
        block = first_block
        while block <= last_block:
            # Largest arity-power block aligned at `block` and inside range.
            span = 1
            while (
                block % (span * self.arity) == 0
                and block + span * self.arity - 1 <= last_block
            ):
                span *= self.arity
            level = self.depth - round(math.log(span, self.arity))
            elements.append(KTID.from_index(block // span, level, self.arity))
            block += span
        return sorted(elements, key=lambda k: self.node_range(k)[0])

    # -- keys ------------------------------------------------------------------

    def root_key(self, topic_key: bytes) -> bytes:
        """Root key ``K_root(num) = KH_{K(w)}(num)``."""
        return derive_root_key(topic_key, self.name)

    def node_key(self, topic_key: bytes, ktid: KTID) -> bytes:
        """Key of a tree element, derived from the topic key (KDC side)."""
        return derive_node_key(self.root_key(topic_key), ktid)

    def encryption_key(self, topic_key: bytes, value: float) -> tuple[KTID, bytes]:
        """Encryption key ``K(e) = K_{ktid(v)}`` for an event value.

        Returns ``(ktid(v), key)``; the ktid travels with the event as its
        routing label.
        """
        leaf = self.ktid(value)
        return leaf, self.node_key(topic_key, leaf)

    def authorization_keys(
        self, topic_key: bytes, low: float, high: float
    ) -> list[tuple[KTID, bytes]]:
        """Authorization keys for a range subscription (KDC side).

        One ``(ktid, key)`` pair per element of the minimal cover -- the
        paper's ``K(f) = K_{ktid(l,u)}`` generalized to multi-element
        covers.
        """
        root = self.root_key(topic_key)
        return [
            (element, derive_node_key(root, element))
            for element in self.cover(low, high)
        ]

    @staticmethod
    def derive_encryption_key(
        authorization: tuple[KTID, bytes], event_ktid: KTID
    ) -> tuple[bytes, int]:
        """Subscriber-side derivation of ``K(e)`` from one authorization key.

        Returns ``(key, hash_ops)``.  Raises :class:`ValueError` when the
        authorization element is not an ancestor of the event leaf -- i.e.
        the event does not match the subscription.
        """
        ktid, key = authorization
        return derive_between(key, ktid, event_ktid)

    # -- cost bounds (Section 3.1) ---------------------------------------------

    def max_cover_size(self) -> int:
        """Paper bound: ``2(a-1) log_a(|R|/lc) - 2`` (>= 1)."""
        if self.depth == 0:
            return 1
        return max(1, 2 * (self.arity - 1) * self.depth - 2)

    def average_cover_size(self, subscription_span: float) -> float:
        """Paper estimate for uniform random ranges: ``log_2(span/lc)``."""
        blocks = max(2.0, subscription_span / self.least_count)
        return math.log2(blocks)
