"""Failover client for the replicated KDC service.

``KDCClient`` is what a subscriber's :class:`~repro.core.renewal.RenewalManager`
(or a publisher) binds instead of an in-process :class:`~repro.core.kdc.KDC`
when the key service runs as :class:`~repro.core.kdcservice.KDCCluster`
replicas on the fault-injectable network.  It supplies the client half of
the availability story:

- **replica failover** -- attempts rotate through the replica list,
  sticking to the last replica that answered (and following a primary
  redirect for mutations);
- **retry with exponential backoff + jitter** -- each attempt's timeout
  grows by ``backoff`` and is jittered to desynchronize renewal storms
  at epoch boundaries;
- **request deduplication** -- every logical request carries one request
  id across all its attempts, so a replica that already served it (the
  *reply* was lost, not the request) answers from its dedup cache and a
  grant is never double-issued or double-billed;
- **circuit breaker** -- a replica that times out ``breaker_threshold``
  times in a row is skipped for ``breaker_cooldown`` seconds instead of
  eating a full timeout on every renewal (half-open probing resumes
  after the cooldown).

The API is callback-based because the client lives on the simulator
clock: ``authorize`` *initiates* a request and returns; ``on_grant`` /
``on_error`` fire when it resolves, possibly several failovers later.
``on_error`` receives :class:`~repro.core.kdc.KDCUnavailableError` once
retries are exhausted (retryable) or
:class:`~repro.core.kdc.AuthorizationDenied` on revocation (terminal).
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

from repro.core.kdc import (
    AuthorizationDenied,
    AuthorizationGrant,
    KDCUnavailableError,
)
from repro.core.kdcservice import KDCRequest, KDCResponse
from repro.net.service import ServiceNetwork
from repro.obs.metrics import MetricsRegistry, RegistryBackedStats
from repro.siena.filters import Filter


@dataclass
class ClientRetryPolicy:
    """Retry/failover knobs for one :class:`KDCClient`."""

    #: Reply timeout for the first attempt; must exceed one RPC round trip.
    timeout: float = 0.03
    #: Total attempts per logical request, across all replicas.
    max_attempts: int = 8
    #: Multiplier applied to the timeout after every failed attempt.
    backoff: float = 1.5
    #: Uniform +-fraction perturbing each timeout.
    jitter: float = 0.2
    #: Consecutive timeouts before a replica's breaker opens.
    breaker_threshold: int = 3
    #: Seconds an open breaker skips its replica before half-open probing.
    breaker_cooldown: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.backoff < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter fraction must be within [0, 1)")
        if self.breaker_threshold < 1:
            raise ValueError("breaker threshold must be at least one")
        if self.breaker_cooldown < 0:
            raise ValueError("breaker cooldown must be non-negative")

    def timeout_for(self, attempt: int, rng: random.Random) -> float:
        """The reply timeout for (0-based) *attempt*, with jitter."""
        timeout = self.timeout * (self.backoff ** attempt)
        if self.jitter:
            timeout *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return timeout


class KDCClientStats(RegistryBackedStats):
    """What the client's availability machinery did.

    Registry-backed (``kdc_client_<field>_total``, labelled
    ``client=<id>``); the attribute API is a thin view over counters.
    """

    _int_fields = (
        "requests",
        "successes",
        # Requests that exhausted every attempt (KDC unavailable).
        "failures",
        # Terminal denials (revocation) -- not retried.
        "denied",
        "attempts",
        "retries",
        "timeouts",
        # Attempts that switched to a different replica than the previous.
        "failovers",
        "breaker_opens",
        # Candidate replicas skipped because their breaker was open.
        "breaker_skips",
        # Mutation attempts redirected to the view's primary.
        "redirects",
        # Replies that arrived after their attempt had already timed out
        # (accepted anyway -- request ids make them safe).
        "late_replies",
    )
    _metric_prefix = "kdc_client_"


class _Breaker:
    """Per-replica consecutive-failure circuit breaker."""

    def __init__(self) -> None:
        self.consecutive_failures = 0
        self.open_until = -math.inf

    def available(self, now: float) -> bool:
        return now >= self.open_until

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.open_until = -math.inf

    def record_failure(self, now: float, policy: ClientRetryPolicy) -> bool:
        """Count one failure; returns True when this opens the breaker."""
        self.consecutive_failures += 1
        if self.consecutive_failures >= policy.breaker_threshold:
            self.open_until = now + policy.breaker_cooldown
            self.consecutive_failures = 0
            return True
        return False


class _Call:
    """One logical request's lifecycle across attempts."""

    def __init__(self, request: KDCRequest, on_ok, on_error):
        self.request = request
        self.on_ok = on_ok
        self.on_error = on_error
        self.done = False
        self.attempt = 0
        self.last_replica: Hashable | None = None
        self.primary_hint: Hashable | None = None
        self.timer = None
        self.started_at = 0.0


class KDCClient:
    """Replica-failover access to a :class:`~repro.core.kdcservice.KDCCluster`."""

    #: Marks the callback-based API for :class:`RenewalManager` binding.
    is_async_client = True

    def __init__(
        self,
        network: ServiceNetwork,
        client_id: Hashable,
        replica_ids: Iterable[Hashable],
        policy: ClientRetryPolicy | None = None,
        seed: int = 0,
        registry: MetricsRegistry | None = None,
    ):
        self.network = network
        self.client_id = client_id
        self.replica_ids = list(replica_ids)
        if not self.replica_ids:
            raise ValueError("need at least one replica address")
        self.policy = policy if policy is not None else ClientRetryPolicy()
        # Share the control-plane network's registry unless told otherwise.
        self.registry = (
            registry if registry is not None else network.registry
        )
        self.stats = KDCClientStats(self.registry, client=str(client_id))
        self._h_latency = self.registry.histogram(
            "kdc_client_request_latency_seconds", client=str(client_id)
        )
        self._g_breaker = {
            rid: self.registry.gauge(
                "kdc_client_breaker_open",
                client=str(client_id),
                replica=str(rid),
            )
            for rid in self.replica_ids
        }
        self._rng = random.Random(seed)
        self._counter = itertools.count()
        self._breakers = {rid: _Breaker() for rid in self.replica_ids}
        #: Sticky preference: the last replica that answered successfully.
        self._preferred = self.replica_ids[0]

    def now(self) -> float:
        """The client's clock (the simulator's virtual time)."""
        return self.network.sim.now

    # -- public operations -----------------------------------------------------

    def authorize(
        self,
        subscriber: str,
        filters: Filter | list[Filter],
        at_time: float = 0.0,
        publisher: str | None = None,
        min_epoch: int | None = None,
        on_grant: Callable[[AuthorizationGrant], None] = lambda grant: None,
        on_error: Callable[[Exception], None] = lambda error: None,
    ) -> None:
        """Request an authorization grant (idempotent across retries)."""
        self._call(
            KDCRequest(
                "authorize",
                self._next_request_id(),
                {
                    "subscriber": subscriber,
                    "filters": filters,
                    "at_time": at_time,
                    "publisher": publisher,
                    "min_epoch": min_epoch,
                },
            ),
            on_grant,
            on_error,
        )

    def publisher_key(
        self,
        topic: str,
        publisher: str,
        at_time: float = 0.0,
        on_key: Callable[[bytes], None] = lambda key: None,
        on_error: Callable[[Exception], None] = lambda error: None,
    ) -> None:
        """Fetch the epoch's (per-)publisher topic key."""
        self._call(
            KDCRequest(
                "publisher_key",
                self._next_request_id(),
                {"topic": topic, "publisher": publisher, "at_time": at_time},
            ),
            on_key,
            on_error,
        )

    def admin(
        self,
        op: str,
        args: tuple,
        on_ok: Callable[[object], None] = lambda value: None,
        on_error: Callable[[Exception], None] = lambda error: None,
    ) -> None:
        """Submit a registry mutation (routed/redirected to the primary)."""
        self._call(
            KDCRequest(
                "admin",
                self._next_request_id(),
                {"op": op, "args": tuple(args)},
            ),
            on_ok,
            on_error,
        )

    # -- the retry/failover engine --------------------------------------------

    def _next_request_id(self) -> tuple:
        return (self.client_id, next(self._counter))

    def _pick_replica(self, call: _Call) -> Hashable:
        """Next candidate: redirect hint, then ring order, skipping open
        breakers (unless every breaker is open)."""
        now = self.now()
        hint = call.primary_hint
        call.primary_hint = None
        if hint in self._breakers and self._breakers[hint].available(now):
            return hint
        order = self.replica_ids
        if call.last_replica in order:
            start = order.index(call.last_replica) + 1
        else:
            start = order.index(self._preferred)
        for shift in range(len(order)):
            candidate = order[(start + shift) % len(order)]
            if self._breakers[candidate].available(now):
                return candidate
            self.stats.breaker_skips += 1
        # All breakers open: probe the one that reopens soonest.
        return min(order, key=lambda rid: self._breakers[rid].open_until)

    def _call(self, request: KDCRequest, on_ok, on_error) -> None:
        self.stats.requests += 1
        call = _Call(request, on_ok, on_error)
        call.started_at = self.now()
        self._attempt(call)

    def _attempt(self, call: _Call) -> None:
        if call.done:
            return
        if call.attempt >= self.policy.max_attempts:
            call.done = True
            self.stats.failures += 1
            call.on_error(
                KDCUnavailableError(
                    f"request {call.request.request_id} exhausted "
                    f"{self.policy.max_attempts} attempts"
                )
            )
            return
        replica = self._pick_replica(call)
        if call.attempt > 0:
            self.stats.retries += 1
            if replica != call.last_replica:
                self.stats.failovers += 1
        call.last_replica = replica
        attempt = call.attempt
        call.attempt += 1
        self.stats.attempts += 1

        def on_reply(reply: object) -> None:
            self._resolve(call, replica, attempt, reply)

        self.network.request(
            self.client_id, replica, call.request, on_reply=on_reply
        )
        timeout = self.policy.timeout_for(attempt, self._rng)
        call.timer = self.network.sim.schedule(
            timeout, lambda: self._on_timeout(call, replica, attempt)
        )

    def _resolve(
        self, call: _Call, replica: Hashable, attempt: int, reply: object
    ) -> None:
        if call.done or not isinstance(reply, KDCResponse):
            return
        if attempt != call.attempt - 1:
            # A reply from a superseded (timed-out) attempt; the request
            # id made the work idempotent, so accept it as the answer.
            self.stats.late_replies += 1
        if call.timer is not None:
            call.timer.cancel()
        if reply.ok:
            call.done = True
            self._breakers[replica].record_success()
            self._g_breaker[replica].set(0)
            self._preferred = replica
            self.stats.successes += 1
            self._h_latency.observe(self.now() - call.started_at)
            call.on_ok(reply.value)
            return
        if reply.retryable:
            # The replica is alive but cannot serve (recovering, or not
            # the primary for a mutation): fail over immediately, using
            # its view of the leadership as a routing hint.
            if reply.error == "not_primary" and reply.primary is not None:
                call.primary_hint = reply.primary
                self.stats.redirects += 1
            self.network.sim.schedule(0.0, lambda: self._attempt(call))
            return
        call.done = True
        if reply.error == "denied":
            self.stats.denied += 1
            call.on_error(
                AuthorizationDenied(
                    f"request {call.request.request_id} denied"
                )
            )
            return
        self.stats.failures += 1
        call.on_error(
            ValueError(f"request {call.request.request_id}: {reply.error}")
        )

    def _on_timeout(
        self, call: _Call, replica: Hashable, attempt: int
    ) -> None:
        if call.done or attempt != call.attempt - 1:
            return
        self.stats.timeouts += 1
        if self._breakers[replica].record_failure(self.now(), self.policy):
            self.stats.breaker_opens += 1
            self._g_breaker[replica].set(1)
        self._attempt(call)
