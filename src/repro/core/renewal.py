"""Client-side subscription renewal across epochs.

The epoch model (Section 2.1) makes every authorization a lease: "at the
end of an epoch, the subscriber will have to obtain a new authorization
permit (authorization key) to read events that match the subscription
filter in the next epoch."  ``RenewalManager`` automates that client
obligation:

- it tracks the filters a subscriber wants standing access to,
- renews each grant shortly before its epoch expires (a configurable
  lead time, so in-flight events spanning the boundary stay readable),
- and drops expired grants from the subscriber's key ring.

Renewals are also where a payment-based service would charge the
subscriber (Section 6); the manager counts them for exactly that reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kdc import KDC, AuthorizationGrant
from repro.core.subscriber import Subscriber
from repro.siena.filters import Filter


@dataclass
class _StandingSubscription:
    filters: Filter | list[Filter]
    publisher: str | None
    current_grant: AuthorizationGrant | None = None


@dataclass
class RenewalStats:
    """Counters a billing service (or a test) would read."""

    renewals: int = 0
    keys_fetched: int = 0
    grants_dropped: int = 0


class RenewalManager:
    """Keeps a subscriber's grants fresh across epoch boundaries."""

    def __init__(
        self,
        subscriber: Subscriber,
        kdc: KDC,
        renew_lead_time: float = 0.0,
    ):
        if renew_lead_time < 0:
            raise ValueError("lead time must be non-negative")
        self.subscriber = subscriber
        self.kdc = kdc
        self.renew_lead_time = renew_lead_time
        self._standing: list[_StandingSubscription] = []
        self.stats = RenewalStats()

    def add_subscription(
        self,
        filters: Filter | list[Filter],
        at_time: float = 0.0,
        publisher: str | None = None,
    ) -> AuthorizationGrant:
        """Register a standing subscription and fetch its first grant."""
        standing = _StandingSubscription(filters, publisher)
        self._standing.append(standing)
        return self._renew(standing, at_time)

    def _renew(
        self, standing: _StandingSubscription, at_time: float
    ) -> AuthorizationGrant:
        grant = self.kdc.authorize(
            self.subscriber.subscriber_id,
            standing.filters,
            at_time=at_time,
            publisher=standing.publisher,
        )
        self.subscriber.add_grant(grant)
        standing.current_grant = grant
        self.stats.renewals += 1
        self.stats.keys_fetched += grant.key_count()
        return grant

    def next_renewal_at(self) -> float | None:
        """Earliest instant some standing grant wants renewing."""
        deadlines = [
            standing.current_grant.expires_at - self.renew_lead_time
            for standing in self._standing
            if standing.current_grant is not None
        ]
        return min(deadlines) if deadlines else None

    def tick(self, at_time: float) -> int:
        """Advance the clock: renew due grants, drop expired ones.

        Returns how many renewals happened.  Designed to be driven by a
        timer, an event loop, or a simulation's virtual clock.
        """
        renewed = 0
        for standing in self._standing:
            grant = standing.current_grant
            due = (
                grant is None
                or at_time >= grant.expires_at - self.renew_lead_time
            )
            if due:
                # Renew *into the epoch at or after at_time*: renewing at
                # the lead-time margin must target the upcoming epoch.
                target_time = max(
                    at_time,
                    grant.expires_at + 1e-9 if grant else at_time,
                ) if self.renew_lead_time else at_time
                self._renew(standing, target_time)
                renewed += 1
        self.stats.grants_dropped += self.subscriber.drop_expired(at_time)
        return renewed

    def cancel_all(self, at_time: float) -> None:
        """Stop renewing; existing grants lapse at their epoch's end."""
        self._standing.clear()
        self.stats.grants_dropped += self.subscriber.drop_expired(at_time)
