"""Client-side subscription renewal across epochs.

The epoch model (Section 2.1) makes every authorization a lease: "at the
end of an epoch, the subscriber will have to obtain a new authorization
permit (authorization key) to read events that match the subscription
filter in the next epoch."  ``RenewalManager`` automates that client
obligation:

- it tracks the filters a subscriber wants standing access to,
- renews each grant shortly before its epoch expires (a configurable
  lead time, so in-flight events spanning the boundary stay readable),
- and drops expired grants from the subscriber's key ring (grants inside
  the subscriber's post-expiry grace window are retained).

Renewals are also where a payment-based service would charge the
subscriber (Section 6); the manager counts them for exactly that reason.

The manager can be bound to either key source:

- a :class:`~repro.core.kdc.KDC` (or any object with its synchronous
  ``authorize`` signature): renewals complete inside :meth:`tick`.  A
  source that raises :class:`~repro.core.kdc.KDCUnavailableError`
  models an unreachable KDC -- the renewal is counted as a failure and
  retried on the next tick (degraded mode);
- an async client such as :class:`~repro.core.kdcclient.KDCClient`
  (``is_async_client = True``): :meth:`tick` *initiates* the renewal and
  the grant is installed from the client's completion callback, possibly
  several simulated RTTs (and replica failovers) later.  At most one
  renewal per standing subscription is in flight at a time.

Boundary renewals always target the *upcoming* epoch: the request pins
``min_epoch = current.epoch + 1``, so a tick landing exactly on
``expires_at`` (where float division could place the time a hair inside
the ending epoch) can never re-fetch the expiring grant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kdc import AuthorizationGrant, KDCUnavailableError
from repro.core.subscriber import Subscriber
from repro.siena.filters import Filter


@dataclass(frozen=True)
class RenewalPolicy:
    """How a subscriber keeps its grants fresh across epoch boundaries.

    One shared knob for every surface that owns a
    :class:`RenewalManager` -- the in-process :class:`repro.api.System`,
    the live :class:`repro.rtnet.LiveSystem`, and the raw
    :class:`repro.rtnet.RtSubscriber`:

    - ``lead``: renew this many seconds *before* a grant's epoch
      expires, so in-flight events spanning the boundary stay readable
      (maps to ``RenewalManager.renew_lead_time``);
    - ``grace``: keep an expired grant usable for this many seconds
      *after* its epoch ends, covering events sealed just before the
      boundary that arrive just after (maps to
      ``Subscriber.grace_period``).

    Both default to zero: renew exactly at the boundary, drop exactly at
    the boundary -- the strict reading of the paper's epoch model.
    """

    lead: float = 0.0
    grace: float = 0.0

    def __post_init__(self) -> None:
        if self.lead < 0:
            raise ValueError("renewal lead must be non-negative")
        if self.grace < 0:
            raise ValueError("renewal grace must be non-negative")


@dataclass
class _StandingSubscription:
    filters: Filter | list[Filter]
    publisher: str | None
    current_grant: AuthorizationGrant | None = None
    #: An async renewal request is outstanding for this subscription.
    pending: bool = False


@dataclass
class RenewalStats:
    """Counters a billing service (or a chaos test) would read."""

    renewals: int = 0
    keys_fetched: int = 0
    grants_dropped: int = 0
    #: Renewal attempts that failed (KDC unreachable / request exhausted).
    renewal_failures: int = 0
    #: Renewals that completed only after the old grant had expired --
    #: the subscriber crossed the boundary in degraded mode and relied on
    #: its grace window for old-epoch traffic.
    late_renewals: int = 0
    #: Renewals refused outright (revocation); the subscription is
    #: cancelled rather than retried.
    renewals_denied: int = 0

    @property
    def degraded(self) -> bool:
        """Whether any renewal ever failed or landed late."""
        return self.renewal_failures > 0 or self.late_renewals > 0


class RenewalManager:
    """Keeps a subscriber's grants fresh across epoch boundaries."""

    def __init__(
        self,
        subscriber: Subscriber,
        kdc,
        renew_lead_time: float = 0.0,
    ):
        if renew_lead_time < 0:
            raise ValueError("lead time must be non-negative")
        self.subscriber = subscriber
        self.kdc = kdc
        self.renew_lead_time = renew_lead_time
        self._async = bool(getattr(kdc, "is_async_client", False))
        self._standing: list[_StandingSubscription] = []
        self.stats = RenewalStats()

    def add_subscription(
        self,
        filters: Filter | list[Filter],
        at_time: float = 0.0,
        publisher: str | None = None,
    ) -> AuthorizationGrant | None:
        """Register a standing subscription and fetch its first grant.

        Returns the grant for a synchronous KDC; ``None`` when bound to
        an async client (the grant installs on request completion) or
        when the synchronous fetch failed (it will be retried by ticks).
        """
        standing = _StandingSubscription(filters, publisher)
        self._standing.append(standing)
        self._renew(standing, at_time, min_epoch=None)
        return standing.current_grant

    # -- renewal paths -------------------------------------------------------

    def _renew(
        self,
        standing: _StandingSubscription,
        at_time: float,
        min_epoch: int | None,
    ) -> bool:
        """Start (async) or perform (sync) one renewal; True if installed."""
        if self._async:
            self._renew_async(standing, at_time, min_epoch)
            return False
        try:
            grant = self.kdc.authorize(
                self.subscriber.subscriber_id,
                standing.filters,
                at_time=at_time,
                publisher=standing.publisher,
                min_epoch=min_epoch,
            )
        except KDCUnavailableError:
            self.stats.renewal_failures += 1
            return False
        except PermissionError:
            self._deny(standing)
            return False
        self._install(standing, grant, at_time)
        return True

    def _renew_async(
        self,
        standing: _StandingSubscription,
        at_time: float,
        min_epoch: int | None,
    ) -> None:
        standing.pending = True

        def on_grant(grant: AuthorizationGrant) -> None:
            standing.pending = False
            if standing not in self._standing:
                return  # cancelled while the request was in flight
            self._install(standing, grant, self.kdc.now())

        def on_error(error: Exception) -> None:
            standing.pending = False
            if standing not in self._standing:
                return
            if isinstance(error, PermissionError):
                self._deny(standing)
            else:
                self.stats.renewal_failures += 1  # next tick retries

        self.kdc.authorize(
            self.subscriber.subscriber_id,
            standing.filters,
            at_time=at_time,
            publisher=standing.publisher,
            min_epoch=min_epoch,
            on_grant=on_grant,
            on_error=on_error,
        )

    def _install(
        self,
        standing: _StandingSubscription,
        grant: AuthorizationGrant,
        completed_at: float,
    ) -> None:
        previous = standing.current_grant
        if previous is not None and completed_at >= previous.expires_at:
            self.stats.late_renewals += 1
        self.subscriber.add_grant(grant)
        standing.current_grant = grant
        self.stats.renewals += 1
        self.stats.keys_fetched += grant.key_count()

    def _deny(self, standing: _StandingSubscription) -> None:
        """Revoked: stop renewing this subscription (grants lapse)."""
        self.stats.renewals_denied += 1
        if standing in self._standing:
            self._standing.remove(standing)

    # -- scheduling ----------------------------------------------------------

    def next_renewal_at(self) -> float | None:
        """Earliest instant some standing grant wants renewing."""
        deadlines = [
            standing.current_grant.expires_at - self.renew_lead_time
            for standing in self._standing
            if standing.current_grant is not None
        ]
        return min(deadlines) if deadlines else None

    def tick(self, at_time: float) -> int:
        """Advance the clock: renew due grants, drop expired ones.

        Returns how many renewals completed during this tick (async
        initiations count on completion, not here).  Designed to be
        driven by a timer, an event loop, or a simulation's virtual
        clock.
        """
        renewed = 0
        for standing in list(self._standing):
            grant = standing.current_grant
            due = (
                grant is None
                or at_time >= grant.expires_at - self.renew_lead_time
            )
            if due and not standing.pending:
                # Boundary renewals always target the upcoming epoch.
                min_epoch = None if grant is None else grant.epoch + 1
                if self._renew(standing, at_time, min_epoch):
                    renewed += 1
        self.stats.grants_dropped += self.subscriber.drop_expired(at_time)
        return renewed

    def cancel_all(self, at_time: float) -> None:
        """Stop renewing; existing grants lapse at their epoch's end."""
        self._standing.clear()
        self.stats.grants_dropped += self.subscriber.drop_expired(at_time)
