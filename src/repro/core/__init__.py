"""PSGuard core: key management by hierarchical key derivation.

PSGuard (Section 3) disassociates keys from subscriber groups: an
*authorization key* ``K(f)`` is attached to a subscription filter and an
*encryption key* ``K(e)`` to an event, both embedded in a common key space
so that ``K(e)`` is efficiently derivable from ``K(f)`` **iff** ``e``
matches ``f``.  Key-management cost is therefore independent of the number
of subscribers.

Key spaces (one per matching type, Section 3 and technical report [1]):

- :mod:`repro.core.nakt` -- numeric attribute key tree (range matching);
- :mod:`repro.core.category` -- category/ontology subsumption matching;
- :mod:`repro.core.strings` -- string prefix/suffix matching;
- :mod:`repro.core.topics` -- plain topic (keyword) matching;
- :mod:`repro.core.composite` -- ``AND``/``OR`` combinations.

Services:

- :mod:`repro.core.kdc` -- the stateless key distribution center with
  epoch-based rekeying and per-publisher topic keys;
- :mod:`repro.core.envelope` -- event sealing/opening (AES-128-CBC);
- :mod:`repro.core.publisher` / :mod:`repro.core.subscriber` -- client
  engines;
- :mod:`repro.core.cache` -- the key cache of Section 3.2.3.
"""

from repro.core.cache import KeyCache
from repro.core.category import CategoryKeySpace, CategoryTree
from repro.core.composite import CompositeKeySpace
from repro.core.envelope import SealedEvent, open_event, seal_event
from repro.core.epochs import AdaptiveEpochPolicy, StaticEpochPolicy
from repro.core.kdc import (
    KDC,
    AuthorizationDenied,
    AuthorizationGrant,
    KDCUnavailableError,
)
from repro.core.kdcclient import ClientRetryPolicy, KDCClient
from repro.core.kdcservice import KDCCluster, KDCReplica
from repro.core.ktid import KTID
from repro.core.nakt import NumericKeySpace
from repro.core.publisher import Publisher
from repro.core.renewal import RenewalManager
from repro.core.strings import StringKeySpace
from repro.core.subscriber import Subscriber
from repro.core.topics import TopicKeySpace
from repro.core.wire import (
    decode_grant,
    decode_sealed_event,
    encode_grant,
    encode_sealed_event,
)

__all__ = [
    "KDC",
    "KTID",
    "AdaptiveEpochPolicy",
    "AuthorizationDenied",
    "AuthorizationGrant",
    "CategoryKeySpace",
    "CategoryTree",
    "ClientRetryPolicy",
    "CompositeKeySpace",
    "KDCClient",
    "KDCCluster",
    "KDCReplica",
    "KDCUnavailableError",
    "KeyCache",
    "NumericKeySpace",
    "Publisher",
    "RenewalManager",
    "SealedEvent",
    "StaticEpochPolicy",
    "StringKeySpace",
    "Subscriber",
    "TopicKeySpace",
    "decode_grant",
    "decode_sealed_event",
    "encode_grant",
    "encode_sealed_event",
    "open_event",
    "seal_event",
]
