"""Category / ontology key space.

Category matching (Sections 3, 5.2): attribute values are drawn from a
known category tree (an ontology), and a subscription for a category ``c``
matches every event tagged with ``c`` or any descendant of ``c`` --
subsumption matching.

The key space mirrors the ontology: each category's key is derived from its
parent's with ``K(child) = H(K(parent) || label(child))``, so an
authorization key for ``c`` derives exactly the keys of ``c``'s subtree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.crypto.hashes import H
from repro.core.keyspace import derive_root_key

#: Nested-mapping description of an ontology: ``{"car": {"sedan": {}}}``.
CategorySpec = Mapping[str, "CategorySpec"]


@dataclass
class CategoryTree:
    """An ontology: a rooted tree of category labels.

    Labels must be unique across the whole tree (standard for ontologies;
    lets events carry a bare label instead of a full path).
    """

    root_label: str
    _children: dict[str, list[str]] = field(default_factory=dict)
    _parent: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_spec(cls, root_label: str, spec: CategorySpec) -> "CategoryTree":
        """Build a tree from a nested mapping of child labels."""
        tree = cls(root_label)
        tree._children[root_label] = []

        def add(parent: str, children: CategorySpec) -> None:
            for label, grandchildren in children.items():
                tree.add_category(label, parent)
                add(label, grandchildren)

        add(root_label, spec)
        return tree

    def add_category(self, label: str, parent: str) -> None:
        """Insert *label* as a child of *parent*."""
        if label in self._children:
            raise ValueError(f"duplicate category label {label!r}")
        if parent not in self._children:
            raise KeyError(f"unknown parent category {parent!r}")
        self._children[label] = []
        self._children[parent].append(label)
        self._parent[label] = parent

    def __contains__(self, label: str) -> bool:
        return label in self._children

    def __len__(self) -> int:
        return len(self._children)

    def children(self, label: str) -> list[str]:
        """Immediate sub-categories of *label*."""
        return list(self._children[label])

    def path(self, label: str) -> tuple[str, ...]:
        """Labels from the root down to *label*, inclusive."""
        if label not in self._children:
            raise KeyError(f"unknown category {label!r}")
        reversed_path = [label]
        while label in self._parent:
            label = self._parent[label]
            reversed_path.append(label)
        return tuple(reversed(reversed_path))

    def subsumes(self, ancestor: str, descendant: str) -> bool:
        """Whether *ancestor* equals or is an ancestor of *descendant*."""
        ancestor_path = self.path(ancestor)
        descendant_path = self.path(descendant)
        return descendant_path[: len(ancestor_path)] == ancestor_path

    def depth(self, label: str) -> int:
        """Depth of *label* (root at 0)."""
        return len(self.path(label)) - 1

    def height(self) -> int:
        """Height of the tree."""
        return max(self.depth(label) for label in self._children)

    def labels(self) -> Iterator[str]:
        """All labels, in insertion order (root first)."""
        return iter(self._children)

    # -- path-string form (used for in-network routing) ---------------------

    def path_string(self, label: str) -> str:
        """Slash-joined root path with a trailing slash.

        Category subsumption becomes string *prefix* matching on this
        form, which plain Siena brokers evaluate natively:
        ``path_string(ancestor)`` is a prefix of ``path_string(label)``
        iff ``ancestor`` subsumes ``label``.
        """
        return "/".join(self.path(label)) + "/"

    def label_of(self, value: str) -> str:
        """Resolve a bare label or a path string back to its label."""
        if value in self._children:
            return value
        label = value.rstrip("/").rsplit("/", 1)[-1]
        if label not in self._children:
            raise KeyError(f"unknown category {value!r}")
        if self.path_string(label) != (
            value if value.endswith("/") else value + "/"
        ):
            raise KeyError(f"path {value!r} does not match the ontology")
        return label

    def leaves(self) -> list[str]:
        """Labels with no sub-categories."""
        return [label for label, kids in self._children.items() if not kids]


@dataclass(frozen=True)
class CategoryKeySpace:
    """Hierarchical key derivation over a :class:`CategoryTree`."""

    name: str
    tree: CategoryTree

    def root_key(self, topic_key: bytes) -> bytes:
        """Root key of this attribute's key tree."""
        return derive_root_key(topic_key, self.name)

    def _derive_down(self, key: bytes, labels: tuple[str, ...]) -> tuple[bytes, int]:
        for label in labels:
            key = H(key + label.encode("utf-8"))
        return key, len(labels)

    def node_key(self, topic_key: bytes, category: str) -> bytes:
        """Key of a category node, derived from the topic key (KDC side)."""
        path = self.tree.path(category)
        key, _ = self._derive_down(self.root_key(topic_key), path)
        return key

    def encryption_key(self, topic_key: bytes, category: str) -> tuple[str, bytes]:
        """Encryption key for an event tagged with *category*."""
        return category, self.node_key(topic_key, category)

    def authorization_key(
        self, topic_key: bytes, category: str
    ) -> tuple[str, bytes]:
        """Authorization key for a subscription on *category*'s subtree."""
        return category, self.node_key(topic_key, category)

    def derive_encryption_key(
        self, authorization: tuple[str, bytes], event_category: str
    ) -> tuple[bytes, int]:
        """Subscriber-side derivation; raises when subsumption fails.

        Returns ``(key, hash_ops)``.
        """
        granted_category, granted_key = authorization
        if not self.tree.subsumes(granted_category, event_category):
            raise ValueError(
                f"category {granted_category!r} does not subsume "
                f"{event_category!r}"
            )
        granted_path = self.tree.path(granted_category)
        full_path = self.tree.path(event_category)
        return self._derive_down(granted_key, full_path[len(granted_path):])
