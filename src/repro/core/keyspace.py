"""Shared machinery for hierarchical key spaces.

Every key space embeds its elements in a tree whose node keys satisfy the
hierarchical-derivation property (Section 3.1):

- given a parent key, all children keys are easily derived
  (``K(xi||b) = H(K(xi) || b)``);
- deriving an ancestor or sibling key is computationally infeasible
  (one-wayness of ``H``).
"""

from __future__ import annotations

from repro.crypto.hashes import H
from repro.crypto.prf import KH
from repro.core.ktid import KTID


def derive_root_key(topic_key: bytes, attribute_name: str) -> bytes:
    """Root key of an attribute's key tree: ``K_root = KH_{K(w)}(attr)``.

    E.g. ``K_root(age) = KH_{K(cancerTrail)}("age")``.
    """
    return KH(topic_key, attribute_name.encode("utf-8"))


def derive_along_path(key: bytes, digits: tuple[int, ...]) -> bytes:
    """Walk *digits* downward from *key*: repeated ``H(parent || digit)``."""
    for digit in digits:
        key = H(key + bytes([digit]))
    return key


def derive_node_key(root_key: bytes, ktid: KTID) -> bytes:
    """Key of the node named by *ktid*, derived from the tree root."""
    return derive_along_path(root_key, ktid.digits)


def derive_between(
    ancestor_key: bytes, ancestor: KTID, descendant: KTID
) -> tuple[bytes, int]:
    """Derive *descendant*'s key from *ancestor*'s key.

    Returns ``(key, hash_operations)`` so callers can account derivation
    cost in units of ``H`` (the cost model of Section 3.1).  Raises
    :class:`ValueError` when *ancestor* is not a prefix of *descendant* --
    the computationally-infeasible direction.
    """
    suffix = descendant.suffix_after(ancestor)
    return derive_along_path(ancestor_key, suffix), len(suffix)
