"""Wire serialization for PSGuard messages.

A deployable system ships grants from the KDC to subscribers and sealed
events from publishers into the broker network as byte strings.  This
module provides a compact, versioned binary format for both, built on the
event encoding of :mod:`repro.siena.events`.

Security note: these encodings provide *no* integrity or confidentiality
of their own.  Grants must travel over an authenticated confidential
channel to their subscriber (e.g. TLS to the KDC); sealed events are safe
to expose -- their secret attributes are already encrypted, which is the
whole point.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager

from repro.errors import FrameError
from repro.core.composite import AuthorizationComponent
from repro.core.envelope import Lock, SealedEvent
from repro.core.kdc import AuthorizationGrant, ClauseGrant
from repro.core.ktid import KTID
from repro.siena.events import Event
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op

_MAGIC_GRANT = b"PSG1"
#: Current sealed-event format: a flags byte after the magic, carrying an
#: optional envelope-metadata block (origin + sequence) when bit 0 is set.
_MAGIC_EVENT = b"PSE2"
#: Legacy sealed-event format (no flags byte); still decoded.
_MAGIC_EVENT_V1 = b"PSE1"

_EVENT_FLAG_ENVELOPE = 0x01

_ELEMENT_KTID = 0
_ELEMENT_TEXT = 1


@contextmanager
def _decoding(what: str):
    """Normalize low-level decode failures into :class:`FrameError`.

    Framed network input must never crash a broker with an unexpected
    exception type: a short buffer raises ``struct.error`` (or
    ``IndexError`` on a direct byte read), corrupt text raises
    ``UnicodeDecodeError``, and an unknown operator name raises
    ``KeyError``.  All of them mean the same thing to a receiver --
    "this buffer is not a valid <what>" -- so they all surface as
    :class:`~repro.errors.FrameError` (a :class:`ValueError` subclass,
    so handlers written before the hierarchy existed keep catching it).
    """
    try:
        yield
    except (struct.error, IndexError) as exc:
        raise FrameError(f"truncated {what}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise FrameError(f"corrupt text in {what}: {exc}") from exc
    except KeyError as exc:
        raise FrameError(f"unknown name in {what}: {exc}") from exc


def _pack_bytes(data: bytes) -> bytes:
    return struct.pack(">I", len(data)) + data


def _unpack_bytes(data: bytes, offset: int) -> tuple[bytes, int]:
    (length,) = struct.unpack_from(">I", data, offset)
    start = offset + 4
    chunk = data[start: start + length]
    if len(chunk) != length:
        raise FrameError("truncated field")
    return chunk, start + length


def _pack_text(text: str) -> bytes:
    return _pack_bytes(text.encode("utf-8"))


def _unpack_text(data: bytes, offset: int) -> tuple[str, int]:
    raw, offset = _unpack_bytes(data, offset)
    return raw.decode("utf-8"), offset


def _pack_element(element: object) -> bytes:
    if isinstance(element, KTID):
        return bytes([_ELEMENT_KTID]) + _pack_bytes(element.to_bytes())
    if isinstance(element, str):
        return bytes([_ELEMENT_TEXT]) + _pack_text(element)
    raise TypeError(f"unserializable element {element!r}")


def _unpack_element(data: bytes, offset: int) -> tuple[object, int]:
    tag = data[offset]
    offset += 1
    if tag == _ELEMENT_KTID:
        raw, offset = _unpack_bytes(data, offset)
        return KTID.from_bytes(raw), offset
    if tag == _ELEMENT_TEXT:
        return _unpack_text(data, offset)
    raise FrameError(f"unknown element tag {tag}")


# -- filters -------------------------------------------------------------------


def _pack_filter(subscription: Filter) -> bytes:
    parts = [struct.pack(">H", len(subscription.constraints))]
    for constraint in subscription:
        parts.append(_pack_text(constraint.name))
        parts.append(_pack_text(constraint.op.name))
        if constraint.value is None:
            parts.append(bytes([0]))
        elif isinstance(constraint.value, bool):
            raise TypeError("boolean constraint values are not supported")
        elif isinstance(constraint.value, int):
            parts.append(bytes([1]) + struct.pack(">q", constraint.value))
        elif isinstance(constraint.value, float):
            parts.append(bytes([2]) + struct.pack(">d", constraint.value))
        elif isinstance(constraint.value, str):
            parts.append(bytes([3]) + _pack_text(constraint.value))
        else:
            raise TypeError(
                f"unserializable constraint value {constraint.value!r}"
            )
    return b"".join(parts)


def _unpack_filter(data: bytes, offset: int) -> tuple[Filter, int]:
    (count,) = struct.unpack_from(">H", data, offset)
    offset += 2
    constraints = []
    for _ in range(count):
        name, offset = _unpack_text(data, offset)
        op_name, offset = _unpack_text(data, offset)
        tag = data[offset]
        offset += 1
        value: object
        if tag == 0:
            value = None
        elif tag == 1:
            (value,) = struct.unpack_from(">q", data, offset)
            offset += 8
        elif tag == 2:
            (value,) = struct.unpack_from(">d", data, offset)
            offset += 8
        elif tag == 3:
            value, offset = _unpack_text(data, offset)
        else:
            raise FrameError(f"unknown value tag {tag}")
        constraints.append(Constraint(name, Op[op_name], value))
    return Filter(constraints), offset


def encode_filter(subscription: Filter) -> bytes:
    """Serialize one :class:`~repro.siena.filters.Filter`.

    The encoding is the same one grants embed per clause; exposed on its
    own so network control frames (SUBSCRIBE/UNSUBSCRIBE in
    :mod:`repro.rtnet.frames`) can carry filters as byte strings.
    """
    return _pack_filter(subscription)


def decode_filter(data: bytes) -> Filter:
    """Inverse of :func:`encode_filter`; rejects trailing bytes."""
    with _decoding("filter"):
        subscription, offset = _unpack_filter(data, 0)
    if offset != len(data):
        raise FrameError("trailing bytes after filter")
    return subscription


# -- grants --------------------------------------------------------------------


def encode_grant(grant: AuthorizationGrant) -> bytes:
    """Serialize an authorization grant for transport to its subscriber."""
    parts = [
        _MAGIC_GRANT,
        _pack_text(grant.subscriber),
        _pack_text(grant.topic),
        struct.pack(">qdI", grant.epoch, grant.expires_at,
                    grant.hash_operations),
        struct.pack(">H", len(grant.clauses)),
    ]
    for clause in grant.clauses:
        parts.append(_pack_filter(clause.clause))
        parts.append(struct.pack(">H", len(clause.components)))
        for component in clause.components:
            parts.append(_pack_text(component.attribute))
            parts.append(_pack_element(component.element))
            parts.append(_pack_bytes(component.key))
    return b"".join(parts)


def decode_grant(data: bytes) -> AuthorizationGrant:
    """Inverse of :func:`encode_grant`."""
    if data[:4] != _MAGIC_GRANT:
        raise FrameError("not a serialized grant")
    with _decoding("grant"):
        offset = 4
        subscriber, offset = _unpack_text(data, offset)
        topic, offset = _unpack_text(data, offset)
        epoch, expires_at, hash_operations = struct.unpack_from(
            ">qdI", data, offset
        )
        offset += 20
        (clause_count,) = struct.unpack_from(">H", data, offset)
        offset += 2
        clauses = []
        for _ in range(clause_count):
            clause_filter, offset = _unpack_filter(data, offset)
            (component_count,) = struct.unpack_from(">H", data, offset)
            offset += 2
            components = []
            for _ in range(component_count):
                attribute, offset = _unpack_text(data, offset)
                element, offset = _unpack_element(data, offset)
                key, offset = _unpack_bytes(data, offset)
                components.append(
                    AuthorizationComponent(attribute, element, key)
                )
            clauses.append(
                ClauseGrant(clause_filter, topic, tuple(components))
            )
    if offset != len(data):
        raise FrameError("trailing bytes after grant")
    return AuthorizationGrant(
        subscriber=subscriber,
        topic=topic,
        epoch=epoch,
        expires_at=expires_at,
        clauses=tuple(clauses),
        hash_operations=hash_operations,
    )


# -- sealed events --------------------------------------------------------------


def encode_sealed_event(sealed: SealedEvent) -> bytes:
    """Serialize a sealed event for transport through the broker network."""
    stamped = sealed.origin is not None and sealed.sequence is not None
    parts = [
        _MAGIC_EVENT,
        bytes([_EVENT_FLAG_ENVELOPE if stamped else 0]),
    ]
    if stamped:
        parts.append(_pack_text(sealed.origin))
        parts.append(struct.pack(">q", sealed.sequence))
    parts += [
        bytes([1 if sealed.direct else 0]),
        _pack_bytes(sealed.routable.to_bytes()),
        struct.pack(">H", len(sealed.elements)),
    ]
    for name in sorted(sealed.elements):
        parts.append(_pack_text(name))
        parts.append(_pack_element(sealed.elements[name]))
    parts.append(struct.pack(">H", len(sealed.locks)))
    for lock in sealed.locks:
        parts.append(struct.pack(">H", len(lock.attributes)))
        for attribute in lock.attributes:
            parts.append(_pack_text(attribute))
        parts.append(_pack_bytes(lock.wrapped))
    parts.append(_pack_bytes(sealed.ciphertext))
    return b"".join(parts)


def decode_sealed_event(data: bytes) -> SealedEvent:
    """Inverse of :func:`encode_sealed_event` (``PSE1`` still accepted)."""
    origin: str | None = None
    sequence: int | None = None
    with _decoding("sealed event"):
        if data[:4] == _MAGIC_EVENT:
            offset = 4
            flags = data[offset]
            offset += 1
            if flags & ~_EVENT_FLAG_ENVELOPE:
                raise FrameError(f"unknown sealed-event flags {flags:#x}")
            if flags & _EVENT_FLAG_ENVELOPE:
                origin, offset = _unpack_text(data, offset)
                (sequence,) = struct.unpack_from(">q", data, offset)
                offset += 8
        elif data[:4] == _MAGIC_EVENT_V1:
            offset = 4  # legacy frame: no flags, no envelope metadata
        else:
            raise FrameError("not a serialized sealed event")
        direct = bool(data[offset])
        offset += 1
        routable_raw, offset = _unpack_bytes(data, offset)
        routable = Event.from_bytes(routable_raw)
        (element_count,) = struct.unpack_from(">H", data, offset)
        offset += 2
        elements = {}
        for _ in range(element_count):
            name, offset = _unpack_text(data, offset)
            elements[name], offset = _unpack_element(data, offset)
        (lock_count,) = struct.unpack_from(">H", data, offset)
        offset += 2
        locks = []
        for _ in range(lock_count):
            (attribute_count,) = struct.unpack_from(">H", data, offset)
            offset += 2
            attributes = []
            for _ in range(attribute_count):
                attribute, offset = _unpack_text(data, offset)
                attributes.append(attribute)
            wrapped, offset = _unpack_bytes(data, offset)
            locks.append(Lock(tuple(attributes), wrapped))
        ciphertext, offset = _unpack_bytes(data, offset)
    if offset != len(data):
        raise FrameError("trailing bytes after sealed event")
    return SealedEvent(
        routable,
        elements,
        tuple(locks),
        ciphertext,
        direct,
        origin=origin,
        sequence=sequence,
    )
