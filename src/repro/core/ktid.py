"""Key tree identifiers (ktids).

A ktid names one element of a hierarchical key tree as the string of branch
digits on the path from the root (Section 3.1, Figure 1).  For a binary
NAKT over ``R = (0, 31)`` with least count 4, the value 22 maps to
``ktid(22) = 101``.  Ktids double as the routing labels ("tokens") of the
secure content-based routing layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, order=True)
class KTID:
    """An element of an ``arity``-ary key tree, identified by branch digits.

    The empty digit tuple names the root (the paper's Ø label).
    """

    digits: tuple[int, ...] = ()
    arity: int = 2

    def __post_init__(self) -> None:
        if self.arity < 2:
            raise ValueError(f"tree arity must be >= 2, got {self.arity}")
        if any(not 0 <= digit < self.arity for digit in self.digits):
            raise ValueError(
                f"digits {self.digits} out of range for arity {self.arity}"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def root(cls, arity: int = 2) -> "KTID":
        """The root identifier Ø."""
        return cls((), arity)

    @classmethod
    def from_index(cls, index: int, depth: int, arity: int = 2) -> "KTID":
        """The ktid of the *index*-th node (left to right) at *depth*.

        >>> KTID.from_index(5, 3).digits
        (1, 0, 1)
        """
        if depth < 0:
            raise ValueError("depth must be non-negative")
        if not 0 <= index < arity**depth:
            raise ValueError(
                f"index {index} out of range for depth {depth}, arity {arity}"
            )
        digits = []
        for _ in range(depth):
            index, digit = divmod(index, arity)
            digits.append(digit)
        return cls(tuple(reversed(digits)), arity)

    @classmethod
    def parse(cls, text: str, arity: int = 2) -> "KTID":
        """Parse a digit string such as ``"101"`` (empty string = root)."""
        return cls(tuple(int(ch) for ch in text), arity)

    # -- structure -------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Distance from the root (number of digits)."""
        return len(self.digits)

    @property
    def index(self) -> int:
        """Left-to-right position of this node within its depth level."""
        value = 0
        for digit in self.digits:
            value = value * self.arity + digit
        return value

    def child(self, digit: int) -> "KTID":
        """The *digit*-th child of this node."""
        if not 0 <= digit < self.arity:
            raise ValueError(f"child digit {digit} out of range")
        return KTID(self.digits + (digit,), self.arity)

    def parent(self) -> "KTID":
        """The parent node; raises at the root."""
        if not self.digits:
            raise ValueError("the root ktid has no parent")
        return KTID(self.digits[:-1], self.arity)

    def ancestors(self) -> Iterator["KTID"]:
        """All proper ancestors, root first."""
        for depth in range(len(self.digits)):
            yield KTID(self.digits[:depth], self.arity)

    def is_prefix_of(self, other: "KTID") -> bool:
        """Whether this node is *other* or an ancestor of *other*.

        Subscription matching (Section 3.1): a subscriber holding the key
        for ``ktid_phi`` can derive the key for ``ktid_alpha`` iff
        ``ktid_phi`` is a prefix of ``ktid_alpha``.
        """
        if self.arity != other.arity or len(self.digits) > len(other.digits):
            return False
        return other.digits[: len(self.digits)] == self.digits

    def suffix_after(self, prefix: "KTID") -> tuple[int, ...]:
        """The digits of this ktid below *prefix*; raises if not a prefix."""
        if not prefix.is_prefix_of(self):
            raise ValueError(f"{prefix} is not a prefix of {self}")
        return self.digits[len(prefix.digits):]

    # -- encodings -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Wire encoding: arity, depth, then one byte per digit."""
        if self.arity > 255 or len(self.digits) > 255:
            raise ValueError("ktid too large for wire encoding")
        return bytes([self.arity, len(self.digits), *self.digits])

    @classmethod
    def from_bytes(cls, data: bytes) -> "KTID":
        """Inverse of :meth:`to_bytes`."""
        if len(data) < 2:
            raise ValueError("truncated ktid encoding")
        arity, depth = data[0], data[1]
        digits = tuple(data[2: 2 + depth])
        if len(digits) != depth:
            raise ValueError("truncated ktid digits")
        return cls(digits, arity)

    def __str__(self) -> str:
        return "".join(str(digit) for digit in self.digits) or "Ø"

    def __repr__(self) -> str:
        return f"KTID({str(self)}, arity={self.arity})"
