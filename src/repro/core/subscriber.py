"""Subscriber-side engine.

A subscriber accumulates :class:`~repro.core.kdc.AuthorizationGrant`\\ s and
opens incoming sealed events with them.  Per Section 3.1, opening an event
means: check that some granted element is an ancestor of the event's
element (the match test), derive the component leaf key down the tree
(``H`` per level, via the key cache of Section 3.2.3), combine components,
and decrypt.

A sealed event that matches none of the subscriber's grants is
*cryptographically* unreadable -- :meth:`Subscriber.receive` returns
``None``, and no amount of local computation would help (one-wayness of
``H``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cache import KeyCache
from repro.core.category import CategoryKeySpace
from repro.core.composite import AuthorizationComponent
from repro.core.derive import cache_namespace, cached_walk, element_path, value_path
from repro.core.envelope import OpenResult, SealedEvent, open_event
from repro.core.kdc import TOPIC_COMPONENT, AuthorizationGrant, ClauseGrant
from repro.core.ktid import KTID
from repro.core.nakt import NumericKeySpace
from repro.core.strings import StringKeySpace
from repro.recovery.dedup import DedupWindow


@dataclass
class SubscriberStats:
    """Cost counters for the event-processing experiments."""

    events_received: int = 0
    events_opened: int = 0
    events_unreadable: int = 0
    hash_operations: int = 0
    decrypt_operations: int = 0
    #: Opens that only succeeded because an expired grant was still
    #: inside the post-expiry grace window (degraded-mode indicator).
    grace_opens: int = 0
    #: Stamped events dropped by the end-to-end dedup window because the
    #: same (origin, sequence) pair was already processed -- at-least-once
    #: transport retries surfacing at the edge, made invisible.
    duplicates_suppressed: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class Subscriber:
    """A subscribing principal holding authorization grants.

    *grace_period* keeps an expired grant usable for that many seconds
    past its epoch's end.  The grant's keys still only open events sealed
    *in its own epoch*, so grace does not extend read access to new
    events; it keeps in-flight old-epoch events decryptable when delivery
    (or a KDC outage delaying the renewal) straddles the boundary.

    *dedup_window* sizes the bounded end-to-end duplicate filter: events
    stamped with publisher envelope metadata (origin + sequence, see
    :class:`~repro.core.envelope.SealedEvent`) are suppressed when the
    same pair arrives again -- the exactly-once edge over an
    at-least-once transport.  Memory is at most *dedup_window* sequence
    numbers per publisher; an event arriving more than *dedup_window*
    publications behind that publisher's newest is suppressed as stale
    (the safe direction).  ``0`` disables the filter; unstamped events
    (sealed directly via :func:`~repro.core.envelope.seal_event`) always
    bypass it.
    """

    def __init__(
        self,
        subscriber_id: str,
        cache_bytes: int = 64 * 1024,
        grace_period: float = 0.0,
        dedup_window: int = 1024,
    ):
        if grace_period < 0:
            raise ValueError("grace period must be non-negative")
        self.subscriber_id = subscriber_id
        self.grace_period = grace_period
        self.grants: list[AuthorizationGrant] = []
        self.cache = KeyCache(cache_bytes)
        self.dedup = DedupWindow(window=dedup_window) if dedup_window else None
        self.stats = SubscriberStats()

    # -- grant management -----------------------------------------------------

    def add_grant(self, grant: AuthorizationGrant) -> None:
        """Install a grant obtained from the KDC."""
        if grant.subscriber != self.subscriber_id:
            raise ValueError(
                f"grant was issued to {grant.subscriber!r}, "
                f"not {self.subscriber_id!r}"
            )
        self.grants.append(grant)

    def active_grants(self, at_time: float = 0.0) -> list[AuthorizationGrant]:
        """Grants usable at *at_time* (epoch unexpired, or within grace)."""
        return [
            g
            for g in self.grants
            if at_time < g.expires_at + self.grace_period
        ]

    def drop_expired(self, at_time: float) -> int:
        """Discard expired grants; returns how many were dropped."""
        before = len(self.grants)
        self.grants = self.active_grants(at_time)
        return before - len(self.grants)

    def key_count(self, at_time: float = 0.0) -> int:
        """Total keys held across active grants (Figure 3's metric)."""
        return sum(g.key_count() for g in self.active_grants(at_time))

    # -- event processing -------------------------------------------------------

    def receive(
        self,
        sealed: SealedEvent,
        schema_lookup,
        at_time: float = 0.0,
    ) -> OpenResult | None:
        """Attempt to open *sealed*; ``None`` when no active grant matches.

        *schema_lookup* maps a topic name to its
        :class:`~repro.core.composite.CompositeKeySpace` (usually
        ``kdc.config_for(topic).schema`` relayed out of band -- schemas are
        public configuration).
        """
        self.stats.events_received += 1
        if (
            self.dedup is not None
            and sealed.origin is not None
            and sealed.sequence is not None
            and self.dedup.seen(sealed.origin, sealed.sequence)
        ):
            self.stats.duplicates_suppressed += 1
            return None
        topic = sealed.routable.get("topic")
        for grant in self.active_grants(at_time):
            if grant.topic != topic:
                continue
            schema = schema_lookup(grant.topic)
            for clause_grant in grant.clauses:
                result = self._try_clause(sealed, schema, grant, clause_grant)
                if result is not None:
                    self.stats.events_opened += 1
                    self.stats.hash_operations += result.hash_operations
                    self.stats.decrypt_operations += result.decrypt_operations
                    if at_time >= grant.expires_at:
                        self.stats.grace_opens += 1
                    return result
        self.stats.events_unreadable += 1
        return None

    def _try_clause(
        self,
        sealed: SealedEvent,
        schema,
        grant: AuthorizationGrant,
        clause_grant: ClauseGrant,
    ) -> OpenResult | None:
        # Plaintext constraints on NON-securable attributes must hold on the
        # routable part (e.g. publisher identity, auxiliary routing labels).
        # Securable constraints are enforced cryptographically below: the
        # grant's cover element must be an ancestor of the event's element,
        # which *is* the matching semantics (range containment, category
        # subsumption, string prefix) -- a plain EQ test here would wrongly
        # reject e.g. a category grant covering a descendant leaf.
        securable = schema.attribute_names()
        for constraint in clause_grant.clause:
            if constraint.name == "topic" or constraint.name in securable:
                continue
            if not constraint.matches(sealed.routable):
                return None
        for lock in sealed.locks:
            component_keys: dict[str, bytes] = {}
            hash_ops = 0
            for attribute in lock.attributes:
                derived = self._derive_component(
                    sealed, schema, grant, clause_grant, attribute
                )
                if derived is None:
                    break
                component_keys[attribute], ops = derived
                hash_ops += ops
            else:
                try:
                    return open_event(
                        sealed, schema, component_keys, hash_operations=hash_ops
                    )
                except ValueError:
                    continue
        return None

    def _derive_component(
        self,
        sealed: SealedEvent,
        schema,
        grant: AuthorizationGrant,
        clause_grant: ClauseGrant,
        attribute: str,
    ) -> tuple[bytes, int] | None:
        """Derive one component leaf key, or ``None`` when unauthorized."""
        event_element = sealed.elements.get(attribute)
        if event_element is None:
            return None
        if attribute == TOPIC_COMPONENT:
            for component in clause_grant.keys_for(TOPIC_COMPONENT):
                if component.element == event_element:
                    return component.key, 0
            return None

        space = schema.space_for(attribute)
        for component in clause_grant.keys_for(attribute):
            if not self._covers(space, component, event_element):
                continue
            namespace = cache_namespace(grant.topic, attribute, grant.epoch)
            key, ops = cached_walk(
                self.cache,
                namespace,
                element_path(space, component.element),
                component.key,
                value_path(space, event_element),
            )
            return key, ops
        return None

    @staticmethod
    def _covers(
        space, component: AuthorizationComponent, event_element: object
    ) -> bool:
        if isinstance(space, NumericKeySpace):
            return isinstance(component.element, KTID) and isinstance(
                event_element, KTID
            ) and component.element.is_prefix_of(event_element)
        if isinstance(space, CategoryKeySpace):
            return space.tree.subsumes(
                str(component.element), str(event_element)
            )
        if isinstance(space, StringKeySpace):
            return space.matches(str(component.element), str(event_element))
        return False
