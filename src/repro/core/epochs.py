"""Epoch policies: static and adaptive subscription epochs.

Section 3.1 ("Unsubscription by Rekeying"): authorizations are valid for
one time epoch; the KDC staggers epoch boundaries per topic to avoid
flash crowds and may "adaptively vary the length of the epoch on a
per-topic basis using the subscription history" (the paper defers the
policy's details).  This module supplies a concrete such policy:

- :class:`StaticEpochPolicy` -- the fixed epoch length of the base paper;
- :class:`AdaptiveEpochPolicy` -- exponential-moving-average of observed
  subscription inter-arrival times, targeting a configured number of
  renewals per epoch.  Hot topics get short epochs (tighter revocation,
  both bounded); cold topics get long epochs (less renewal traffic).

Epoch lengths are always quantized to a power-of-two multiple of the
base length so that a replica observing the same history computes the
same schedule without coordination (the statelessness requirement).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class StaticEpochPolicy:
    """The fixed epoch length of Section 2.1."""

    def __init__(self, epoch_length: float = 3600.0):
        if epoch_length <= 0:
            raise ValueError("epoch length must be positive")
        self.epoch_length = epoch_length

    def observe_subscription(self, at_time: float) -> None:
        """Static policy ignores history."""

    def current_length(self) -> float:
        """The (constant) epoch length."""
        return self.epoch_length


@dataclass
class AdaptiveEpochPolicy:
    """EMA-driven per-topic epoch sizing.

    ``target_renewals`` is how many subscription renewals the topic
    should see per epoch: the epoch length tracks
    ``target_renewals * mean_interarrival``, clamped to
    ``[base/max_scale, base*max_scale]`` and quantized to powers of two
    times the base so the schedule stays deterministic.
    """

    base_length: float = 3600.0
    target_renewals: float = 16.0
    smoothing: float = 0.2
    max_scale: int = 8
    _mean_interarrival: float | None = field(default=None, init=False)
    _last_subscription: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.base_length <= 0:
            raise ValueError("base length must be positive")
        if self.target_renewals <= 0:
            raise ValueError("target renewals must be positive")
        if not 0 < self.smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        if self.max_scale < 1:
            raise ValueError("max scale must be >= 1")

    def observe_subscription(self, at_time: float) -> None:
        """Feed one subscription arrival into the history."""
        if self._last_subscription is not None:
            gap = max(1e-9, at_time - self._last_subscription)
            if self._mean_interarrival is None:
                self._mean_interarrival = gap
            else:
                self._mean_interarrival += self.smoothing * (
                    gap - self._mean_interarrival
                )
        self._last_subscription = at_time

    def current_length(self) -> float:
        """The epoch length implied by the observed history."""
        if self._mean_interarrival is None:
            return self.base_length
        desired = self.target_renewals * self._mean_interarrival
        scale = desired / self.base_length
        clamped = min(float(self.max_scale), max(1.0 / self.max_scale, scale))
        quantized = 2.0 ** round(math.log2(clamped))
        return self.base_length * quantized
