"""Publisher-side engine.

A publisher obtains its (per-epoch, possibly per-publisher) topic keys from
the KDC and seals every outgoing event.  Component leaf keys are derived
through the key cache of Section 3.2.3 so that publications with temporal
locality (e.g. consecutive stock quotes) reuse most of the derivation path.

A publisher may carry an :class:`~repro.flow.AIMDRateLimiter`; publishes
beyond the adapted rate then raise :class:`~repro.flow.RateLimited`
*before* any sealing work is spent, and the caller decides whether to
retry later or shed.  Overload signals from downstream
(:meth:`Publisher.on_overload`) back the rate off multiplicatively.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.cache import KeyCache
from repro.core.category import CategoryKeySpace
from repro.core.envelope import SealedEvent, seal_event
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.core.strings import StringKeySpace
from repro.flow import AIMDRateLimiter, RateLimited
from repro.siena.events import Event


@dataclass
class PublisherStats:
    """Cost counters for the throughput/latency experiments."""

    events_sealed: int = 0
    events_rate_limited: int = 0
    hash_operations: int = 0
    encrypt_operations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class _CachingSchema:
    """A schema view whose component derivations use the publisher's cache."""

    def __init__(self, publisher: "Publisher", topic: str, schema):
        self.publisher = publisher
        self.topic = topic
        self.schema = schema
        self.attribute_names = schema.attribute_names
        self.space_for = schema.space_for

    def event_component(self, topic_key, attribute, value):
        return self.publisher._cached_component(
            self.topic, topic_key, self.schema, attribute, value
        )


class Publisher:
    """A publishing principal bound to one KDC.

    >>> from repro.core.composite import CompositeKeySpace
    >>> kdc = KDC(master_key=bytes(16))
    >>> kdc.register_topic("news", CompositeKeySpace({}))
    >>> publisher = Publisher("P", kdc)
    >>> sealed = publisher.publish(
    ...     Event({"topic": "news", "body": "hi"}, publisher="P"),
    ...     secret_attributes={"body"})
    >>> "body" in sealed.routable
    False
    """

    def __init__(
        self,
        publisher_id: str,
        kdc: KDC,
        cache_bytes: int = 64 * 1024,
        limiter: AIMDRateLimiter | None = None,
    ):
        self.publisher_id = publisher_id
        self.kdc = kdc
        self.cache = KeyCache(cache_bytes)
        #: Optional AIMD pacing; enforced at :meth:`publish`, adapted via
        #: :meth:`on_overload`.
        self.limiter = limiter
        self.stats = PublisherStats()
        self._topic_keys: dict[tuple[str, int], bytes] = {}
        self._schema_adapters: dict[str, "_CachingSchema"] = {}
        # Monotonic per-publisher sequence, stamped onto every sealed
        # event so subscribers can suppress at-least-once duplicates.
        self._next_sequence = 0

    # -- key acquisition ------------------------------------------------------

    def topic_key(self, topic: str, at_time: float = 0.0) -> bytes:
        """Fetch (and memoize for the epoch) the topic key from the KDC."""
        epoch = self.kdc.epoch_of(topic, at_time)
        cache_key = (topic, epoch)
        if cache_key not in self._topic_keys:
            self._topic_keys[cache_key] = self.kdc.issue_publisher_key(
                topic, self.publisher_id, at_time
            )
        return self._topic_keys[cache_key]

    # -- publication -----------------------------------------------------------

    def publish(
        self,
        event: Event,
        secret_attributes: set[str] | None = None,
        at_time: float = 0.0,
        extra_lock_subsets: list[tuple[str, ...]] | None = None,
    ) -> SealedEvent:
        """Seal *event* for dissemination.

        When *secret_attributes* is ``None``, every attribute named
        ``message``/``payload``/``body`` is treated as secret -- the
        conventional payload attributes of the paper's examples.

        With a bound limiter, publishes over the adapted rate raise
        :class:`~repro.flow.RateLimited` before any sealing work.
        """
        if self.limiter is not None and not self.limiter.try_acquire(at_time):
            self.stats.events_rate_limited += 1
            raise RateLimited(
                f"publisher {self.publisher_id!r} over its adapted rate "
                f"({self.limiter.rate:.1f} events/s); retry at "
                f"t={self.limiter.next_slot():.6f}"
            )
        topic = event.get("topic")
        if not isinstance(topic, str):
            raise ValueError("every publication must carry a string topic")
        if secret_attributes is None:
            secret_attributes = {
                name
                for name in event.attributes
                if name in ("message", "payload", "body")
            }
        topic_key = self.topic_key(topic, at_time)
        schema = self.kdc.config_for(topic).schema

        sealed = seal_event(
            event,
            self._caching_schema(topic, schema),
            topic_key,
            secret_attributes,
            extra_lock_subsets=extra_lock_subsets,
        )
        self.stats.events_sealed += 1
        self.stats.encrypt_operations += 1 if sealed.direct else 1 + len(
            sealed.locks
        )
        if self.limiter is not None:
            self.limiter.on_success()
        # Envelope metadata rides OUTSIDE the sealing step, so the
        # ciphertext is byte-identical to an unstamped publication.
        sequence = self._next_sequence
        self._next_sequence += 1
        return replace(
            sealed, origin=self.publisher_id, sequence=sequence
        )

    def on_overload(self, at_time: float = 0.0) -> None:
        """Feed a downstream overload signal into the rate limiter."""
        if self.limiter is not None:
            self.limiter.on_overload(at_time)

    def _caching_schema(self, topic, schema):
        """Wrap *schema* so component derivations go through the key cache.

        One adapter per topic is built lazily and reused across publishes.
        """
        adapter = self._schema_adapters.get(topic)
        if adapter is None or adapter.schema is not schema:
            adapter = _CachingSchema(self, topic, schema)
            self._schema_adapters[topic] = adapter
        return adapter

    def _cached_component(self, topic, topic_key, schema, attribute, value):
        from repro.core.derive import cache_namespace, cached_walk, value_path

        space = schema.space_for(attribute)
        if isinstance(space, NumericKeySpace):
            element: object = space.ktid(value)
        elif isinstance(space, CategoryKeySpace):
            element = space.tree.label_of(str(value))
        elif isinstance(space, StringKeySpace):
            element = value
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown key space type {type(space).__name__}")

        namespace = cache_namespace(topic, attribute, topic_key)
        target = value_path(space, value)
        key, ops = cached_walk(
            self.cache, namespace, (), space.root_key(topic_key), target
        )
        self.stats.hash_operations += ops + (1 if ops else 0)  # +root KH
        if ops == 0:
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1
        return element, key
