"""Event sealing: end-to-end encryption of secret attributes.

An event splits into *routable* attributes (visible to brokers, possibly
tokenized) and *secret* attributes (encrypted with the event's encryption
key ``K(e)``, Section 3).  ``seal_event`` produces a :class:`SealedEvent`;
``open_event`` recovers the plaintext given key material that matches.

Lock structure
--------------
The event's securable attributes each contribute a component leaf key; the
event is locked under the **combined** key of all of them
(:func:`repro.core.composite.combine_keys`).  Subscribers whose filters do
not constrain some securable attribute hold that attribute's *root* key in
their grant, so they can still derive every component -- "no constraint"
is root-level authorization (see :mod:`repro.core.kdc`).

With a single securable attribute (the paper's experimental workloads) the
payload is encrypted directly under the leaf key, so subscriber cost is
exactly the paper's ``D + H * log2(phi_R)``.  With several attributes, or
when the publisher supplies extra lock subsets for disjunctive access, the
payload is encrypted once under a fresh content key which is then wrapped
under each lock key (hybrid envelope).
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field

from repro.crypto.cipher import decrypt, encrypt
from repro.crypto.hashes import KEY_BYTES
from repro.core.composite import CompositeKeySpace, combine_keys
from repro.siena.events import Event


@dataclass(frozen=True)
class Lock:
    """One way to open a sealed event.

    ``attributes`` names the securable attributes whose component keys must
    be combined; ``wrapped`` is the content key encrypted under that
    combination (empty for the direct single-lock fast path).
    """

    attributes: tuple[str, ...]
    wrapped: bytes = b""


@dataclass(frozen=True)
class SealedEvent:
    """An encrypted event as it travels through the pub-sub network."""

    routable: Event
    elements: dict[str, object]
    locks: tuple[Lock, ...]
    ciphertext: bytes
    direct: bool
    #: End-to-end delivery metadata, stamped by the publisher AFTER
    #: sealing: the publishing principal and its per-publisher monotonic
    #: sequence number.  Subscriber-side duplicate suppression keys on
    #: the pair.  Plain envelope framing, never an event attribute and
    #: never inside the ciphertext -- sealing (and therefore every
    #: ciphertext and decrypted stream) is byte-identical with and
    #: without it.  ``None`` on events sealed directly via
    #: :func:`seal_event`.
    origin: str | None = None
    sequence: int | None = None

    def wire_size(self) -> int:
        """Approximate on-the-wire size in bytes."""
        lock_bytes = sum(
            len(lock.wrapped) + sum(len(a) for a in lock.attributes) + 2
            for lock in self.locks
        )
        element_bytes = sum(
            len(name) + _element_size(element)
            for name, element in self.elements.items()
        )
        envelope_bytes = (
            len(self.origin) + 8 if self.origin is not None else 0
        )
        return (
            self.routable.wire_size()
            + element_bytes
            + lock_bytes
            + len(self.ciphertext)
            + envelope_bytes
        )

    # -- wire format -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Compact wire encoding, safe across process boundaries.

        Complements :func:`repro.core.wire.encode_sealed`'s framed
        transport form: this codec is self-contained (no frame header)
        and round-trips every field, including elements (string labels
        and :class:`~repro.core.ktid.KTID` s) and the delivery envelope.
        """
        parts = []
        routable = self.routable.to_bytes()
        parts.append(struct.pack(">I", len(routable)))
        parts.append(routable)
        parts.append(struct.pack(">H", len(self.elements)))
        for name in sorted(self.elements):
            element = self.elements[name]
            encoded_name = name.encode("utf-8")
            parts.append(struct.pack(">H", len(encoded_name)))
            parts.append(encoded_name)
            if isinstance(element, str):
                payload = element.encode("utf-8")
                parts.append(struct.pack(">BI", 0, len(payload)))
            elif hasattr(element, "to_bytes") and hasattr(element, "digits"):
                payload = element.to_bytes()
                parts.append(struct.pack(">BI", 1, len(payload)))
            else:
                raise TypeError(f"unencodable element {element!r}")
            parts.append(payload)
        parts.append(struct.pack(">H", len(self.locks)))
        for lock in self.locks:
            parts.append(struct.pack(">H", len(lock.attributes)))
            for attribute in lock.attributes:
                encoded = attribute.encode("utf-8")
                parts.append(struct.pack(">H", len(encoded)))
                parts.append(encoded)
            parts.append(struct.pack(">I", len(lock.wrapped)))
            parts.append(lock.wrapped)
        parts.append(struct.pack(">I", len(self.ciphertext)))
        parts.append(self.ciphertext)
        parts.append(struct.pack(">B", 1 if self.direct else 0))
        if self.origin is None:
            parts.append(b"\x00")
        else:
            origin = self.origin.encode("utf-8")
            parts.append(struct.pack(">BH", 1, len(origin)))
            parts.append(origin)
        if self.sequence is None:
            parts.append(b"\x00")
        else:
            parts.append(struct.pack(">Bq", 1, self.sequence))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SealedEvent":
        """Inverse of :meth:`to_bytes`."""
        from repro.core.ktid import KTID

        (routable_len,) = struct.unpack_from(">I", data, 0)
        offset = 4
        routable = Event.from_bytes(data[offset: offset + routable_len])
        offset += routable_len
        (element_count,) = struct.unpack_from(">H", data, offset)
        offset += 2
        elements: dict[str, object] = {}
        for _ in range(element_count):
            (name_len,) = struct.unpack_from(">H", data, offset)
            offset += 2
            name = data[offset: offset + name_len].decode("utf-8")
            offset += name_len
            tag, payload_len = struct.unpack_from(">BI", data, offset)
            offset += 5
            payload = data[offset: offset + payload_len]
            offset += payload_len
            if tag == 0:
                elements[name] = payload.decode("utf-8")
            elif tag == 1:
                elements[name] = KTID.from_bytes(payload)
            else:
                raise ValueError(f"unknown element tag {tag}")
        (lock_count,) = struct.unpack_from(">H", data, offset)
        offset += 2
        locks = []
        for _ in range(lock_count):
            (attr_count,) = struct.unpack_from(">H", data, offset)
            offset += 2
            attributes = []
            for _ in range(attr_count):
                (attr_len,) = struct.unpack_from(">H", data, offset)
                offset += 2
                attributes.append(
                    data[offset: offset + attr_len].decode("utf-8")
                )
                offset += attr_len
            (wrapped_len,) = struct.unpack_from(">I", data, offset)
            offset += 4
            wrapped = data[offset: offset + wrapped_len]
            offset += wrapped_len
            locks.append(Lock(tuple(attributes), wrapped))
        (ciphertext_len,) = struct.unpack_from(">I", data, offset)
        offset += 4
        ciphertext = data[offset: offset + ciphertext_len]
        offset += ciphertext_len
        direct = bool(data[offset])
        offset += 1
        origin = None
        if data[offset]:
            (origin_len,) = struct.unpack_from(">H", data, offset + 1)
            offset += 3
            origin = data[offset: offset + origin_len].decode("utf-8")
            offset += origin_len
        else:
            offset += 1
        sequence = None
        if data[offset]:
            (sequence,) = struct.unpack_from(">q", data, offset + 1)
        return cls(
            routable, elements, tuple(locks), ciphertext, direct,
            origin=origin, sequence=sequence,
        )


def _element_size(element: object) -> int:
    if isinstance(element, str):
        return len(element)
    if hasattr(element, "digits"):
        return len(element.digits) + 2  # KTID wire encoding
    return 8


def _encode_secret(secret: Event) -> bytes:
    payload = secret.to_bytes()
    return struct.pack(">I", len(payload)) + payload


def _decode_secret(data: bytes) -> Event:
    (length,) = struct.unpack_from(">I", data, 0)
    return Event.from_bytes(data[4: 4 + length])


def seal_event(
    event: Event,
    schema: CompositeKeySpace,
    topic_key: bytes,
    secret_attributes: set[str],
    extra_lock_subsets: list[tuple[str, ...]] | None = None,
) -> SealedEvent:
    """Encrypt *event*'s secret attributes (publisher side).

    ``secret_attributes`` are stripped from the routable part and carried
    only inside the ciphertext.  Securable attributes (those declared in
    *schema* and present in the event) determine the lock.  Optional
    ``extra_lock_subsets`` add additional locks over subsets of the
    securable attributes (publisher-declared disjunctive access).
    """
    missing = secret_attributes - set(event.attributes)
    if missing:
        raise ValueError(f"secret attributes absent from event: {sorted(missing)}")
    securable = sorted(
        name
        for name in event.attributes
        if name in schema.attribute_names() and name not in secret_attributes
    )

    elements: dict[str, object] = {}
    component_keys: dict[str, bytes] = {}
    if securable:
        for name in securable:
            element, key = schema.event_component(topic_key, name, event[name])
            elements[name] = element
            component_keys[name] = key
    else:
        # Plain-topic event: the topic key itself is the encryption key
        # (Section 3.1's base case, K(e) = K(w)).
        topic = event.get("topic")
        if topic is None:
            raise ValueError(
                "event has neither a securable attribute nor a topic to "
                "derive an encryption key from"
            )
        securable = ["topic"]
        elements["topic"] = topic
        component_keys["topic"] = topic_key

    secret = Event(
        {name: event[name] for name in secret_attributes},
        publisher=event.publisher,
    )
    routable = event.without_attributes(*secret_attributes)
    payload = _encode_secret(secret)

    subsets: list[tuple[str, ...]] = [tuple(securable)]
    for subset in extra_lock_subsets or []:
        ordered = tuple(sorted(subset))
        if not ordered or any(name not in component_keys for name in ordered):
            raise ValueError(f"lock subset {subset!r} is not securable")
        if ordered not in subsets:
            subsets.append(ordered)

    if len(subsets) == 1:
        lock_key = combine_keys(
            {name: component_keys[name] for name in subsets[0]}
        )
        ciphertext = encrypt(lock_key, payload)
        return SealedEvent(
            routable, elements, (Lock(subsets[0]),), ciphertext, direct=True
        )

    content_key = os.urandom(KEY_BYTES)
    locks = []
    for subset in subsets:
        lock_key = combine_keys({name: component_keys[name] for name in subset})
        locks.append(Lock(subset, encrypt(lock_key, content_key)))
    ciphertext = encrypt(content_key, payload)
    return SealedEvent(routable, elements, tuple(locks), ciphertext, direct=False)


@dataclass
class OpenResult:
    """A successfully opened event plus derivation-cost accounting."""

    event: Event
    hash_operations: int = 0
    decrypt_operations: int = 0
    lock: Lock | None = field(default=None)


def open_event(
    sealed: SealedEvent,
    schema: CompositeKeySpace,
    component_keys: dict[str, bytes],
    hash_operations: int = 0,
) -> OpenResult:
    """Decrypt a sealed event given already-derived component leaf keys.

    *component_keys* maps attribute name to the derived leaf key for the
    event's element of that attribute (see
    :meth:`repro.core.subscriber.Subscriber.receive` for the derivation
    step).  Picks the first lock whose attribute set is fully covered.
    Raises :class:`ValueError` when no lock is satisfiable or decryption
    fails.
    """
    for lock in sealed.locks:
        if not all(name in component_keys for name in lock.attributes):
            continue
        lock_key = combine_keys(
            {name: component_keys[name] for name in lock.attributes}
        )
        decrypts = 0
        try:
            if sealed.direct:
                payload = decrypt(lock_key, sealed.ciphertext)
                decrypts = 1
            else:
                content_key = decrypt(lock_key, lock.wrapped)
                decrypts = 1
                payload = decrypt(content_key, sealed.ciphertext)
                decrypts += 1
        except ValueError:
            continue
        secret = _decode_secret(payload)
        merged = dict(sealed.routable.attributes)
        merged.update(secret.attributes)
        return OpenResult(
            Event(merged, publisher=sealed.routable.publisher),
            hash_operations=hash_operations,
            decrypt_operations=decrypts,
            lock=lock,
        )
    raise ValueError("no lock on this event is satisfiable with the given keys")
