"""Composite (multi-attribute, AND/OR) key space.

The paper's technical report extends the per-attribute key spaces to
complex subscriptions combining constraints with Boolean ``AND``/``OR``.
This module implements the construction PSGuard uses:

- Every securable attribute of a topic is declared in a
  :class:`CompositeKeySpace` (its *schema*), mapping the attribute name to
  its key space (numeric, category, string, or bare topic).
- A conjunctive clause locks an event under the *combined* key
  ``KH(sorted component leaf keys)`` -- derivable only by a subscriber who
  can derive **every** component key, i.e. whose constraints all match.
- Disjunctions become multiple clauses; the event envelope
  (:mod:`repro.core.envelope`) wraps its per-event content key once per
  clause, so matching **any** clause suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

from repro.crypto.prf import KH
from repro.core.category import CategoryKeySpace
from repro.core.ktid import KTID
from repro.core.nakt import NumericKeySpace
from repro.core.strings import StringKeySpace
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op

AttributeKeySpace = Union[NumericKeySpace, CategoryKeySpace, StringKeySpace]

_COMBINE_LABEL = b"psguard:combine:"


def combine_keys(component_keys: Mapping[str, bytes]) -> bytes:
    """Combine per-attribute component keys into one clause lock key.

    Deterministic and order-independent: components are concatenated in
    attribute-name order and folded through the keyed hash.  A single
    component collapses to itself so the common one-attribute case adds no
    extra derivation step on either side.
    """
    if not component_keys:
        raise ValueError("cannot combine an empty component set")
    if len(component_keys) == 1:
        return next(iter(component_keys.values()))
    material = b"".join(
        name.encode("utf-8") + b"\x00" + component_keys[name]
        for name in sorted(component_keys)
    )
    return KH(_COMBINE_LABEL, material)


@dataclass(frozen=True)
class AuthorizationComponent:
    """One granted key-space element for one attribute of one clause.

    ``element`` is the public element identifier (a :class:`KTID` for
    numeric attributes, a category label, or a string pattern) and ``key``
    the corresponding node key.
    """

    attribute: str
    element: object
    key: bytes


class CompositeKeySpace:
    """The per-topic schema: which key space secures which attribute.

    >>> schema = CompositeKeySpace({"age": NumericKeySpace("age", 128)})
    >>> sorted(schema.attribute_names())
    ['age']
    """

    def __init__(self, spaces: Mapping[str, AttributeKeySpace]):
        for name, space in spaces.items():
            if space.name != name:
                raise ValueError(
                    f"schema key {name!r} disagrees with space name "
                    f"{space.name!r}"
                )
        self.spaces: dict[str, AttributeKeySpace] = dict(spaces)

    def attribute_names(self) -> set[str]:
        """Names of all securable attributes."""
        return set(self.spaces)

    def space_for(self, attribute: str) -> AttributeKeySpace:
        """The key space securing *attribute* (KeyError if undeclared)."""
        return self.spaces[attribute]

    # -- publisher side ----------------------------------------------------

    def event_component(
        self, topic_key: bytes, attribute: str, value: object
    ) -> tuple[object, bytes]:
        """Leaf element identifier and key for an event's attribute value."""
        space = self.space_for(attribute)
        if isinstance(space, NumericKeySpace):
            if not isinstance(value, (int, float)):
                raise TypeError(
                    f"attribute {attribute!r} is numeric, got {value!r}"
                )
            return space.encryption_key(topic_key, value)
        if isinstance(space, CategoryKeySpace):
            if not isinstance(value, str):
                raise TypeError(
                    f"attribute {attribute!r} is categorical, got {value!r}"
                )
            # Events may carry a bare label or the routing path string.
            return space.encryption_key(topic_key, space.tree.label_of(value))
        if isinstance(space, StringKeySpace):
            if not isinstance(value, str):
                raise TypeError(
                    f"attribute {attribute!r} is a string, got {value!r}"
                )
            return space.encryption_key(topic_key, value)
        raise TypeError(f"unknown key space type {type(space).__name__}")

    # -- KDC side --------------------------------------------------------------

    def authorization_components(
        self, topic_key: bytes, clause: Filter
    ) -> tuple[list[AuthorizationComponent], int]:
        """Grant the key material for one conjunctive clause.

        Returns ``(components, key_generation_hash_ops)``.  The ``topic``
        constraint needs no component (the topic key itself scopes every
        derivation); every other constraint must target a declared
        attribute.
        """
        components: list[AuthorizationComponent] = []
        hash_ops = 0
        numeric_bounds: dict[str, dict[str, float]] = {}

        for constraint in clause:
            if constraint.name == "topic":
                continue
            space = self.spaces.get(constraint.name)
            if space is None:
                # Constraints on undeclared attributes are plaintext routing
                # constraints (e.g. publisher identity, auxiliary labels);
                # they carry no key material and are enforced by plaintext
                # matching at the subscriber and the brokers.
                continue
            if isinstance(space, NumericKeySpace):
                bounds = numeric_bounds.setdefault(
                    constraint.name,
                    {"low": 0.0, "high": float(space.range_size - 1)},
                )
                if constraint.op in (Op.GE, Op.GT):
                    low = float(constraint.value)
                    if constraint.op is Op.GT:
                        low += space.least_count
                    bounds["low"] = max(bounds["low"], low)
                elif constraint.op in (Op.LE, Op.LT):
                    high = float(constraint.value)
                    if constraint.op is Op.LT:
                        high -= space.least_count
                    bounds["high"] = min(bounds["high"], high)
                elif constraint.op is Op.EQ:
                    bounds["low"] = max(bounds["low"], float(constraint.value))
                    bounds["high"] = min(bounds["high"], float(constraint.value))
                else:
                    raise ValueError(
                        f"operator {constraint.op} is not securable on the "
                        f"numeric attribute {constraint.name!r}"
                    )
            elif isinstance(space, CategoryKeySpace):
                # EQ carries a bare label (subsumption semantics enforced
                # by the key space); PREFIX carries the routing path
                # string, letting one filter drive both in-network prefix
                # matching and the grant.
                if constraint.op not in (Op.EQ, Op.PREFIX):
                    raise ValueError(
                        "category attributes support EQ (label) or PREFIX "
                        f"(ontology path) constraints, got {constraint.op}"
                    )
                label = space.tree.label_of(str(constraint.value))
                element, key = space.authorization_key(topic_key, label)
                hash_ops += space.tree.depth(label) + 1
                components.append(
                    AuthorizationComponent(constraint.name, element, key)
                )
            elif isinstance(space, StringKeySpace):
                expected = Op.SUFFIX if space.suffix_mode else Op.PREFIX
                if constraint.op not in (expected, Op.EQ):
                    raise ValueError(
                        f"string attribute {constraint.name!r} supports only "
                        f"{expected} or EQ constraints, got {constraint.op}"
                    )
                element, key = space.authorization_key(
                    topic_key, str(constraint.value)
                )
                hash_ops += len(str(constraint.value)) + 1
                components.append(
                    AuthorizationComponent(constraint.name, element, key)
                )

        for attribute, bounds in numeric_bounds.items():
            space = self.spaces[attribute]
            assert isinstance(space, NumericKeySpace)
            if bounds["low"] > bounds["high"]:
                raise ValueError(
                    f"unsatisfiable numeric constraints on {attribute!r}"
                )
            for element, key in space.authorization_keys(
                topic_key, bounds["low"], bounds["high"]
            ):
                hash_ops += element.depth + 1
                components.append(
                    AuthorizationComponent(attribute, element, key)
                )
        return components, hash_ops

    # -- subscriber side -------------------------------------------------------

    def derive_component_key(
        self,
        component: AuthorizationComponent,
        event_element: object,
    ) -> tuple[bytes, int]:
        """Derive an event's component key from one granted component.

        Raises :class:`ValueError` when the grant does not cover the
        event's element (no match).  Returns ``(key, hash_ops)``.
        """
        space = self.space_for(component.attribute)
        if isinstance(space, NumericKeySpace):
            if not isinstance(component.element, KTID) or not isinstance(
                event_element, KTID
            ):
                raise TypeError("numeric components are identified by KTIDs")
            return NumericKeySpace.derive_encryption_key(
                (component.element, component.key), event_element
            )
        if isinstance(space, CategoryKeySpace):
            return space.derive_encryption_key(
                (str(component.element), component.key), str(event_element)
            )
        if isinstance(space, StringKeySpace):
            return space.derive_encryption_key(
                (str(component.element), component.key), str(event_element)
            )
        raise TypeError(f"unknown key space type {type(space).__name__}")


def filter_as_clauses(filters: Filter | list[Filter]) -> list[Filter]:
    """Normalize a filter (or explicit DNF list of filters) to clause form.

    A single :class:`~repro.siena.filters.Filter` is one conjunctive
    clause; a list expresses a disjunction of clauses.
    """
    if isinstance(filters, Filter):
        return [filters]
    clauses = list(filters)
    if not clauses:
        raise ValueError("a disjunction needs at least one clause")
    if not all(isinstance(clause, Filter) for clause in clauses):
        raise TypeError("every clause must be a Filter")
    return clauses


def clause_constraint(clause: Filter, attribute: str) -> list[Constraint]:
    """All of *clause*'s constraints on *attribute*."""
    return [c for c in clause if c.name == attribute]
