"""The key distribution center (KDC).

The KDC owns the master key ``rk(KDC)`` and issues (Sections 2.1, 3.1):

- epoch-scoped **topic keys** ``K(w)`` (or per-publisher ``K_P(w)``) to
  publishers;
- **authorization grants** -- the key material for one subscription filter,
  valid for one epoch -- to subscribers;
- **routing tokens** ``T(w) = F_{rk}(w)`` for the secure routing layer.

The KDC is *stateless*: every key is re-derivable from ``rk(KDC)`` alone,
so it keeps no record of active subscriptions or subscribers and can be
replicated on demand with no consistency protocol (Section 3.2.1).  Epoch
starts are staggered per topic to avoid flash crowds of renewals, and the
epoch length may adapt to subscription history (Section 3.1).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import GrantDenied, KDCUnavailable
from repro.crypto.hashes import KEY_BYTES
from repro.crypto.prf import F, KH
from repro.core.composite import (
    AuthorizationComponent,
    CompositeKeySpace,
    filter_as_clauses,
)
from repro.core.category import CategoryKeySpace
from repro.core.ktid import KTID
from repro.core.nakt import NumericKeySpace
from repro.core.strings import StringKeySpace
from repro.siena.filters import Filter
from repro.siena.operators import Op

#: Securable-attribute pseudo-component used for plain-topic events.
TOPIC_COMPONENT = "topic"


# Historical names for the exceptions now defined in ``repro.errors``.
# ``KDCUnavailableError`` still subclasses RuntimeError and
# ``AuthorizationDenied`` still subclasses PermissionError (through the
# hierarchy), so every pre-existing handler keeps working.
KDCUnavailableError = KDCUnavailable
AuthorizationDenied = GrantDenied


@dataclass
class TopicConfig:
    """Registration record for one topic namespace.

    ``epoch_policy`` (optional) observes subscription arrivals and
    proposes epoch lengths (see :mod:`repro.core.epochs`); the KDC applies
    a proposal only at an explicit :meth:`KDC.retune_epoch` call, which is
    meant to run at an epoch boundary so existing grants keep their
    schedule.
    """

    name: str
    schema: CompositeKeySpace
    epoch_length: float = 3600.0
    per_publisher: bool = False
    epoch_policy: object | None = None


@dataclass(frozen=True)
class ClauseGrant:
    """Key material authorizing one conjunctive clause of a filter."""

    clause: Filter
    topic: str
    components: tuple[AuthorizationComponent, ...]

    def keys_for(self, attribute: str) -> list[AuthorizationComponent]:
        """Granted components for one attribute."""
        return [c for c in self.components if c.attribute == attribute]


@dataclass(frozen=True)
class AuthorizationGrant:
    """Everything a subscriber receives for one subscription request.

    Valid for the single epoch ``epoch``; ``expires_at`` is the wall-clock
    end of that epoch.  ``hash_operations`` and :meth:`key_count` /
    :meth:`wire_bytes` feed the KDC-cost experiments (Tables 1-2, Fig 5).
    """

    subscriber: str
    topic: str
    epoch: int
    expires_at: float
    clauses: tuple[ClauseGrant, ...]
    hash_operations: int = 0

    def key_count(self) -> int:
        """Total number of keys in the grant."""
        return sum(len(clause.components) for clause in self.clauses)

    def wire_bytes(self) -> int:
        """Approximate size of the grant on the wire."""
        total = 0
        for clause in self.clauses:
            for component in clause.components:
                element = component.element
                if isinstance(element, KTID):
                    element_size = len(element.digits) + 2
                elif isinstance(element, str):
                    element_size = len(element)
                else:
                    element_size = 8
                total += KEY_BYTES + element_size + len(component.attribute)
        return total


@dataclass
class KDCStats:
    """Cumulative accounting counters for one KDC instance."""

    grants_issued: int = 0
    keys_issued: int = 0
    hash_operations: int = 0
    bytes_sent: int = 0
    publisher_keys_issued: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class KDC:
    """A stateless key distribution center.

    >>> kdc = KDC(master_key=bytes(16))
    >>> kdc.register_topic("news", CompositeKeySpace({}))
    >>> key_a = kdc.topic_key("news", at_time=0.0)
    >>> key_b = KDC(master_key=bytes(16), registry=kdc.registry).topic_key(
    ...     "news", at_time=0.0)
    >>> key_a == key_b  # replicas share no state beyond rk(KDC)
    True
    """

    def __init__(
        self,
        master_key: bytes | None = None,
        registry: dict[str, TopicConfig] | None = None,
        revocations: set[tuple[str, str]] | None = None,
    ):
        self.master_key = master_key if master_key is not None else os.urandom(
            KEY_BYTES
        )
        if len(self.master_key) < KEY_BYTES:
            raise ValueError("master key too short")
        #: Topic registry -- public configuration, not secret state.
        self.registry: dict[str, TopicConfig] = (
            registry if registry is not None else {}
        )
        #: Revoked ``(subscriber, topic)`` pairs (lazy revocation: the
        #: denial bites at the next renewal, not mid-epoch).
        self.revocations: set[tuple[str, str]] = (
            revocations if revocations is not None else set()
        )
        self.stats = KDCStats()

    # -- configuration ------------------------------------------------------

    def register_topic(
        self,
        topic: str,
        schema: CompositeKeySpace,
        epoch_length: float = 3600.0,
        per_publisher: bool = False,
        epoch_policy: object | None = None,
    ) -> None:
        """Declare a topic namespace and its securable-attribute schema."""
        if epoch_length <= 0:
            raise ValueError("epoch length must be positive")
        self.registry[topic] = TopicConfig(
            topic, schema, epoch_length, per_publisher, epoch_policy
        )

    def retune_epoch(self, topic: str) -> float:
        """Apply the topic's adaptive epoch policy; returns the new length.

        Intended to run at an epoch boundary (Section 3.1's adaptive
        epoch sizing).  A no-op for topics without a policy.
        """
        config = self.config_for(topic)
        if config.epoch_policy is not None:
            config.epoch_length = config.epoch_policy.current_length()
        return config.epoch_length

    def config_for(self, topic: str) -> TopicConfig:
        """Topic configuration (KeyError for unregistered topics)."""
        if topic not in self.registry:
            raise KeyError(f"topic {topic!r} is not registered with the KDC")
        return self.registry[topic]

    def revoke(self, subscriber: str, topic: str) -> None:
        """Deny future grants for *(subscriber, topic)* (lazy revocation)."""
        self.revocations.add((subscriber, topic))

    def reinstate(self, subscriber: str, topic: str) -> None:
        """Lift a revocation."""
        self.revocations.discard((subscriber, topic))

    def replicate(self) -> "KDC":
        """Spin up a replica: shares only ``rk(KDC)`` and the public registry."""
        return KDC(
            master_key=self.master_key,
            registry=self.registry,
            revocations=self.revocations,
        )

    # -- epochs --------------------------------------------------------------

    def _epoch_offset(self, topic: str) -> float:
        """Per-topic stagger so epoch renewals spread out (Section 3.1)."""
        config = self.config_for(topic)
        digest = KH(b"psguard:epoch-offset", topic.encode("utf-8"))
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return fraction * config.epoch_length

    def epoch_of(self, topic: str, at_time: float) -> int:
        """The epoch number containing *at_time* for *topic*.

        Epochs are the half-open intervals ``[epoch_start(e),
        epoch_start(e + 1))``; the fixup below keeps the division
        consistent with :meth:`epoch_start` when *at_time* is exactly a
        boundary value (float division can land a hair on either side,
        which would seal a boundary-instant event under the wrong key).
        """
        config = self.config_for(topic)
        shifted = at_time - self._epoch_offset(topic)
        epoch = int(shifted // config.epoch_length)
        if at_time >= self.epoch_start(topic, epoch + 1):
            epoch += 1
        elif at_time < self.epoch_start(topic, epoch):
            epoch -= 1
        return epoch

    def epoch_start(self, topic: str, epoch: int) -> float:
        """Wall-clock start of epoch number *epoch* for *topic*."""
        config = self.config_for(topic)
        return epoch * config.epoch_length + self._epoch_offset(topic)

    def epoch_end(self, topic: str, at_time: float) -> float:
        """Wall-clock end of the epoch containing *at_time*."""
        return self.epoch_start(topic, self.epoch_of(topic, at_time) + 1)

    # -- key derivation ---------------------------------------------------------

    def topic_key(
        self,
        topic: str,
        at_time: float = 0.0,
        publisher: str | None = None,
        epoch: int | None = None,
    ) -> bytes:
        """Epoch-scoped topic key ``K(w)`` or per-publisher ``K_P(w)``.

        All authorization and encryption keys for the epoch root here, so
        epoch rollover is the lazy-revocation rekey of Section 3.1.  An
        explicit *epoch* pins the derivation regardless of *at_time* (used
        by boundary-exact renewals, where float division on ``at_time``
        could otherwise land in the epoch that is ending).
        """
        config = self.config_for(topic)
        if epoch is None:
            epoch = self.epoch_of(topic, at_time)
        if config.per_publisher:
            if not publisher:
                raise ValueError(
                    f"topic {topic!r} uses per-publisher keys; a publisher "
                    "identity is required"
                )
            material = f"{publisher}\x00{topic}\x00{epoch}".encode("utf-8")
        else:
            material = f"{topic}\x00{epoch}".encode("utf-8")
        return KH(self.master_key, material)

    def issue_publisher_key(
        self, topic: str, publisher: str, at_time: float = 0.0
    ) -> bytes:
        """Hand a publisher its (per-publisher or shared) topic key."""
        key = self.topic_key(topic, at_time, publisher=publisher)
        self.stats.publisher_keys_issued += 1
        self.stats.hash_operations += 1
        self.stats.bytes_sent += KEY_BYTES
        return key

    def issue_token(self, topic: str) -> bytes:
        """Routing token ``T(w) = F_{rk}(w)`` (Section 4.1).

        Tokens are epoch-independent: they drive routing, not decryption.
        """
        self.config_for(topic)
        return F(self.master_key, topic.encode("utf-8"))

    # -- authorization ---------------------------------------------------------

    def authorize(
        self,
        subscriber: str,
        filters: Filter | list[Filter],
        at_time: float = 0.0,
        publisher: str | None = None,
        min_epoch: int | None = None,
    ) -> AuthorizationGrant:
        """Issue the authorization grant for a subscription filter.

        *filters* is one conjunctive :class:`Filter` or a DNF list of them.
        Every clause must pin the topic with ``<topic, EQ, w>``, and all
        clauses of one grant must share the topic.  The clause's key
        material follows the rules in :mod:`repro.core.envelope`:
        constrained securable attributes get minimal-cover keys,
        unconstrained ones get root keys, and clauses with no securable
        constraint additionally get the topic component for plain events.

        *min_epoch* floors the granted epoch: a renewal issued at exactly
        the old grant's ``expires_at`` must target the upcoming epoch even
        when float division puts *at_time* a hair inside the ending one.
        """
        clauses = filter_as_clauses(filters)
        topic = self._clause_topic(clauses[0])
        if (subscriber, topic) in self.revocations:
            raise AuthorizationDenied(
                f"subscriber {subscriber!r} is revoked on topic {topic!r}"
            )
        config = self.config_for(topic)
        if config.epoch_policy is not None:
            config.epoch_policy.observe_subscription(at_time)
        epoch = self.epoch_of(topic, at_time)
        if min_epoch is not None and epoch < min_epoch:
            epoch = min_epoch
        topic_key = self.topic_key(
            topic, at_time, publisher=publisher, epoch=epoch
        )

        clause_grants: list[ClauseGrant] = []
        total_hash_ops = 1  # the topic-key KH
        for clause in clauses:
            if self._clause_topic(clause) != topic:
                raise ValueError(
                    "all clauses of one grant must target the same topic"
                )
            components, hash_ops = config.schema.authorization_components(
                topic_key, clause
            )
            constrained = {component.attribute for component in components}
            for attribute in sorted(config.schema.attribute_names()):
                if attribute in constrained:
                    continue
                components.append(
                    self._root_component(config, topic_key, attribute)
                )
                hash_ops += 1
            if not constrained:
                components.append(
                    AuthorizationComponent(TOPIC_COMPONENT, topic, topic_key)
                )
            clause_grants.append(
                ClauseGrant(clause, topic, tuple(components))
            )
            total_hash_ops += hash_ops

        grant = AuthorizationGrant(
            subscriber=subscriber,
            topic=topic,
            epoch=epoch,
            expires_at=self.epoch_start(topic, epoch + 1),
            clauses=tuple(clause_grants),
            hash_operations=total_hash_ops,
        )
        self.stats.grants_issued += 1
        self.stats.keys_issued += grant.key_count()
        self.stats.hash_operations += total_hash_ops
        self.stats.bytes_sent += grant.wire_bytes()
        return grant

    @staticmethod
    def _clause_topic(clause: Filter) -> str:
        for constraint in clause:
            if constraint.name == "topic" and constraint.op is Op.EQ:
                return str(constraint.value)
        raise ValueError(
            "every clause must pin its topic with <topic, EQ, w>"
        )

    @staticmethod
    def _root_component(
        config: TopicConfig, topic_key: bytes, attribute: str
    ) -> AuthorizationComponent:
        """Root-level authorization for an unconstrained securable attribute."""
        space = config.schema.space_for(attribute)
        if isinstance(space, NumericKeySpace):
            root = KTID.root(space.arity)
            return AuthorizationComponent(
                attribute, root, space.node_key(topic_key, root)
            )
        if isinstance(space, CategoryKeySpace):
            root_label = space.tree.root_label
            return AuthorizationComponent(
                attribute, root_label, space.node_key(topic_key, root_label)
            )
        if isinstance(space, StringKeySpace):
            _, key = space.authorization_key(topic_key, "")
            return AuthorizationComponent(attribute, "", key)
        raise TypeError(f"unknown key space type {type(space).__name__}")
