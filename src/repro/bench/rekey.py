"""The ``repro bench --suite rekey`` churn ladder.

Each rung runs the full live-rekey choreography of
:mod:`repro.harness.rekey` -- a loopback TCP cluster with the KDC
endpoint hosted beside the broker tree, survivors renewing in-band
across epoch rollovers, a victim revoked lazily, a joiner and a leaver
churning mid-stream -- at an increasing membership scale.  Per rung the
report records rekey latency quantiles (REKEY broadcast to grant plane
settled), grant request->install latency quantiles, and delivery
completeness for the surviving population.

The report (``BENCH_rekey.json``; schema ``repro.bench/rekey.v1``) is
gated by :func:`check_rekey_regression`: the security and completeness
gates are absolute (zero unauthorized opens, survivor delivery >= 0.99,
every choreography gate green on every rung), while the latency gates
allow *tolerance* plus a 2x hardware-variance band against the
committed baseline, matching the other suites.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.bench.driver import load_report, write_report  # noqa: F401
from repro.harness.rekey import (
    RekeyChaosConfig,
    check_rekey,
    run_rekey_chaos,
)
from repro.obs.metrics import Histogram

BENCH_REKEY_SCHEMA = "repro.bench/rekey.v1"


@dataclass(frozen=True)
class RekeyBenchConfig:
    """Shape of the churn ladder."""

    seed: int = 7
    num_brokers: int = 3
    arity: int = 2
    epoch_length: float = 10.0
    rollovers: int = 3
    events_per_epoch: int = 8
    #: Survivor population per rung; each rung reruns the whole
    #: choreography (so churn per rollover grows with the rung).
    rungs: tuple[int, ...] = (1, 3, 6)
    renew_lead: float = 2.0
    grace: float = 1.0

    def __post_init__(self) -> None:
        if not self.rungs:
            raise ValueError("the ladder needs at least one rung")
        if any(rung < 1 for rung in self.rungs):
            raise ValueError("every rung needs at least one survivor")
        if self.rollovers < 3:
            raise ValueError("the churn ladder crosses >= 3 rollovers")


def _quantiles(name: str, samples: list[float]) -> dict:
    histogram = Histogram(name)
    for value in samples:
        histogram.observe(value)
    return histogram.snapshot()


def run_rekey_bench(config: RekeyBenchConfig = RekeyBenchConfig()) -> dict:
    """Climb the ladder; returns the report document."""
    rungs = []
    for rung_index, survivors in enumerate(config.rungs):
        chaos = RekeyChaosConfig(
            seed=config.seed + rung_index,
            num_brokers=config.num_brokers,
            arity=config.arity,
            epoch_length=config.epoch_length,
            rollovers=config.rollovers,
            events_per_epoch=config.events_per_epoch,
            survivors=survivors,
            renew_lead=config.renew_lead,
            grace=config.grace,
        )
        result = run_rekey_chaos(chaos)
        problems = check_rekey(chaos, result)
        rungs.append(
            {
                "survivors": survivors,
                "subscribers": survivors + 3,  # + victim, joiner, leaver
                "rollovers": result.rollovers_completed,
                "events_published": result.events_published,
                "grants_issued": len(result.grant_latencies_s),
                "survivor_delivery_ratio": result.survivor_delivery_ratio(),
                "unauthorized_opens": result.unauthorized_opens(),
                "unacked_publications": result.unacked_publications,
                "rekey_latency_s": _quantiles(
                    "rekey_rollover_latency_seconds",
                    result.rollover_latencies_s,
                ),
                "grant_latency_s": _quantiles(
                    "rekey_grant_latency_seconds",
                    result.grant_latencies_s,
                ),
                "gates": problems,
            }
        )
    return {
        "schema": BENCH_REKEY_SCHEMA,
        "config": asdict(config),
        "rungs": rungs,
        "totals": {
            "rollovers": sum(rung["rollovers"] for rung in rungs),
            "grants_issued": sum(rung["grants_issued"] for rung in rungs),
            "unauthorized_opens": sum(
                rung["unauthorized_opens"] for rung in rungs
            ),
            "min_survivor_delivery_ratio": min(
                rung["survivor_delivery_ratio"] for rung in rungs
            ),
        },
    }


def check_rekey_regression(
    report: dict, baseline: dict, tolerance: float = 0.25
) -> list[str]:
    """Gate a fresh churn ladder against a committed baseline.

    Absolute gates: schema and ladder shape match, every rung's
    choreography gates are green, zero unauthorized opens anywhere,
    survivor delivery >= 0.99 on every rung, zero unacked publications,
    and the latency quantiles are present.  The relative gates bound
    rekey p95 and grant p95 per rung to the baseline's value times
    ``(1 + tolerance) * 2`` (the 2x is the hardware-variance allowance
    the other socket-path suites use).
    """
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must be within [0, 1)")
    problems: list[str] = []
    if report.get("schema") != baseline.get("schema"):
        problems.append(
            f"schema mismatch: report {report.get('schema')!r} "
            f"vs baseline {baseline.get('schema')!r}"
        )
        return problems
    if len(report["rungs"]) != len(baseline["rungs"]):
        problems.append(
            f"ladder shape changed: {len(report['rungs'])} rungs "
            f"vs baseline {len(baseline['rungs'])}"
        )
        return problems
    for rung, reference in zip(report["rungs"], baseline["rungs"]):
        label = f"rung(survivors={rung['survivors']})"
        if rung["gates"]:
            problems.extend(
                f"{label}: {problem}" for problem in rung["gates"]
            )
        if rung["unauthorized_opens"]:
            problems.append(
                f"{label}: {rung['unauthorized_opens']} unauthorized "
                "post-revocation opens"
            )
        if rung["survivor_delivery_ratio"] < 0.99:
            problems.append(
                f"{label}: survivor delivery "
                f"{rung['survivor_delivery_ratio']:.4f} < 0.99"
            )
        if rung["unacked_publications"]:
            problems.append(
                f"{label}: {rung['unacked_publications']} publications "
                "never acked"
            )
        for plane in ("rekey_latency_s", "grant_latency_s"):
            quantiles = rung.get(plane, {}).get("quantiles", {})
            for quantile in ("p50", "p95", "p99"):
                if quantile not in quantiles:
                    problems.append(
                        f"{label}: missing {plane} quantile {quantile}"
                    )
            baseline_p95 = (
                reference.get(plane, {}).get("quantiles", {}).get("p95")
            )
            observed_p95 = quantiles.get("p95")
            if baseline_p95 and observed_p95 is not None:
                ceiling = baseline_p95 * (1 + tolerance) * 2
                if observed_p95 > ceiling:
                    problems.append(
                        f"{label}: {plane} p95 regression: "
                        f"{observed_p95 * 1e3:.2f} ms > "
                        f"{ceiling * 1e3:.2f} ms (baseline "
                        f"{baseline_p95 * 1e3:.2f} ms + {tolerance:.0%}, "
                        "x2 hardware allowance)"
                    )
    return problems


def render_rekey_report(report: dict) -> str:
    """Human-readable ladder summary printed by the bench CLI."""
    config = report["config"]
    lines = [
        "rekey bench: membership-churn ladder over live epoch rollovers "
        f"(seed={config['seed']}, brokers={config['num_brokers']}, "
        f"rollovers/rung={config['rollovers']})",
    ]
    for rung in report["rungs"]:
        rekey = rung["rekey_latency_s"]["quantiles"]
        grant = rung["grant_latency_s"]["quantiles"]
        lines.append(
            f"  {rung['subscribers']:2d} subscribers: "
            f"rekey p95 {rekey['p95'] * 1e3:6.1f} ms   "
            f"grant p95 {grant['p95'] * 1e3:6.1f} ms   "
            f"delivery {rung['survivor_delivery_ratio']:.4f}   "
            f"grants {rung['grants_issued']:3d}   "
            + ("ok" if not rung["gates"] else "GATES FAILED")
        )
    totals = report["totals"]
    lines.append(
        f"  totals: {totals['rollovers']} rollovers, "
        f"{totals['grants_issued']} grants, "
        f"{totals['unauthorized_opens']} unauthorized opens, "
        f"min delivery {totals['min_survivor_delivery_ratio']:.4f}"
    )
    return "\n".join(lines)
