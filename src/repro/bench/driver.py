"""The ``repro bench`` load and regression driver.

Runs the same fixed-seed Zipf workload through the full secure pipeline
-- seal, tokenize, disseminate over a broker tree with tokenized
matching, decrypt at every matching subscriber -- twice:

1. the **legacy per-event path**: ``BrokerTree.publish`` per event, plain
   :class:`~repro.routing.tokens.TokenAuthority`, uncached
   :func:`~repro.routing.tokens.tokenized_match`;
2. the **batched engine**: :class:`~repro.engine.DisseminationEngine`
   batches over the same topology with the
   :class:`~repro.engine.EngineCaches` memoization layers plugged in.

Both paths process identical event sequences and identical subscription
tables, and the driver checks the per-subscriber plaintext delivery
streams agree before reporting numbers (ciphertexts differ -- IVs and
token nonces are fresh per sealing -- so equivalence is judged on what
subscribers actually decrypt; the test suite separately checks
bit-identical dissemination of pre-sealed events).

The report is machine-readable (``BENCH_engine.json``; schema documented
in ``docs/API.md``) and :func:`check_regression` gates a fresh run
against a committed baseline with a tolerance band for CI.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Callable

from repro.core.kdc import AuthorizationGrant
from repro.core.ktid import KTID
from repro.core.publisher import Publisher
from repro.core.subscriber import Subscriber
from repro.engine import DisseminationEngine, EngineCaches, EngineConfig
from repro.obs.metrics import MetricsRegistry
from repro.routing.tokens import (
    TokenAuthority,
    tokenize_event,
    tokenized_match,
    tokenized_subscription,
)
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.network import BrokerTree
from repro.workloads.generator import (
    PaperWorkload,
    Subscription,
    TopicSpec,
    WorkloadConfig,
)

BENCH_SCHEMA = "repro.bench/engine.v1"
_SEQ = "_seq"


@dataclass(frozen=True)
class BenchConfig:
    """Workload shape for one bench run; defaults are the reference load."""

    seed: int = 7
    events: int = 400
    num_brokers: int = 15
    arity: int = 2
    num_subscribers: int = 16
    num_topics: int = 32
    topics_per_subscriber: int = 8
    message_bytes: int = 64
    batch_size: int = 32
    batch_sweep: tuple[int, ...] = (1, 8, 32, 128)

    def __post_init__(self) -> None:
        if self.events < 1:
            raise ValueError("need at least one event")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")


@dataclass
class _PathResult:
    """Raw measurements for one dissemination path."""

    label: str
    wall_s: float
    events: int
    deliveries: int
    opened: int
    unreadable: int
    latencies_s: list[float]
    #: per-subscriber plaintext delivery streams for equivalence checks
    streams: dict[str, list[tuple]]
    caches: dict = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else float("inf")

    def latency_summary(self) -> dict:
        """P² streaming quantiles over the end-to-end latencies."""
        from repro.obs.metrics import Histogram

        histogram = Histogram("bench_e2e_latency_seconds")
        for value in self.latencies_s:
            histogram.observe(value)
        return histogram.snapshot()

    def report(self) -> dict:
        return {
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "wall_s": self.wall_s,
            "deliveries": self.deliveries,
            "opened": self.opened,
            "unreadable": self.unreadable,
            "latency_s": self.latency_summary(),
            "caches": self.caches,
        }


class _BenchFixture:
    """Everything both paths share: topics, events, subscription draws."""

    def __init__(self, config: BenchConfig):
        self.config = config
        workload_config = WorkloadConfig(
            num_topics=config.num_topics,
            topics_per_subscriber=config.topics_per_subscriber,
            message_bytes=config.message_bytes,
            seed=config.seed,
        )
        self.workload = PaperWorkload(workload_config)
        self.master_key = bytes(
            (config.seed + index) % 256 for index in range(16)
        )
        self.kdc = self.workload.build_kdc(master_key=self.master_key)
        # Subscription draws consume workload randomness, so they happen
        # exactly once; both paths replay the same interest sets.
        self.interests: list[tuple[str, Subscription, AuthorizationGrant]] = []
        for index in range(config.num_subscribers):
            subscriber_id = f"S{index}"
            for subscription in self.workload.subscriptions_for(subscriber_id):
                grant = self.kdc.authorize(subscriber_id, subscription.filter)
                self.interests.append((subscriber_id, subscription, grant))
        self.events: list[tuple[TopicSpec, Event]] = []
        for _ in range(config.events):
            topic = self.workload.topic_sampler.sample()
            self.events.append(
                (topic, self.workload.random_event(topic, publisher="P"))
            )

    def schema_lookup(self, topic: str):
        return self.kdc.config_for(topic).schema

    def tokenized_filters(
        self,
        authority: TokenAuthority,
        subscription: Subscription,
        grant: AuthorizationGrant,
    ) -> list[Filter]:
        """The tokenized routing filters one subscription registers.

        Numeric topics route on the grant's KTID cover elements (prefix
        containment becomes token equality at the cover's level); other
        kinds route on the topic token alone -- their fine-grained access
        control stays where it cryptographically lives, in the
        subscriber's grant keys.
        """
        topic = subscription.topic
        filters: list[Filter] = []
        if topic.kind == "numeric":
            for clause_grant in grant.clauses:
                for component in clause_grant.keys_for(topic.attribute):
                    if isinstance(component.element, KTID):
                        filters.append(
                            tokenized_subscription(
                                authority,
                                topic.name,
                                {topic.attribute: component.element},
                            )
                        )
        if not filters:
            filters.append(tokenized_subscription(authority, topic.name))
        return filters


class _BenchSubscriber:
    """A subscriber endpoint recording what it decrypts, with timing."""

    def __init__(
        self,
        subscriber_id: str,
        fixture: _BenchFixture,
        sealed_by_seq: dict,
        result: _PathResult,
        clock: Callable[[], float],
    ):
        self.engine = Subscriber(subscriber_id)
        self.fixture = fixture
        self.sealed_by_seq = sealed_by_seq
        self.result = result
        self.clock = clock

    def deliver(self, routable: Event) -> None:
        seq = routable.get(_SEQ)
        sealed, published_at = self.sealed_by_seq[seq]
        opened = self.engine.receive(sealed, self.fixture.schema_lookup)
        self.result.deliveries += 1
        self.result.latencies_s.append(self.clock() - published_at)
        stream = self.result.streams.setdefault(
            self.engine.subscriber_id, []
        )
        if opened is not None:
            self.result.opened += 1
            stream.append((seq, "open", tuple(sorted(opened.event))))
        else:
            self.result.unreadable += 1
            stream.append((seq, "unreadable"))


def _wire_subscribers(
    tree: BrokerTree,
    fixture: _BenchFixture,
    authority: TokenAuthority,
    result: _PathResult,
    sealed_by_seq: dict,
    clock: Callable[[], float],
) -> dict[str, _BenchSubscriber]:
    """Attach every fixture subscriber and register its tokenized filters."""
    leaves = tree.leaf_ids()
    endpoints: dict[str, _BenchSubscriber] = {}
    registered: dict[str, set[Filter]] = {}
    for subscriber_id, subscription, grant in fixture.interests:
        endpoint = endpoints.get(subscriber_id)
        if endpoint is None:
            endpoint = _BenchSubscriber(
                subscriber_id, fixture, sealed_by_seq, result, clock
            )
            endpoints[subscriber_id] = endpoint
            home = leaves[len(endpoints) % len(leaves)]
            tree.attach_subscriber(subscriber_id, home, endpoint.deliver)
            result.streams[subscriber_id] = []
        endpoint.engine.add_grant(grant)
        issued = registered.setdefault(subscriber_id, set())
        for routing_filter in fixture.tokenized_filters(
            authority, subscription, grant
        ):
            if routing_filter not in issued:
                issued.add(routing_filter)
                tree.subscribe(subscriber_id, routing_filter)
    return endpoints


def _run_path(
    fixture: _BenchFixture,
    label: str,
    batch_size: int | None,
    registry: MetricsRegistry | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> _PathResult:
    """Run the full pipeline once; ``batch_size=None`` is the legacy path."""
    config = fixture.config
    caches = None
    if batch_size is None:
        authority: TokenAuthority = TokenAuthority(fixture.master_key)
        match = tokenized_match
        match_cache = None
    else:
        caches = EngineCaches(
            EngineConfig(batch_size=batch_size), registry
        )
        authority = caches.token_authority(fixture.master_key)
        match = caches.tokenized_match()
        match_cache = caches.match_results

    tree = BrokerTree(
        num_brokers=config.num_brokers,
        arity=config.arity,
        match=match,
        registry=registry,
        match_cache=match_cache,
    )
    result = _PathResult(label, 0.0, len(fixture.events), 0, 0, 0, [], {})
    sealed_by_seq: dict[int, tuple] = {}
    endpoints = _wire_subscribers(
        tree, fixture, authority, result, sealed_by_seq, clock
    )

    publisher = Publisher(f"bench-{label}", fixture.kdc)
    engine = None
    if batch_size is not None:
        engine = DisseminationEngine(
            tree, EngineConfig(batch_size=batch_size), registry
        )

    started = clock()
    for seq, (topic, event) in enumerate(fixture.events):
        published_at = clock()
        sealed = publisher.publish(event)
        sealed_by_seq[seq] = (sealed, published_at)
        elements = {
            attribute: element
            for attribute, element in sealed.elements.items()
            if isinstance(element, KTID)
        }
        routable = sealed.routable.with_attributes(**{_SEQ: seq})
        tokenized = tokenize_event(authority, routable, elements, topic.name)
        if engine is None:
            tree.publish(tokenized)
        else:
            engine.publish(tokenized)
    if engine is not None:
        engine.close()
    result.wall_s = clock() - started

    result.caches = {
        "publisher_key_cache": publisher.cache.stats(),
        "subscriber_key_caches": _merged_key_cache_stats(
            endpoint.engine.cache for endpoint in endpoints.values()
        ),
    }
    if caches is not None:
        result.caches.update(caches.stats())
        result.caches["token_authority"] = authority.cache.stats()
    return result


def _merged_key_cache_stats(caches) -> dict:
    merged = {"hits": 0, "misses": 0, "evictions": 0, "entries": 0}
    for cache in caches:
        stats = cache.stats()
        for key in ("hits", "misses", "evictions", "entries"):
            merged[key] += stats[key]
    total = merged["hits"] + merged["misses"]
    merged["hit_rate"] = merged["hits"] / total if total else 0.0
    return merged


def _streams_equal(left: _PathResult, right: _PathResult) -> bool:
    return left.streams == right.streams


def run_bench(
    config: BenchConfig = BenchConfig(),
    registry: MetricsRegistry | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> dict:
    """Run baseline + engine + batch sweep; returns the report document."""
    fixture = _BenchFixture(config)
    baseline = _run_path(fixture, "baseline", None, clock=clock)
    engine = _run_path(
        fixture, "engine", config.batch_size, registry, clock=clock
    )
    equivalent = _streams_equal(baseline, engine)

    sweep: list[dict] = []
    for batch_size in config.batch_sweep:
        if batch_size == config.batch_size:
            run = engine
        else:
            run = _run_path(fixture, f"engine-b{batch_size}", batch_size,
                            clock=clock)
        sweep.append(
            {
                "batch_size": batch_size,
                "events_per_sec": run.events_per_sec,
                "speedup": run.events_per_sec / baseline.events_per_sec,
                "equivalent": _streams_equal(baseline, run),
            }
        )

    engine_report = engine.report()
    engine_report["batch_size"] = config.batch_size
    engine_report["speedup"] = (
        engine.events_per_sec / baseline.events_per_sec
    )
    return {
        "schema": BENCH_SCHEMA,
        "config": asdict(config),
        "baseline": baseline.report(),
        "engine": engine_report,
        "batch_sweep": sweep,
        "equivalence": {
            "checked": True,
            "holds": equivalent and all(entry["equivalent"] for entry in sweep),
            "subscribers": len(baseline.streams),
            "deliveries": baseline.deliveries,
        },
    }


def check_regression(
    report: dict, baseline: dict, tolerance: float = 0.25
) -> list[str]:
    """Compare a fresh *report* against a committed *baseline* document.

    Returns a list of human-readable problems (empty = pass):

    - the equivalence check must hold;
    - required metrics (latency quantiles, cache hit rates) must be
      present;
    - the engine's speedup over the same-run per-event baseline must not
      regress more than *tolerance* below the committed speedup (this is
      the machine-independent throughput gate: same hardware runs both
      paths, so the ratio moves only when the engine itself regresses);
    - absolute engine throughput must clear the committed events/sec with
      *tolerance* plus a 2x hardware-variance allowance.  This backstop
      catches pipeline-wide collapses that leave the ratio intact (e.g.
      silently losing the fast AES backend slows both paths ~100x); the
      wide band keeps it from tripping on runner-speed differences, which
      routinely exceed any sane per-commit tolerance.
    """
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must be within [0, 1)")
    problems: list[str] = []
    if report.get("schema") != baseline.get("schema"):
        problems.append(
            f"schema mismatch: report {report.get('schema')!r} "
            f"vs baseline {baseline.get('schema')!r}"
        )
        return problems
    if not report["equivalence"]["holds"]:
        problems.append("engine deliveries diverge from the per-event path")

    engine = report["engine"]
    quantiles = engine.get("latency_s", {}).get("quantiles", {})
    for quantile in ("p50", "p95", "p99"):
        if quantile not in quantiles:
            problems.append(f"missing engine latency quantile {quantile}")
    for cache_name in ("token_prf", "match_results", "token_authority"):
        if "hit_rate" not in engine.get("caches", {}).get(cache_name, {}):
            problems.append(f"missing cache hit rate for {cache_name}")

    committed = baseline["engine"]
    floor_speedup = committed["speedup"] * (1 - tolerance)
    if engine["speedup"] < floor_speedup:
        problems.append(
            f"speedup regression: {engine['speedup']:.2f}x < "
            f"{floor_speedup:.2f}x "
            f"(baseline {committed['speedup']:.2f}x - {tolerance:.0%})"
        )
    floor_throughput = committed["events_per_sec"] * (1 - tolerance) / 2
    if engine["events_per_sec"] < floor_throughput:
        problems.append(
            f"throughput regression: {engine['events_per_sec']:.0f} ev/s < "
            f"{floor_throughput:.0f} ev/s "
            f"(baseline {committed['events_per_sec']:.0f} - {tolerance:.0%}, "
            f"/2 hardware allowance)"
        )
    return problems


def render_report(report: dict) -> str:
    """Human-readable summary printed by ``repro bench``."""
    baseline = report["baseline"]
    engine = report["engine"]
    lines = [
        "bench: batched engine vs per-event baseline "
        f"(seed={report['config']['seed']}, "
        f"events={report['config']['events']}, "
        f"brokers={report['config']['num_brokers']})",
        f"  baseline : {baseline['events_per_sec']:9.1f} ev/s   "
        f"p50 {baseline['latency_s']['quantiles']['p50'] * 1e3:7.2f} ms   "
        f"p99 {baseline['latency_s']['quantiles']['p99'] * 1e3:7.2f} ms",
        f"  engine   : {engine['events_per_sec']:9.1f} ev/s   "
        f"p50 {engine['latency_s']['quantiles']['p50'] * 1e3:7.2f} ms   "
        f"p99 {engine['latency_s']['quantiles']['p99'] * 1e3:7.2f} ms   "
        f"(batch={engine['batch_size']}, {engine['speedup']:.2f}x)",
        "  caches   : "
        + "  ".join(
            f"{name} {stats['hit_rate']:.0%}"
            for name, stats in sorted(engine["caches"].items())
            if isinstance(stats, dict) and "hit_rate" in stats
        ),
        "  sweep    : "
        + "  ".join(
            f"b{entry['batch_size']}={entry['speedup']:.2f}x"
            for entry in report["batch_sweep"]
        ),
        "  equivalence: "
        + (
            "ok" if report["equivalence"]["holds"] else "DIVERGED"
        )
        + f" ({report['equivalence']['deliveries']} deliveries to "
        f"{report['equivalence']['subscribers']} subscribers)",
    ]
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
