"""The ``repro bench --suite parallel`` speedup ladder.

Runs the reference Zipf workload through the **legacy per-event serial
path** once (``BrokerTree.publish`` per event, uncached tokenized match
-- the same baseline as the engine suite), then climbs a worker ladder:
each rung runs the batched engine with the sharded parallel matcher
bound to the tree (workers prime the shared match cache ahead of the
serial broker walk) and the crypto pool batching token-PRF proofs.

The 1-worker rung deliberately exercises the serial-fallback path --
``ParallelPolicy(workers=1)`` never spawns a pool, so its numbers show
the cost of threading the policy through unconditionally.  Every rung's
per-subscriber plaintext delivery streams are checked against the serial
run before any number is reported (bit-exact dissemination is covered
separately by the equivalence test suite).

A note on the speedup semantics: rung speedups are measured against the
*legacy serial path on the same hardware in the same run*, so the ratio
folds together batching, memoization, and parallel priming.  On a
many-core host the priming offload adds real wall-clock wins on top of
the engine's batching gains; on a single-core runner it degrades to
engine-level performance minus pool overhead.  The regression gate
(:func:`check_parallel_regression`) therefore compares rung-for-rung
against the committed baseline document rather than against an absolute
core-count curve.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable

from repro.bench.driver import (
    _SEQ,
    BenchConfig,
    _BenchFixture,
    _PathResult,
    _run_path,
    _streams_equal,
    _wire_subscribers,
)
from repro.core.ktid import KTID
from repro.core.publisher import Publisher
from repro.engine import DisseminationEngine, EngineCaches, EngineConfig
from repro.obs.metrics import MetricsRegistry
from repro.parallel import CryptoPool, ParallelPolicy, ShardedMatcher
from repro.routing.tokens import tokenize_event_batch
from repro.siena.network import BrokerTree

BENCH_PARALLEL_SCHEMA = "repro.bench/parallel.v1"


@dataclass(frozen=True)
class ParallelBenchConfig:
    """Workload shape for the parallel ladder; defaults match the engine
    suite's reference load so numbers are comparable across suites."""

    seed: int = 7
    events: int = 400
    num_brokers: int = 15
    arity: int = 2
    num_subscribers: int = 16
    num_topics: int = 32
    topics_per_subscriber: int = 8
    message_bytes: int = 64
    batch_size: int = 32
    chunk_size: int = 64
    worker_ladder: tuple[int, ...] = (1, 2, 4, 8)

    def __post_init__(self) -> None:
        if self.events < 1:
            raise ValueError("need at least one event")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if not self.worker_ladder:
            raise ValueError("the worker ladder needs at least one rung")
        if any(workers < 1 for workers in self.worker_ladder):
            raise ValueError("every ladder rung needs at least one worker")

    def bench_config(self) -> BenchConfig:
        """The equivalent engine-suite config (shared fixture shape)."""
        return BenchConfig(
            seed=self.seed,
            events=self.events,
            num_brokers=self.num_brokers,
            arity=self.arity,
            num_subscribers=self.num_subscribers,
            num_topics=self.num_topics,
            topics_per_subscriber=self.topics_per_subscriber,
            message_bytes=self.message_bytes,
            batch_size=self.batch_size,
        )


def _run_parallel_path(
    fixture: _BenchFixture,
    label: str,
    config: ParallelBenchConfig,
    workers: int,
    registry: MetricsRegistry | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> _PathResult:
    """One ladder rung: engine + caches + sharded matcher + crypto pool."""
    caches = EngineCaches(
        EngineConfig(batch_size=config.batch_size), registry
    )
    authority = caches.token_authority(fixture.master_key)
    tree = BrokerTree(
        num_brokers=fixture.config.num_brokers,
        arity=fixture.config.arity,
        match=caches.tokenized_match(),
        registry=registry,
        match_cache=caches.match_results,
    )
    policy = ParallelPolicy(workers=workers, chunk_size=config.chunk_size)
    matcher = ShardedMatcher(policy, match="tokenized", registry=registry)
    crypto = CryptoPool(policy, registry=registry)
    tree.bind_parallel(matcher)

    result = _PathResult(label, 0.0, len(fixture.events), 0, 0, 0, [], {})
    sealed_by_seq: dict[int, tuple] = {}
    endpoints = _wire_subscribers(
        tree, fixture, authority, result, sealed_by_seq, clock
    )

    publisher = Publisher(f"bench-{label}", fixture.kdc)
    engine = DisseminationEngine(
        tree,
        EngineConfig(batch_size=config.batch_size),
        registry,
        parallel=matcher,
    )

    def flush(pending: list[tuple]) -> None:
        for tokenized in tokenize_event_batch(
            authority, pending, prf=crypto.prf_batch
        ):
            engine.publish(tokenized)
        pending.clear()

    try:
        started = clock()
        pending: list[tuple] = []
        for seq, (topic, event) in enumerate(fixture.events):
            published_at = clock()
            sealed = publisher.publish(event)
            sealed_by_seq[seq] = (sealed, published_at)
            elements = {
                attribute: element
                for attribute, element in sealed.elements.items()
                if isinstance(element, KTID)
            }
            routable = sealed.routable.with_attributes(**{_SEQ: seq})
            pending.append((routable, elements, topic.name))
            if len(pending) >= config.batch_size:
                flush(pending)
        if pending:
            flush(pending)
        engine.close()
        result.wall_s = clock() - started
    finally:
        matcher.close()
        crypto.close()

    result.caches = caches.stats()
    result.caches["token_authority"] = authority.cache.stats()
    result.caches["parallel"] = matcher.stats()
    result.caches["crypto_pool"] = crypto.stats()
    del endpoints
    return result


def run_parallel_bench(
    config: ParallelBenchConfig = ParallelBenchConfig(),
    registry: MetricsRegistry | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> dict:
    """Serial baseline + worker ladder; returns the report document."""
    fixture = _BenchFixture(config.bench_config())
    serial = _run_path(fixture, "serial", None, clock=clock)

    ladder: list[dict] = []
    for workers in config.worker_ladder:
        run = _run_parallel_path(
            fixture, f"parallel-w{workers}", config, workers,
            registry, clock=clock,
        )
        ladder.append(
            {
                "workers": workers,
                "events_per_sec": run.events_per_sec,
                "wall_s": run.wall_s,
                "speedup": run.events_per_sec / serial.events_per_sec,
                "equivalent": _streams_equal(serial, run),
                "latency_s": run.latency_summary(),
                "parallel": run.caches.get("parallel", {}),
                "crypto_pool": run.caches.get("crypto_pool", {}),
                "caches": {
                    name: stats
                    for name, stats in run.caches.items()
                    if name in ("token_prf", "match_results",
                                "token_authority")
                },
            }
        )

    headline = next(
        (rung for rung in ladder if rung["workers"] == 4), ladder[-1]
    )
    return {
        "schema": BENCH_PARALLEL_SCHEMA,
        "config": asdict(config),
        "serial": serial.report(),
        "ladder": ladder,
        "headline": {
            "workers": headline["workers"],
            "events_per_sec": headline["events_per_sec"],
            "speedup": headline["speedup"],
        },
        "equivalence": {
            "checked": True,
            "holds": all(rung["equivalent"] for rung in ladder),
            "subscribers": len(serial.streams),
            "deliveries": serial.deliveries,
        },
    }


#: The acceptance floor for the 4-worker rung's speedup over the legacy
#: serial path (applied only when the report carries that rung, so a CI
#: subset run on fewer workers still gates rung-for-rung).
HEADLINE_SPEEDUP_FLOOR = 1.8


def check_parallel_regression(
    report: dict, baseline: dict, tolerance: float = 0.25
) -> list[str]:
    """Compare a fresh parallel *report* against a committed *baseline*.

    Returns a list of human-readable problems (empty = pass):

    - the serial-vs-parallel delivery equivalence must hold;
    - every ladder rung present in both documents must keep its speedup
      within *tolerance* of the committed speedup (machine-independent:
      both paths ran on the same hardware);
    - when the report carries the 4-worker rung, its speedup must clear
      the static :data:`HEADLINE_SPEEDUP_FLOOR`;
    - the headline throughput must clear the committed events/sec with
      *tolerance* plus a 2x hardware-variance allowance (the backstop
      against pipeline-wide collapses that leave ratios intact).
    """
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must be within [0, 1)")
    problems: list[str] = []
    if report.get("schema") != baseline.get("schema"):
        problems.append(
            f"schema mismatch: report {report.get('schema')!r} "
            f"vs baseline {baseline.get('schema')!r}"
        )
        return problems
    if not report["equivalence"]["holds"]:
        problems.append(
            "parallel deliveries diverge from the serial path"
        )

    committed_by_workers = {
        rung["workers"]: rung for rung in baseline.get("ladder", [])
    }
    for rung in report.get("ladder", []):
        committed = committed_by_workers.get(rung["workers"])
        if committed is None:
            continue
        floor = committed["speedup"] * (1 - tolerance)
        if rung["speedup"] < floor:
            problems.append(
                f"w={rung['workers']} speedup regression: "
                f"{rung['speedup']:.2f}x < {floor:.2f}x "
                f"(baseline {committed['speedup']:.2f}x - {tolerance:.0%})"
            )
        if (
            rung["workers"] == 4
            and rung["speedup"] < HEADLINE_SPEEDUP_FLOOR
        ):
            problems.append(
                f"w=4 rung below the acceptance floor: "
                f"{rung['speedup']:.2f}x < {HEADLINE_SPEEDUP_FLOOR:.1f}x"
            )

    headline = report.get("headline", {})
    committed_headline = baseline.get("headline", {})
    if committed_headline:
        floor_throughput = (
            committed_headline["events_per_sec"] * (1 - tolerance) / 2
        )
        if headline.get("events_per_sec", 0.0) < floor_throughput:
            problems.append(
                f"headline throughput regression: "
                f"{headline.get('events_per_sec', 0.0):.0f} ev/s < "
                f"{floor_throughput:.0f} ev/s "
                f"(baseline {committed_headline['events_per_sec']:.0f} - "
                f"{tolerance:.0%}, /2 hardware allowance)"
            )
    return problems


def render_parallel_report(report: dict) -> str:
    """Human-readable ladder printed by ``repro bench --suite parallel``."""
    serial = report["serial"]
    lines = [
        "bench: parallel ladder vs per-event serial path "
        f"(seed={report['config']['seed']}, "
        f"events={report['config']['events']}, "
        f"brokers={report['config']['num_brokers']}, "
        f"batch={report['config']['batch_size']})",
        f"  serial   : {serial['events_per_sec']:9.1f} ev/s",
    ]
    for rung in report["ladder"]:
        stats = rung.get("parallel", {})
        lines.append(
            f"  w={rung['workers']:<2}     : "
            f"{rung['events_per_sec']:9.1f} ev/s   "
            f"{rung['speedup']:5.2f}x   "
            f"primed={stats.get('primed_verdicts', 0):<6} "
            f"tasks={stats.get('tasks', 0):<4} "
            f"fallbacks={stats.get('serial_fallbacks', 0)}"
        )
    lines.append(
        "  equivalence: "
        + ("ok" if report["equivalence"]["holds"] else "DIVERGED")
        + f" ({report['equivalence']['deliveries']} deliveries to "
        f"{report['equivalence']['subscribers']} subscribers)"
    )
    return "\n".join(lines)
