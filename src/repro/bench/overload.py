"""The ``repro bench --suite overload`` sustained-overload sweep.

Where the engine suite measures *throughput* on real wall-clock time,
this suite measures *behaviour under overload* on the deterministic
simulator: a fixed-seed Zipf storm is driven through the flow-controlled
overlay at a ladder of offered-rate factors, and each rung records the
numbers the overload stack is accountable for -- high-priority delivery
ratio, best-effort delivery against its analytic floor, shed counts by
priority, shed *fairness* (the fraction of sheds that landed on the
lowest priority class present -- 1.0 means no better-priority event was
ever sacrificed), and peak queue depths against the bound.

Every number derives from the seed, so the committed baseline
(``benchmarks/baselines/BENCH_overload.json``) is exact on any machine;
``check_overload_regression`` gates with a small tolerance anyway so
intentional workload tweaks do not demand lockstep baseline edits.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass

from repro.flow import BEST_EFFORT, priority_name
from repro.harness.overload import OverloadConfig, _Workload
from repro.obs import Observability

BENCH_OVERLOAD_SCHEMA = "repro.bench/overload.v1"


@dataclass(frozen=True)
class OverloadBenchConfig:
    """Workload shape for one overload bench run."""

    seed: int = 7
    #: Offered-rate ladder, as multiples of broker capacity.
    factors: tuple[float, ...] = (0.8, 2.0, 4.0, 6.0)
    duration: float = 0.5
    drain: float = 1.5
    high_fraction: float = 0.1
    queue_capacity: int = 32
    credit_window: int = 16
    shed_policy: str = "drop-oldest"
    broker_cost: float = 0.004
    num_brokers: int = 7
    arity: int = 2

    def __post_init__(self) -> None:
        if not self.factors:
            raise ValueError("need at least one offered-rate factor")
        for factor in self.factors:
            if factor <= 0:
                raise ValueError("offered-rate factors must be positive")
            if factor * self.high_fraction >= 1.0:
                raise ValueError(
                    f"factor {factor} puts the high-priority slice over "
                    "capacity; nothing could protect it"
                )
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    def overlay_config(self) -> OverloadConfig:
        """The harness config describing the overlay under test."""
        return OverloadConfig(
            seed=self.seed,
            num_brokers=self.num_brokers,
            arity=self.arity,
            broker_cost=self.broker_cost,
            queue_capacity=self.queue_capacity,
            credit_window=self.credit_window,
            shed_policy=self.shed_policy,
            high_fraction=self.high_fraction,
        )


def _run_rung(config: OverloadBenchConfig, factor: float) -> dict:
    """One ladder rung: a fresh overlay at *factor* x capacity."""
    load = _Workload(config.overlay_config(), Observability())
    shed_by_priority: Counter = Counter()
    load.net.on_shed(
        lambda priority, _stage, _broker: shed_by_priority.update([priority])
    )
    load.schedule_phase("bench", 0.0, config.duration, factor)
    load.sim.run(until=config.duration + config.drain)
    high, best, overall = load.delivery_ratios("bench")
    offered, high_offered = load.offered("bench")
    total_shed = sum(shed_by_priority.values())
    fairness = (
        shed_by_priority[BEST_EFFORT] / total_shed if total_shed else 1.0
    )
    ideal = min(
        1.0,
        (1.0 - config.high_fraction * factor)
        / ((1.0 - config.high_fraction) * factor),
    )
    return {
        "factor": factor,
        "offered": offered,
        "high_offered": high_offered,
        "high_delivery": high,
        "best_effort_delivery": best,
        "overall_delivery": overall,
        "ideal_best_effort": ideal,
        "shed_events": total_shed,
        "shed_by_priority": {
            priority_name(priority): count
            for priority, count in sorted(shed_by_priority.items())
        },
        "shed_fairness": fairness,
        "peak_ingress_depth": max(
            load.net.flow_peak_depths().values(), default=0
        ),
        "peak_egress_depth": max(
            load.net.flow_egress_peak_depths().values(), default=0
        ),
    }


def run_overload_bench(
    config: OverloadBenchConfig = OverloadBenchConfig(),
) -> dict:
    """Run the offered-rate ladder; returns the report document."""
    sweep = [_run_rung(config, factor) for factor in config.factors]
    overloaded = [rung for rung in sweep if rung["shed_events"] > 0]
    headline = overloaded[-1] if overloaded else sweep[-1]
    config_doc = asdict(config)
    config_doc["factors"] = list(config.factors)  # JSON-stable
    return {
        "schema": BENCH_OVERLOAD_SCHEMA,
        "config": config_doc,
        "sweep": sweep,
        "headline": {
            "factor": headline["factor"],
            "high_delivery": headline["high_delivery"],
            "best_effort_delivery": headline["best_effort_delivery"],
            "shed_fairness": headline["shed_fairness"],
            "shed_events": headline["shed_events"],
        },
    }


def check_overload_regression(
    report: dict, baseline: dict, tolerance: float = 0.05
) -> list[str]:
    """Compare a fresh *report* against a committed *baseline* document.

    Returns a list of human-readable problems (empty = pass):

    - the schemas and offered-rate ladders must match;
    - queue depths must respect the configured bound on every rung;
    - per rung, the high-priority delivery ratio and the shed fairness
      must not fall more than *tolerance* below the committed numbers --
      these are the two headline guarantees of the overload stack;
    - per rung, best-effort delivery must stay within *tolerance* of the
      committed number (graceful degradation must not silently worsen).
    """
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must be within [0, 1)")
    problems: list[str] = []
    if report.get("schema") != baseline.get("schema"):
        problems.append(
            f"schema mismatch: report {report.get('schema')!r} "
            f"vs baseline {baseline.get('schema')!r}"
        )
        return problems
    report_factors = [rung["factor"] for rung in report["sweep"]]
    baseline_factors = [rung["factor"] for rung in baseline["sweep"]]
    if report_factors != baseline_factors:
        problems.append(
            f"offered-rate ladder changed: {report_factors} vs committed "
            f"{baseline_factors}; re-generate the baseline deliberately"
        )
        return problems
    bound = report["config"]["queue_capacity"]
    for rung, committed in zip(report["sweep"], baseline["sweep"]):
        factor = rung["factor"]
        if rung["peak_ingress_depth"] > bound:
            problems.append(
                f"factor {factor:g}: ingress queue peaked at "
                f"{rung['peak_ingress_depth']}, over the {bound} bound"
            )
        if rung["high_delivery"] < committed["high_delivery"] - tolerance:
            problems.append(
                f"factor {factor:g}: high-priority delivery "
                f"{rung['high_delivery']:.4f} below committed "
                f"{committed['high_delivery']:.4f} - {tolerance:.0%}"
            )
        if rung["shed_fairness"] < committed["shed_fairness"] - tolerance:
            problems.append(
                f"factor {factor:g}: shed fairness "
                f"{rung['shed_fairness']:.4f} below committed "
                f"{committed['shed_fairness']:.4f} - {tolerance:.0%} "
                "(better-priority events are being sacrificed)"
            )
        floor = committed["best_effort_delivery"] - tolerance
        if rung["best_effort_delivery"] < floor:
            problems.append(
                f"factor {factor:g}: best-effort delivery "
                f"{rung['best_effort_delivery']:.4f} below committed "
                f"{committed['best_effort_delivery']:.4f} - {tolerance:.0%}"
            )
    return problems


def render_overload_report(report: dict) -> str:
    """Human-readable summary printed by ``repro bench --suite overload``."""
    config = report["config"]
    capacity = 1.0 / config["broker_cost"]
    lines = [
        "bench: sustained overload sweep "
        f"(seed={config['seed']}, capacity={capacity:.0f} ev/s, "
        f"{config['high_fraction']:.0%} high-priority, "
        f"queues {config['queue_capacity']} deep, "
        f"{config['shed_policy']})",
    ]
    for rung in report["sweep"]:
        lines.append(
            f"  {rung['factor']:4.1f}x : "
            f"high {rung['high_delivery']:6.1%}   "
            f"best-effort {rung['best_effort_delivery']:6.1%} "
            f"(ideal {rung['ideal_best_effort']:6.1%})   "
            f"shed {rung['shed_events']:4d} "
            f"(fairness {rung['shed_fairness']:.2f})   "
            f"peak {rung['peak_ingress_depth']}/"
            f"{config['queue_capacity']}"
        )
    headline = report["headline"]
    lines.append(
        f"  headline : {headline['factor']:g}x storm holds "
        f"{headline['high_delivery']:.1%} high-priority delivery, "
        f"fairness {headline['shed_fairness']:.2f}"
    )
    return "\n".join(lines)


def write_overload_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
