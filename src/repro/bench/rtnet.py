"""The ``repro livebench`` socket-path benchmark.

Pushes a fixed-seed Zipf workload through a real localhost TCP broker
tree (:mod:`repro.rtnet`): events are sealed and tokenized at the
publisher, framed as PSE2 bytes, routed hop by hop through ``--brokers``
asyncio broker servers with token matching, and decrypted at the
subscribing edges.  The same workload also runs through the in-process
:class:`~repro.siena.network.BrokerTree` as a **reference**, and the two
per-subscriber delivery streams -- ``(publisher sequence, opened or
unreadable)`` -- must agree exactly before any number is reported.  That
single check is both the delivery-completeness gate (nothing lost on the
sockets) and the security gate (nobody opened an event the reference run
says they were not authorized to open).

The report (``BENCH_rtnet.json``; schema ``repro.bench/rtnet.v1``) holds
socket-path throughput and end-to-end latency quantiles, and
:func:`check_rtnet_regression` gates a fresh run against a committed
baseline like the engine/overload/parallel suites.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import asdict, dataclass

from repro.bench.driver import load_report, write_report  # noqa: F401
from repro.core.kdc import AuthorizationGrant
from repro.core.ktid import KTID
from repro.core.publisher import Publisher
from repro.core.subscriber import Subscriber
from repro.obs import Observability
from repro.routing.tokens import (
    TokenAuthority,
    grant_routing_filters,
    tokenize_event,
    tokenized_match,
)
from repro.rtnet.client import RtPublisher, RtSubscriber
from repro.rtnet.cluster import ClusterLauncher
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.network import BrokerTree
from repro.workloads.generator import (
    PaperWorkload,
    TopicSpec,
    WorkloadConfig,
)

BENCH_RTNET_SCHEMA = "repro.bench/rtnet.v1"
_SEQ = "_seq"
_PUBLISHER = "P"


@dataclass(frozen=True)
class RtnetBenchConfig:
    """Workload shape for one socket-path bench run."""

    seed: int = 7
    events: int = 200
    num_brokers: int = 7
    arity: int = 2
    num_subscribers: int = 8
    num_topics: int = 16
    topics_per_subscriber: int = 4
    message_bytes: int = 64
    settle_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.events < 1:
            raise ValueError("need at least one event")
        if self.num_brokers < 1:
            raise ValueError("need at least one broker")


class _RtnetFixture:
    """Workload, KDC, grants and the event sequence both paths share."""

    def __init__(self, config: RtnetBenchConfig):
        self.config = config
        self.workload = PaperWorkload(
            WorkloadConfig(
                num_topics=config.num_topics,
                topics_per_subscriber=config.topics_per_subscriber,
                message_bytes=config.message_bytes,
                seed=config.seed,
            )
        )
        self.master_key = bytes(
            (config.seed + index) % 256 for index in range(16)
        )
        self.kdc = self.workload.build_kdc(master_key=self.master_key)
        self.grants: list[tuple[str, AuthorizationGrant]] = []
        for index in range(config.num_subscribers):
            subscriber_id = f"S{index}"
            for subscription in self.workload.subscriptions_for(subscriber_id):
                self.grants.append(
                    (
                        subscriber_id,
                        self.kdc.authorize(subscriber_id, subscription.filter),
                    )
                )
        self.events: list[tuple[TopicSpec, Event]] = []
        for _ in range(config.events):
            topic = self.workload.topic_sampler.sample()
            self.events.append(
                (topic, self.workload.random_event(topic,
                                                   publisher=_PUBLISHER))
            )

    def schema_lookup(self, topic: str):
        return self.kdc.config_for(topic).schema


def _run_reference(fixture: _RtnetFixture) -> dict[str, set[tuple]]:
    """The in-process ground truth: per-subscriber delivery streams."""
    config = fixture.config
    authority = TokenAuthority(fixture.master_key)
    tree = BrokerTree(
        num_brokers=config.num_brokers,
        arity=config.arity,
        match=tokenized_match,
    )
    streams: dict[str, set[tuple]] = {}
    engines: dict[str, Subscriber] = {}
    sealed_by_seq: dict[int, object] = {}
    leaves = tree.leaf_ids()

    def deliverer(subscriber_id: str):
        def deliver(routable: Event) -> None:
            seq = routable.get(_SEQ)
            opened = engines[subscriber_id].receive(
                sealed_by_seq[seq], fixture.schema_lookup
            )
            streams[subscriber_id].add(
                (seq, "open" if opened is not None else "unreadable")
            )

        return deliver

    registered: dict[str, set[Filter]] = {}
    for subscriber_id, grant in fixture.grants:
        if subscriber_id not in engines:
            engines[subscriber_id] = Subscriber(subscriber_id)
            streams[subscriber_id] = set()
            home = leaves[len(engines) % len(leaves)]
            tree.attach_subscriber(
                subscriber_id, home, deliverer(subscriber_id)
            )
        engines[subscriber_id].add_grant(grant)
        issued = registered.setdefault(subscriber_id, set())
        for routing_filter in grant_routing_filters(authority, grant):
            if routing_filter not in issued:
                issued.add(routing_filter)
                tree.subscribe(subscriber_id, routing_filter)

    publisher = Publisher(_PUBLISHER, fixture.kdc)
    for seq, (topic, event) in enumerate(fixture.events):
        sealed = publisher.publish(event)
        sealed_by_seq[seq] = sealed
        elements = {
            attribute: element
            for attribute, element in sealed.elements.items()
            if isinstance(element, KTID)
        }
        routable = sealed.routable.with_attributes(**{_SEQ: seq})
        tree.publish(
            tokenize_event(authority, routable, elements, topic.name)
        )
    return streams


async def _run_live(
    fixture: _RtnetFixture, obs: Observability
) -> tuple[dict[str, set[tuple]], dict, list[float], float]:
    """The socket path: same workload over a localhost TCP tree."""
    config = fixture.config
    authority = TokenAuthority(fixture.master_key)
    cluster = ClusterLauncher(
        num_brokers=config.num_brokers,
        arity=config.arity,
        registry=obs.registry,
    )
    await cluster.start()
    subscribers: dict[str, RtSubscriber] = {}
    try:
        for subscriber_id, grant in fixture.grants:
            endpoint = subscribers.get(subscriber_id)
            if endpoint is None:
                host, port = cluster.subscriber_address()
                endpoint = RtSubscriber(
                    subscriber_id,
                    host,
                    port,
                    schema_lookup=fixture.schema_lookup,
                    authority=authority,
                    registry=obs.registry,
                )
                await endpoint.connect()
                subscribers[subscriber_id] = endpoint
            await endpoint.add_grant(grant)
        # Flush the subscription plane before the first publication.
        for endpoint in subscribers.values():
            await endpoint.settle(timeout=config.settle_timeout)

        publisher = RtPublisher(
            _PUBLISHER,
            *cluster.publisher_address(),
            fixture.kdc,
            authority=authority,
            registry=obs.registry,
        )
        await publisher.connect()
        started = time.perf_counter()
        for _topic, event in fixture.events:
            await publisher.publish(event)
        await publisher.settle(timeout=config.settle_timeout)
        for endpoint in subscribers.values():
            await endpoint.settle(timeout=config.settle_timeout)
        wall_s = time.perf_counter() - started

        streams = {
            subscriber_id: {
                (sequence, verdict)
                for _origin, sequence, verdict in endpoint.log
            }
            for subscriber_id, endpoint in subscribers.items()
        }
        latencies = [
            latency
            for endpoint in subscribers.values()
            for latency in endpoint.latencies_s
        ]
        totals = {
            "deliveries": sum(len(e.log) for e in subscribers.values()),
            "opened": sum(len(e.opened) for e in subscribers.values()),
            "unreadable": sum(e.unreadable for e in subscribers.values()),
            "duplicates": sum(e.duplicates for e in subscribers.values()),
            "publisher_unacked": publisher.unacked,
            "broker_stats": cluster.stats(),
        }
        await publisher.close()
    finally:
        for endpoint in subscribers.values():
            await endpoint.close()
        await cluster.stop()
    return streams, totals, latencies, wall_s


def run_rtnet_bench(
    config: RtnetBenchConfig = RtnetBenchConfig(),
    obs: Observability | None = None,
) -> dict:
    """Run reference + socket path; returns the report document."""
    if obs is None:
        obs = Observability()
    fixture = _RtnetFixture(config)
    reference = _run_reference(fixture)
    live, totals, latencies, wall_s = asyncio.run(
        _run_live(fixture, obs)
    )

    equivalent = live == reference
    reference_opens = {
        (subscriber_id, entry[0])
        for subscriber_id, stream in reference.items()
        for entry in stream
        if entry[1] == "open"
    }
    unauthorized = sum(
        1
        for subscriber_id, stream in live.items()
        for entry in stream
        if entry[1] == "open"
        and (subscriber_id, entry[0]) not in reference_opens
    )

    from repro.obs.metrics import Histogram

    histogram = Histogram("rtnet_e2e_latency_seconds")
    for value in latencies:
        histogram.observe(value)

    return {
        "schema": BENCH_RTNET_SCHEMA,
        "config": asdict(config),
        "live": {
            "events": config.events,
            "wall_s": wall_s,
            "events_per_sec": (
                config.events / wall_s if wall_s > 0 else float("inf")
            ),
            "deliveries": totals["deliveries"],
            "opened": totals["opened"],
            "unreadable": totals["unreadable"],
            "duplicates": totals["duplicates"],
            "publisher_unacked": totals["publisher_unacked"],
            "latency_s": histogram.snapshot(),
        },
        "reference": {
            "deliveries": sum(len(s) for s in reference.values()),
            "opened": sum(
                1
                for stream in reference.values()
                for entry in stream
                if entry[1] == "open"
            ),
        },
        "equivalence": {
            "checked": True,
            "holds": equivalent,
            "subscribers": len(reference),
            "deliveries": sum(len(s) for s in reference.values()),
        },
        "security": {"unauthorized_opens": unauthorized},
        "cluster": {
            "brokers": config.num_brokers,
            "arity": config.arity,
            "frames_relayed": sum(
                stats["events_forwarded"]
                for stats in totals["broker_stats"].values()
            ),
        },
    }


def check_rtnet_regression(
    report: dict, baseline: dict, tolerance: float = 0.25
) -> list[str]:
    """Gate a fresh socket-path run against a committed baseline.

    Structural gates are absolute (stream equivalence with the in-process
    reference, zero unauthorized opens, zero unacked publications,
    latency quantiles present); the throughput gate allows *tolerance*
    plus a 2x hardware-variance band, matching the other suites.
    """
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must be within [0, 1)")
    problems: list[str] = []
    if report.get("schema") != baseline.get("schema"):
        problems.append(
            f"schema mismatch: report {report.get('schema')!r} "
            f"vs baseline {baseline.get('schema')!r}"
        )
        return problems
    if not report["equivalence"]["holds"]:
        problems.append(
            "socket-path deliveries diverge from the in-process reference"
        )
    if report["security"]["unauthorized_opens"]:
        problems.append(
            f"{report['security']['unauthorized_opens']} events opened "
            "by subscribers the reference run says were unauthorized"
        )
    live = report["live"]
    if live["publisher_unacked"]:
        problems.append(
            f"{live['publisher_unacked']} publications never acked by "
            "the home broker"
        )
    quantiles = live.get("latency_s", {}).get("quantiles", {})
    for quantile in ("p50", "p95", "p99"):
        if quantile not in quantiles:
            problems.append(f"missing live latency quantile {quantile}")
    floor = baseline["live"]["events_per_sec"] * (1 - tolerance) / 2
    if live["events_per_sec"] < floor:
        problems.append(
            f"throughput regression: {live['events_per_sec']:.0f} ev/s < "
            f"{floor:.0f} ev/s (baseline "
            f"{baseline['live']['events_per_sec']:.0f} - {tolerance:.0%}, "
            "/2 hardware allowance)"
        )
    return problems


def render_rtnet_report(report: dict) -> str:
    """Human-readable summary printed by ``repro livebench``."""
    live = report["live"]
    quantiles = live["latency_s"]["quantiles"]
    return "\n".join(
        [
            "livebench: socket-path dissemination over a "
            f"{report['cluster']['brokers']}-broker loopback TCP tree "
            f"(seed={report['config']['seed']}, "
            f"events={report['config']['events']})",
            f"  throughput : {live['events_per_sec']:9.1f} ev/s "
            f"({live['events']} events in {live['wall_s']:.2f}s)",
            f"  latency    : p50 {quantiles['p50'] * 1e3:7.2f} ms   "
            f"p95 {quantiles['p95'] * 1e3:7.2f} ms   "
            f"p99 {quantiles['p99'] * 1e3:7.2f} ms",
            f"  deliveries : {live['deliveries']} "
            f"({live['opened']} opened, {live['unreadable']} unreadable, "
            f"{live['duplicates']} duplicates suppressed)",
            "  equivalence: "
            + ("ok" if report["equivalence"]["holds"] else "DIVERGED")
            + f" vs in-process reference ({report['equivalence']['subscribers']}"
            " subscribers); unauthorized opens: "
            + str(report["security"]["unauthorized_opens"]),
        ]
    )
