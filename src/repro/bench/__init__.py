"""``repro.bench`` -- the load and regression driver for ``repro.engine``.

``repro bench`` on the command line; :func:`run_bench` programmatically.
"""

from __future__ import annotations

from repro.bench.driver import (
    BENCH_SCHEMA,
    BenchConfig,
    check_regression,
    load_report,
    render_report,
    run_bench,
    write_report,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchConfig",
    "check_regression",
    "load_report",
    "render_report",
    "run_bench",
    "write_report",
]
