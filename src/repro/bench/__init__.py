"""``repro.bench`` -- the load and regression drivers.

Four suites, selected with ``repro bench --suite``:

- ``engine`` (:func:`run_bench`): wall-clock throughput of the batched
  dissemination engine against the per-event path;
- ``overload`` (:func:`run_overload_bench`): sustained-storm delivery,
  shedding, and fairness on the simulated flow-controlled overlay;
- ``parallel`` (:func:`run_parallel_bench`): the sharded
  matcher/crypto-pool worker ladder against the serial path;
- ``rekey`` (:func:`run_rekey_bench`): the membership-churn ladder --
  live epoch rollovers, in-band grant renewal, and lazy revocation on a
  loopback TCP cluster, gating rekey/grant latency quantiles and
  delivery completeness.

``repro livebench`` (:func:`run_rtnet_bench`) is the socket-path
throughput suite: the same Zipf workload through a real localhost TCP
broker tree (:mod:`repro.rtnet`), gated on stream equivalence with an
in-process reference run.
"""

from __future__ import annotations

from repro.bench.driver import (
    BENCH_SCHEMA,
    BenchConfig,
    check_regression,
    load_report,
    render_report,
    run_bench,
    write_report,
)
from repro.bench.overload import (
    BENCH_OVERLOAD_SCHEMA,
    OverloadBenchConfig,
    check_overload_regression,
    render_overload_report,
    run_overload_bench,
    write_overload_report,
)
from repro.bench.parallel import (
    BENCH_PARALLEL_SCHEMA,
    ParallelBenchConfig,
    check_parallel_regression,
    render_parallel_report,
    run_parallel_bench,
)
from repro.bench.rekey import (
    BENCH_REKEY_SCHEMA,
    RekeyBenchConfig,
    check_rekey_regression,
    render_rekey_report,
    run_rekey_bench,
)
from repro.bench.rtnet import (
    BENCH_RTNET_SCHEMA,
    RtnetBenchConfig,
    check_rtnet_regression,
    render_rtnet_report,
    run_rtnet_bench,
)

__all__ = [
    "BENCH_OVERLOAD_SCHEMA",
    "BENCH_PARALLEL_SCHEMA",
    "BENCH_REKEY_SCHEMA",
    "BENCH_RTNET_SCHEMA",
    "BENCH_SCHEMA",
    "BenchConfig",
    "OverloadBenchConfig",
    "ParallelBenchConfig",
    "RekeyBenchConfig",
    "RtnetBenchConfig",
    "check_overload_regression",
    "check_parallel_regression",
    "check_regression",
    "check_rekey_regression",
    "check_rtnet_regression",
    "load_report",
    "render_overload_report",
    "render_parallel_report",
    "render_report",
    "render_rekey_report",
    "render_rtnet_report",
    "run_bench",
    "run_overload_bench",
    "run_parallel_bench",
    "run_rekey_bench",
    "run_rtnet_bench",
    "write_overload_report",
    "write_report",
]
