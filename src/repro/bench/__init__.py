"""``repro.bench`` -- the load and regression drivers.

Two suites, selected with ``repro bench --suite``:

- ``engine`` (:func:`run_bench`): wall-clock throughput of the batched
  dissemination engine against the per-event path;
- ``overload`` (:func:`run_overload_bench`): sustained-storm delivery,
  shedding, and fairness on the simulated flow-controlled overlay.
"""

from __future__ import annotations

from repro.bench.driver import (
    BENCH_SCHEMA,
    BenchConfig,
    check_regression,
    load_report,
    render_report,
    run_bench,
    write_report,
)
from repro.bench.overload import (
    BENCH_OVERLOAD_SCHEMA,
    OverloadBenchConfig,
    check_overload_regression,
    render_overload_report,
    run_overload_bench,
    write_overload_report,
)

__all__ = [
    "BENCH_OVERLOAD_SCHEMA",
    "BENCH_SCHEMA",
    "BenchConfig",
    "OverloadBenchConfig",
    "check_overload_regression",
    "check_regression",
    "load_report",
    "render_overload_report",
    "render_report",
    "run_bench",
    "run_overload_bench",
    "write_overload_report",
    "write_report",
]
