"""Embedding the broker tree onto an Internet topology.

The experiments build a complete binary tree of pub-sub nodes (0, 2, 6,
14 or 30 brokers plus the publisher root and 32 subscribers) and link them
with TCP connections whose delays come from the underlying GT-ITM topology
(Section 5.2).  ``DisseminationTree`` performs that embedding and exposes
per-overlay-link latencies for the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.transit_stub import TransitStubTopology


@dataclass(frozen=True)
class TreeLink:
    """One overlay link with its one-way latency."""

    parent: int
    child: int
    latency: float


class DisseminationTree:
    """A complete ``arity``-ary broker tree embedded in a topology.

    Broker ids follow heap numbering (root 0, children of ``i`` are
    ``arity*i + 1 .. arity*i + arity``).
    """

    def __init__(
        self,
        num_brokers: int,
        topology: TransitStubTopology | None = None,
        arity: int = 2,
        seed: int = 7,
    ):
        if num_brokers < 1:
            raise ValueError("a tree needs at least the root broker")
        self.num_brokers = num_brokers
        self.arity = arity
        self.topology = topology or TransitStubTopology(seed=seed)
        self.placement = dict(
            enumerate(self.topology.sample_overlay(num_brokers))
        )

    def parent_of(self, broker_id: int) -> int | None:
        """Heap parent, or ``None`` at the root."""
        return None if broker_id == 0 else (broker_id - 1) // self.arity

    def links(self) -> list[TreeLink]:
        """All parent-child overlay links with embedded latencies."""
        result = []
        for child in range(1, self.num_brokers):
            parent = self.parent_of(child)
            latency = self.topology.one_way_delay(
                self.placement[parent], self.placement[child]
            )
            result.append(TreeLink(parent, child, latency))
        return result

    def link_latency(self, a: int, b: int) -> float:
        """One-way latency between two overlay brokers."""
        return self.topology.one_way_delay(self.placement[a], self.placement[b])

    def depth(self) -> int:
        """Depth of the tree (root at 0): hops from the last broker up."""
        last = self.num_brokers - 1
        depth = 0
        while last > 0:
            last = (last - 1) // self.arity
            depth += 1
        return depth
