"""The multi-path event dissemination network ``G_ind`` (Section 4.2.1).

Starting from a complete ``a``-ary dissemination tree (publisher at the
root, subscribers below the leaves), ``G_ind`` adds, for every node ``n``
at depth >= 2 and every subscriber, edges to ``ind - 1`` distinct siblings
of ``parent(n)``.  Theorem 4.2 then gives ``ind`` pairwise independent
paths from the publisher to every subscriber:

    ``Q_j = <P, sigma_j(n_1), ..., sigma_j(n_d), S>``

where ``sigma_j`` shifts each tree node to its ``(j-1)``-th cyclic sibling
(``sigma_1`` is the identity, recovering the original path).

Node naming: a broker is its digit tuple (root ``()``); a subscriber is a
pair ``("S", leaf_digits)`` hanging below its leaf broker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterator

BrokerId = tuple[int, ...]
SubscriberId = tuple[str, BrokerId]


@dataclass(frozen=True)
class MultipathEdge:
    """One overlay edge of ``G_ind`` (directed parent -> child sense)."""

    source: Hashable
    target: Hashable
    is_tree_edge: bool


class MultipathNetwork:
    """``G_ind`` over a complete ``arity``-ary tree of depth ``depth``."""

    def __init__(self, depth: int, arity: int = 2, ind: int = 2):
        if depth < 1:
            raise ValueError("the dissemination tree needs depth >= 1")
        if arity < 2:
            raise ValueError("arity must be >= 2")
        if not 1 <= ind <= arity:
            raise ValueError(
                f"ind must satisfy 1 <= ind <= arity (got ind={ind}, "
                f"arity={arity})"
            )
        self.depth = depth
        self.arity = arity
        self.ind = ind

    # -- node enumeration ---------------------------------------------------

    def brokers(self) -> Iterator[BrokerId]:
        """All broker ids, root first, level by level."""

        def level_nodes(level: int) -> Iterator[BrokerId]:
            if level == 0:
                yield ()
                return
            for prefix in level_nodes(level - 1):
                for digit in range(self.arity):
                    yield prefix + (digit,)

        for level in range(self.depth + 1):
            yield from level_nodes(level)

    def leaves(self) -> list[BrokerId]:
        """Brokers at the maximum depth."""
        return [node for node in self.brokers() if len(node) == self.depth]

    def subscribers(self) -> list[SubscriberId]:
        """One subscriber below every leaf broker."""
        return [("S", leaf) for leaf in self.leaves()]

    def broker_count(self) -> int:
        """Number of brokers (including the root/publisher)."""
        return (self.arity ** (self.depth + 1) - 1) // (self.arity - 1)

    # -- sibling machinery -------------------------------------------------------

    def _shifted_sibling(self, node: BrokerId, shift: int) -> BrokerId:
        """The sibling of *node* whose last digit is cyclically shifted."""
        if not node:
            raise ValueError("the root has no siblings")
        return node[:-1] + ((node[-1] + shift) % self.arity,)

    # -- edges --------------------------------------------------------------------

    def tree_edges(self) -> list[MultipathEdge]:
        """The original dissemination-tree edges (plus subscriber links)."""
        edges = []
        for node in self.brokers():
            if node:
                edges.append(MultipathEdge(node[:-1], node, True))
        for subscriber in self.subscribers():
            edges.append(MultipathEdge(subscriber[1], subscriber, True))
        return edges

    def extra_edges(self) -> list[MultipathEdge]:
        """Added sibling-of-parent edges for ``ind`` independent paths.

        Every node ``n`` at depth >= 2, and every subscriber, gains an edge
        from each of the ``ind - 1`` cyclically shifted siblings of its
        parent.
        """
        edges = []
        for node in self.brokers():
            if len(node) < 2:
                continue
            parent = node[:-1]
            for shift in range(1, self.ind):
                edges.append(
                    MultipathEdge(self._shifted_sibling(parent, shift), node, False)
                )
        for subscriber in self.subscribers():
            leaf = subscriber[1]
            if len(leaf) < 1:
                continue
            for shift in range(1, self.ind):
                edges.append(
                    MultipathEdge(
                        self._shifted_sibling(leaf, shift), subscriber, False
                    )
                )
        return edges

    def edge_count(self) -> int:
        """Total edges of ``G_ind`` (construction-cost unit for Fig 8)."""
        return len(self.tree_edges()) + len(self.extra_edges())

    # -- independent paths (Theorem 4.2) ---------------------------------------

    def tree_path(self, subscriber: SubscriberId) -> list[Hashable]:
        """The original path ``<P, n_1, ..., n_d, S>``."""
        leaf = subscriber[1]
        path: list[Hashable] = [()]
        for level in range(1, len(leaf) + 1):
            path.append(leaf[:level])
        path.append(subscriber)
        return path

    def independent_paths(
        self, subscriber: SubscriberId, count: int | None = None
    ) -> list[list[Hashable]]:
        """``count`` pairwise independent publisher-to-subscriber paths.

        Path ``j`` (0-based shift) routes through ``sigma_j(n_i)``, the
        ``j``-shifted sibling of each original-path node.  Defaults to all
        ``ind`` paths.
        """
        if count is None:
            count = self.ind
        if not 1 <= count <= self.ind:
            raise ValueError(
                f"can construct between 1 and {self.ind} paths, got {count}"
            )
        base = self.tree_path(subscriber)
        interior = base[1:-1]  # n_1 .. n_d
        paths = []
        for shift in range(count):
            shifted = [self._shifted_sibling(node, shift) for node in interior]
            paths.append([base[0], *shifted, base[-1]])
        return paths

    @staticmethod
    def paths_independent(paths: list[list[Hashable]]) -> bool:
        """Check pairwise node-disjointness (excluding the endpoints)."""
        for i, first in enumerate(paths):
            for second in paths[i + 1:]:
                if set(first[1:-1]) & set(second[1:-1]):
                    return False
        return True

    def path_edges_exist(self, path: list[Hashable]) -> bool:
        """Verify every hop of *path* is an edge of ``G_ind``."""
        edges = {
            (edge.source, edge.target)
            for edge in self.tree_edges() + self.extra_edges()
        }
        return all(
            (a, b) in edges for a, b in zip(path, path[1:])
        )

    # -- construction cost (Fig 8) -----------------------------------------------

    def construction_cost(
        self, paths_per_token: dict[object, int] | None = None
    ) -> float:
        """Route-setup cost of the dissemination network.

        The network sets up ``ind_t`` routes per token ``t`` (each route
        costs one path worth of per-hop state).  With no token map, the
        cost of a single token using all ``ind`` paths is returned.
        Normalizing by the ``ind = 1`` cost reproduces Fig 8's y-axis.
        """
        path_length = self.depth + 1
        if paths_per_token is None:
            return float(self.ind * path_length)
        return float(
            sum(
                min(max(1, paths), self.ind) * path_length
                for paths in paths_per_token.values()
            )
        )


def required_ind(max_frequency: float, min_frequency: float) -> int:
    """Ideal ``ind_max = max_t lambda_t / min_t lambda_t`` (Section 5.2.2)."""
    if min_frequency <= 0:
        raise ValueError("frequencies must be positive")
    return max(1, math.ceil(max_frequency / min_frequency))
