"""Internet topology substrate.

Replaces the GT-ITM topology generator the paper used (Section 5.2):

- :mod:`repro.topology.transit_stub` -- a transit-stub Internet model that
  reproduces the paper's link statistics (RTTs 24-184 ms, mean ~74 ms,
  standard deviation ~50 ms);
- :mod:`repro.topology.tree` -- embedding of the complete ``a``-ary broker
  tree onto topology nodes, yielding per-link latencies;
- :mod:`repro.topology.multipath` -- the multi-path dissemination network
  ``G_ind`` of Section 4.2.1 (sibling-of-parent edges, independent path
  construction per Theorem 4.2, construction-cost accounting for Fig 8).
"""

from repro.topology.multipath import MultipathNetwork
from repro.topology.transit_stub import TransitStubTopology
from repro.topology.tree import DisseminationTree

__all__ = ["DisseminationTree", "MultipathNetwork", "TransitStubTopology"]
