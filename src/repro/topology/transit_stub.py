"""A transit-stub Internet topology generator (GT-ITM substitute).

GT-ITM [Zegura et al., INFOCOM'96] models the Internet as a two-level
hierarchy: a small core of *transit* domains, each of whose routers anchors
several *stub* domains.  The paper only consumes the end-to-end delays this
model produces (RTTs between 24 and 184 ms, mean ~74 ms, sd ~50 ms over the
63 pub-sub nodes); this module reproduces those statistics with the same
structural recipe:

- transit-transit edges carry long continental delays,
- transit-stub access edges medium delays,
- intra-stub edges short metro delays,

and end-to-end latency is the shortest-path sum.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

# One-way delay ranges per edge class (seconds), chosen so that sampled
# pub-sub overlay RTTs land in the paper's 24-184 ms envelope (measured:
# min ~25, max ~174, mean ~86, sd ~35 over 63 overlay nodes).  The
# transit-transit base delay is additionally scaled by the inter-domain
# distance, giving the heavy tail of continental links.
_TRANSIT_TRANSIT_DELAY = (0.014, 0.022)
_TRANSIT_STUB_DELAY = (0.006, 0.010)
_INTRA_TRANSIT_DELAY = (0.002, 0.005)
_INTRA_STUB_DELAY = (0.004, 0.007)


@dataclass(frozen=True)
class TopologyStats:
    """Summary statistics of pairwise RTTs between overlay nodes."""

    min_rtt: float
    max_rtt: float
    mean_rtt: float
    std_rtt: float


class TransitStubTopology:
    """A random transit-stub graph with per-edge one-way delays."""

    def __init__(
        self,
        transit_domains: int = 4,
        transit_nodes_per_domain: int = 4,
        stub_domains_per_transit_node: int = 4,
        stub_nodes_per_domain: int = 4,
        seed: int = 7,
    ):
        if min(
            transit_domains,
            transit_nodes_per_domain,
            stub_domains_per_transit_node,
            stub_nodes_per_domain,
        ) < 1:
            raise ValueError("all topology dimensions must be positive")
        self.rng = random.Random(seed)
        self.graph = nx.Graph()
        self.transit_nodes: list[int] = []
        self.stub_nodes: list[int] = []
        self.stub_domains: list[list[int]] = []
        self._build(
            transit_domains,
            transit_nodes_per_domain,
            stub_domains_per_transit_node,
            stub_nodes_per_domain,
        )
        self._delays: dict[int, dict[int, float]] | None = None

    def _add_edge(self, a: int, b: int, delay_range: tuple[float, float]) -> None:
        self.graph.add_edge(a, b, delay=self.rng.uniform(*delay_range))

    def _build(
        self,
        transit_domains: int,
        transit_nodes_per_domain: int,
        stub_domains: int,
        stub_nodes: int,
    ) -> None:
        next_id = 0
        domain_nodes: list[list[int]] = []
        for _ in range(transit_domains):
            nodes = list(range(next_id, next_id + transit_nodes_per_domain))
            next_id += transit_nodes_per_domain
            domain_nodes.append(nodes)
            self.transit_nodes.extend(nodes)
            # Ring plus a chord keeps each transit domain 2-connected.
            for i, node in enumerate(nodes):
                self._add_edge(
                    node, nodes[(i + 1) % len(nodes)], _INTRA_TRANSIT_DELAY
                )
            if len(nodes) > 3:
                self._add_edge(nodes[0], nodes[len(nodes) // 2],
                               _INTRA_TRANSIT_DELAY)

        # Fully mesh domain gateways; delay scales with the inter-domain
        # distance (domains laid out on a line), producing both nearby and
        # far continental pairs.
        for i in range(transit_domains):
            for j in range(i + 1, transit_domains):
                distance = j - i
                self.graph.add_edge(
                    domain_nodes[i][0],
                    domain_nodes[j][0],
                    delay=distance * self.rng.uniform(*_TRANSIT_TRANSIT_DELAY),
                )

        for transit_node in list(self.transit_nodes):
            for _ in range(stub_domains):
                nodes = list(range(next_id, next_id + stub_nodes))
                next_id += stub_nodes
                self.stub_nodes.extend(nodes)
                self.stub_domains.append(nodes)
                for i, node in enumerate(nodes):
                    if i:
                        self._add_edge(node, nodes[i - 1], _INTRA_STUB_DELAY)
                self._add_edge(nodes[0], transit_node, _TRANSIT_STUB_DELAY)

    # -- delay queries -----------------------------------------------------

    def _all_delays(self) -> dict[int, dict[int, float]]:
        if self._delays is None:
            self._delays = dict(
                nx.all_pairs_dijkstra_path_length(self.graph, weight="delay")
            )
        return self._delays

    def one_way_delay(self, a: int, b: int) -> float:
        """Shortest-path one-way delay between two topology nodes."""
        return self._all_delays()[a][b]

    def rtt(self, a: int, b: int) -> float:
        """Round-trip time between two topology nodes."""
        return 2.0 * self.one_way_delay(a, b)

    def sample_overlay(self, count: int) -> list[int]:
        """Pick *count* stub nodes to host pub-sub overlay nodes.

        Nodes are spread across stub domains (at most one per domain until
        domains are exhausted), mirroring how GT-ITM evaluations place
        wide-area overlay nodes.
        """
        if count > len(self.stub_nodes):
            raise ValueError(
                f"topology has only {len(self.stub_nodes)} stub nodes, "
                f"{count} requested"
            )
        domains = list(self.stub_domains)
        self.rng.shuffle(domains)
        chosen: list[int] = []
        round_index = 0
        while len(chosen) < count:
            progressed = False
            for domain in domains:
                if len(chosen) >= count:
                    break
                if round_index < len(domain):
                    chosen.append(domain[round_index])
                    progressed = True
            if not progressed:
                break
            round_index += 1
        return chosen[:count]

    def overlay_stats(self, overlay: list[int]) -> TopologyStats:
        """RTT statistics over all pairs of overlay nodes."""
        rtts = [
            self.rtt(a, b)
            for i, a in enumerate(overlay)
            for b in overlay[i + 1:]
        ]
        if not rtts:
            raise ValueError("need at least two overlay nodes")
        mean = sum(rtts) / len(rtts)
        variance = sum((value - mean) ** 2 for value in rtts) / len(rtts)
        return TopologyStats(min(rtts), max(rtts), mean, variance**0.5)
