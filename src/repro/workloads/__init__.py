"""Synthetic workloads (Section 5.2).

No real traces exist for this domain (the paper says as much), so the
evaluation uses a synthetic workload: 128 topics under a Zipf-like
popularity distribution, split evenly into numeric, category, string and
plain-topic attribute types, with Gaussian numeric subscription ranges and
Zipf-distributed string lengths.

- :mod:`repro.workloads.zipf` -- Zipf sampling;
- :mod:`repro.workloads.generator` -- the full Section 5.2 workload
  (topics, subscriptions, publications).
"""

from repro.workloads.generator import (
    PaperWorkload,
    Subscription,
    TopicSpec,
    WorkloadConfig,
)
from repro.workloads.zipf import ZipfSampler, zipf_weights

__all__ = [
    "PaperWorkload",
    "Subscription",
    "TopicSpec",
    "WorkloadConfig",
    "ZipfSampler",
    "zipf_weights",
]
