"""Zipf-like popularity sampling.

The workload uses a Zipf-like distribution (the paper cites the Gnutella
measurement study [16]): item at popularity rank ``k`` has weight
``1 / k^s``.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def zipf_weights(count: int, exponent: float = 1.0) -> list[float]:
    """Normalized Zipf weights for ranks ``1..count``.

    >>> weights = zipf_weights(4)
    >>> round(sum(weights), 10)
    1.0
    >>> weights[0] > weights[-1]
    True
    """
    if count < 1:
        raise ValueError("need at least one rank")
    if exponent < 0:
        raise ValueError("Zipf exponent must be non-negative")
    raw = [1.0 / (rank**exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


class ZipfSampler:
    """Samples items from a ranked population under Zipf weights.

    Deterministic by default: without an explicit *rng* the sampler draws
    from ``random.Random(seed)``, matching the seeded-RNG convention used
    everywhere else in the repo (two samplers built with the same
    arguments produce the same stream).
    """

    def __init__(
        self,
        items: Sequence[T],
        exponent: float = 1.0,
        rng: random.Random | None = None,
        seed: int = 0,
    ):
        if not items:
            raise ValueError("cannot sample from an empty population")
        self.items = list(items)
        self.weights = zipf_weights(len(self.items), exponent)
        self.rng = rng if rng is not None else random.Random(seed)

    def sample(self) -> T:
        """One item, drawn with Zipf probability by rank."""
        return self.rng.choices(self.items, weights=self.weights, k=1)[0]

    def sample_distinct(self, count: int) -> list[T]:
        """*count* distinct items, drawn by iterated Zipf rejection.

        Models a subscriber picking several topics of interest: popular
        topics are chosen first, but each at most once.
        """
        if count > len(self.items):
            raise ValueError(
                f"cannot draw {count} distinct items from "
                f"{len(self.items)}"
            )
        chosen: list[T] = []
        chosen_set: set[int] = set()
        while len(chosen) < count:
            index = self.rng.choices(
                range(len(self.items)), weights=self.weights, k=1
            )[0]
            if index not in chosen_set:
                chosen_set.add(index)
                chosen.append(self.items[index])
        return chosen

    def frequency_of(self, item: T) -> float:
        """The a-priori sampling probability of *item*."""
        return self.weights[self.items.index(item)]
