"""The Section 5.2 synthetic workload.

128 topics with Zipf popularity; each subscriber subscribes to 32 of them
(Zipf-chosen, distinct).  Topics split evenly into four matching types:

- **numeric**: range 256, least count 4 (NAKT height 6, 127 elements);
  subscription ranges from a Gaussian with mean 128 and sd 32 (we draw the
  two endpoints from that Gaussian and sort, an interpretation that lands
  the average cover size in the paper's few-keys regime);
- **category**: trees of height 4 with per-node fanout uniform in [2, 4]
  (~82 elements on average); events carry leaf categories, subscriptions a
  uniformly random element;
- **string**: values over a small alphabet with Zipf lengths in [1, 8];
  subscriptions are prefixes;
- **plain**: topic-only matching.

Publications are 256 bytes.
"""

from __future__ import annotations

import random
import string as string_module
from dataclasses import dataclass

from repro.core.category import CategoryKeySpace, CategoryTree
from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.core.strings import StringKeySpace
from repro.siena.events import Event
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op
from repro.workloads.zipf import ZipfSampler

_ATTRIBUTE_KINDS = ("numeric", "category", "string", "plain")
_STRING_ALPHABET = string_module.ascii_lowercase[:6]


@dataclass
class WorkloadConfig:
    """Tunable parameters; defaults reproduce Section 5.2 exactly."""

    num_topics: int = 128
    topics_per_subscriber: int = 32
    zipf_exponent: float = 1.0
    numeric_range: int = 256
    numeric_least_count: int = 4
    subscription_mean: float = 128.0
    subscription_std: float = 32.0
    category_height: int = 4
    category_fanout: tuple[int, int] = (2, 4)
    string_max_length: int = 8
    message_bytes: int = 256
    seed: int = 17


@dataclass(frozen=True)
class TopicSpec:
    """One topic: its matching kind and (for secured kinds) key space."""

    name: str
    kind: str
    rank: int
    schema: CompositeKeySpace
    category_tree: CategoryTree | None = None

    @property
    def attribute(self) -> str:
        """Name of the topic's securable attribute (plain topics have none)."""
        return {"numeric": "value", "category": "category",
                "string": "text", "plain": ""}[self.kind]


@dataclass(frozen=True)
class Subscription:
    """One subscriber's interest in one topic."""

    subscriber: str
    topic: TopicSpec
    filter: Filter
    #: numeric subscriptions keep their range for baseline accounting
    numeric_range: tuple[int, int] | None = None


class PaperWorkload:
    """Generator for topics, subscriptions and publications."""

    def __init__(self, config: WorkloadConfig | None = None):
        self.config = config or WorkloadConfig()
        if self.config.num_topics % len(_ATTRIBUTE_KINDS):
            raise ValueError(
                "num_topics must divide evenly across the four attribute kinds"
            )
        self.rng = random.Random(self.config.seed)
        self.topics: list[TopicSpec] = self._build_topics()
        self.topic_sampler = ZipfSampler(
            self.topics, self.config.zipf_exponent, self.rng
        )

    # -- topics ----------------------------------------------------------------

    def _build_topics(self) -> list[TopicSpec]:
        topics = []
        per_kind = self.config.num_topics // len(_ATTRIBUTE_KINDS)
        # Interleave kinds across popularity ranks so every kind spans the
        # popularity spectrum (rank k is the k-th most popular topic).
        for rank in range(self.config.num_topics):
            kind = _ATTRIBUTE_KINDS[rank % len(_ATTRIBUTE_KINDS)]
            name = f"{kind}-topic-{rank // len(_ATTRIBUTE_KINDS)}"
            topics.append(self._build_topic(name, kind, rank))
        assert sum(t.kind == "numeric" for t in topics) == per_kind
        return topics

    def _build_topic(self, name: str, kind: str, rank: int) -> TopicSpec:
        if kind == "numeric":
            space = NumericKeySpace(
                "value",
                self.config.numeric_range,
                least_count=self.config.numeric_least_count,
            )
            return TopicSpec(name, kind, rank, CompositeKeySpace({"value": space}))
        if kind == "category":
            tree = self._random_category_tree(name)
            space = CategoryKeySpace("category", tree)
            return TopicSpec(
                name, kind, rank, CompositeKeySpace({"category": space}),
                category_tree=tree,
            )
        if kind == "string":
            space = StringKeySpace(
                "text", max_length=self.config.string_max_length
            )
            return TopicSpec(name, kind, rank, CompositeKeySpace({"text": space}))
        return TopicSpec(name, kind, rank, CompositeKeySpace({}))

    def _random_category_tree(self, topic_name: str) -> CategoryTree:
        tree = CategoryTree.from_spec(f"{topic_name}.root", {})
        counter = 0
        frontier = [f"{topic_name}.root"]
        for _ in range(self.config.category_height):
            next_frontier = []
            for parent in frontier:
                fanout = self.rng.randint(*self.config.category_fanout)
                for _ in range(fanout):
                    label = f"{topic_name}.c{counter}"
                    counter += 1
                    tree.add_category(label, parent)
                    next_frontier.append(label)
            frontier = next_frontier
        return tree

    # -- subscriptions ------------------------------------------------------------

    def subscriber_topics(self, subscriber: str) -> list[TopicSpec]:
        """The topics one subscriber is interested in (Zipf, distinct)."""
        return self.topic_sampler.sample_distinct(
            self.config.topics_per_subscriber
        )

    def subscription_for(
        self, subscriber: str, topic: TopicSpec
    ) -> Subscription:
        """Draw one subscription filter for *topic*."""
        if topic.kind == "numeric":
            low, high = self._numeric_range()
            return Subscription(
                subscriber,
                topic,
                Filter.numeric_range(topic.name, "value", low, high),
                numeric_range=(low, high),
            )
        if topic.kind == "category":
            labels = list(topic.category_tree.labels())
            label = self.rng.choice(labels)
            # Category values travel as ontology path strings, so plain
            # Siena brokers evaluate subsumption as PREFIX matching; the
            # key space enforces the same semantics cryptographically.
            path = topic.category_tree.path_string(label)
            return Subscription(
                subscriber,
                topic,
                Filter.of(
                    Constraint("topic", Op.EQ, topic.name),
                    Constraint("category", Op.PREFIX, path),
                ),
            )
        if topic.kind == "string":
            value = self._random_string()
            prefix_length = self.rng.randint(1, len(value))
            return Subscription(
                subscriber,
                topic,
                Filter.of(
                    Constraint("topic", Op.EQ, topic.name),
                    Constraint("text", Op.PREFIX, value[:prefix_length]),
                ),
            )
        return Subscription(subscriber, topic, Filter.topic(topic.name))

    def subscriptions_for(self, subscriber: str) -> list[Subscription]:
        """A subscriber's full interest set (32 subscriptions)."""
        return [
            self.subscription_for(subscriber, topic)
            for topic in self.subscriber_topics(subscriber)
        ]

    def _numeric_range(self) -> tuple[int, int]:
        limit = self.config.numeric_range - 1

        def draw() -> int:
            value = self.rng.gauss(
                self.config.subscription_mean, self.config.subscription_std
            )
            return max(0, min(limit, int(value)))

        first, second = draw(), draw()
        return (first, second) if first <= second else (second, first)

    # -- publications -----------------------------------------------------------------

    def _random_string(self) -> str:
        weights = [1.0 / length for length in
                   range(1, self.config.string_max_length + 1)]
        length = self.rng.choices(
            range(1, self.config.string_max_length + 1), weights
        )[0]
        return "".join(
            self.rng.choice(_STRING_ALPHABET) for _ in range(length)
        )

    def random_event(self, topic: TopicSpec | None = None,
                     publisher: str = "P") -> Event:
        """One publication: Zipf topic, kind-appropriate value, payload."""
        if topic is None:
            topic = self.topic_sampler.sample()
        attributes: dict[str, object] = {
            "topic": topic.name,
            "message": "x" * self.config.message_bytes,
        }
        if topic.kind == "numeric":
            attributes["value"] = self.rng.randint(
                0, self.config.numeric_range - 1
            )
        elif topic.kind == "category":
            leaf = self.rng.choice(topic.category_tree.leaves())
            attributes["category"] = topic.category_tree.path_string(leaf)
        elif topic.kind == "string":
            attributes["text"] = self._random_string()
        return Event(attributes, publisher=publisher)

    # -- services ---------------------------------------------------------------------

    def build_kdc(self, master_key: bytes | None = None,
                  epoch_length: float = 3600.0) -> KDC:
        """A KDC with every workload topic registered."""
        kdc = KDC(master_key=master_key)
        for topic in self.topics:
            kdc.register_topic(topic.name, topic.schema, epoch_length)
        return kdc

    def topic_by_name(self, name: str) -> TopicSpec:
        """Lookup a topic spec by name."""
        for topic in self.topics:
            if topic.name == name:
                return topic
        raise KeyError(f"unknown topic {name!r}")

    def frequencies(self) -> dict[str, float]:
        """A-priori publication frequency per topic (the Zipf weights)."""
        return {
            topic.name: self.topic_sampler.weights[index]
            for index, topic in enumerate(self.topics)
        }
