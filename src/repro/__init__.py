"""PSGuard: secure event dissemination in publish-subscribe networks.

A from-scratch reproduction of Srivatsa & Liu, ICDCS 2007.  The blessed
surface is re-exported here: :func:`connect` / :class:`System` stand up
a fully wired instance in one call, :class:`Event` / :class:`Filter`
express publications and subscriptions, :class:`KDC` /
:class:`Publisher` / :class:`Subscriber` are the key-management
principals, and :class:`Observability` / :class:`MetricsRegistry` /
:class:`Tracer` the metrics/tracing layer.  Deeper machinery stays in
its modules -- :mod:`repro.core` (key derivation, epochs, the
replicated KDC), :mod:`repro.siena` (content-based routing),
:mod:`repro.routing` (probabilistic multi-path), :mod:`repro.net`
(the timed fault-injected overlay), :mod:`repro.flow` (overload
protection: bounded queues, credits, admission control -- its headline
names are re-exported here too), :mod:`repro.parallel` (process-pool
sharded matching and crypto offload; :class:`ParallelPolicy` is
re-exported here), :mod:`repro.rekey` (the live key-lifecycle plane:
GRANT/REKEY over sockets; its :class:`~repro.core.renewal.
RenewalPolicy` knob is re-exported here), :mod:`repro.obs`
(instruments and exporters); ``docs/API.md`` holds a one-page tour and
``python -m repro`` a command-line interface.

Failures raise exceptions from the :mod:`repro.errors` hierarchy --
every package-specific error derives from :class:`ReproError` (and,
where one replaced a stdlib type, still from the original:
:class:`GrantDenied` is a ``PermissionError``, :class:`FrameError` a
``ValueError``), so ``except ReproError`` catches everything PSGuard
raises deliberately.
"""

from repro.api import System, SystemBuilder, SystemOptions, connect
from repro.core.renewal import RenewalPolicy
from repro.errors import (
    FrameError,
    GrantDenied,
    GrantExpired,
    KDCUnavailable,
    ReproError,
)
from repro.flow import (
    BEST_EFFORT,
    HIGH,
    NORMAL,
    AdmissionController,
    AIMDRateLimiter,
    FlowControlPolicy,
    RateLimited,
    priority_of,
    with_priority,
)
from repro.core import (
    KDC,
    AuthorizationGrant,
    CompositeKeySpace,
    NumericKeySpace,
    Publisher,
    SealedEvent,
    StringKeySpace,
    Subscriber,
)
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.parallel import ParallelPolicy
from repro.siena import BrokerTree, Event, Filter

__version__ = "1.2.0"

__all__ = [
    "AdmissionController",
    "AIMDRateLimiter",
    "AuthorizationGrant",
    "BEST_EFFORT",
    "BrokerTree",
    "CompositeKeySpace",
    "Event",
    "Filter",
    "FlowControlPolicy",
    "FrameError",
    "GrantDenied",
    "GrantExpired",
    "HIGH",
    "KDC",
    "KDCUnavailable",
    "MetricsRegistry",
    "NORMAL",
    "NumericKeySpace",
    "Observability",
    "ParallelPolicy",
    "Publisher",
    "RateLimited",
    "RenewalPolicy",
    "ReproError",
    "SealedEvent",
    "StringKeySpace",
    "Subscriber",
    "System",
    "SystemBuilder",
    "SystemOptions",
    "Tracer",
    "connect",
    "priority_of",
    "with_priority",
    "__version__",
]
