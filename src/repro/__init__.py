"""PSGuard: secure event dissemination in publish-subscribe networks.

A from-scratch reproduction of Srivatsa & Liu, ICDCS 2007.  Start with
:mod:`repro.core` (key management: KDC, publishers, subscribers),
:mod:`repro.siena` (the content-based pub-sub substrate) and
:mod:`repro.routing` (tokenized matching and probabilistic multi-path
routing); ``docs/API.md`` holds a one-page tour and ``python -m repro``
a command-line interface.
"""

__version__ = "1.0.0"
