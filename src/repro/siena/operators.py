"""Siena attribute operators, matching, and constraint implication.

The covering relation of Section 2.1 -- filter ``f`` covers ``f'`` when
``(name' op' value') => (name op value)`` -- bottoms out in per-constraint
Boolean implication between (operator, value) pairs, implemented here by
:func:`implies`.
"""

from __future__ import annotations

import enum
from typing import Any

AttributeValue = int | float | str | bytes


class Op(enum.Enum):
    """Matching operators supported by the pub-sub core.

    ``EQ``/``NE``/inequalities work on numbers and strings; ``PREFIX``,
    ``SUFFIX`` and ``SUBSTRING`` are string operators; ``ANY`` matches every
    event that carries the attribute at all.
    """

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PREFIX = "prefix"
    SUFFIX = "suffix"
    SUBSTRING = "substr"
    ANY = "any"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Op.{self.name}"


_NUMERIC_OPS = {Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE, Op.ANY}
_STRING_OPS = {
    Op.EQ,
    Op.NE,
    Op.LT,
    Op.LE,
    Op.GT,
    Op.GE,
    Op.PREFIX,
    Op.SUFFIX,
    Op.SUBSTRING,
    Op.ANY,
}


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def valid_operand(op: Op, value: Any) -> bool:
    """Whether *value* is a sensible constraint operand for *op*."""
    if op is Op.ANY:
        return value is None
    if _is_numeric(value):
        return op in _NUMERIC_OPS
    if isinstance(value, str):
        return op in _STRING_OPS
    return False


def matches(op: Op, constraint_value: Any, event_value: Any) -> bool:
    """Evaluate ``event_value op constraint_value``.

    Cross-type comparisons never match (a numeric constraint cannot match a
    string-valued attribute), mirroring Siena's typed attribute model.
    """
    if op is Op.ANY:
        return True
    if _is_numeric(constraint_value) != _is_numeric(event_value):
        return False
    if isinstance(constraint_value, str) != isinstance(event_value, str):
        return False
    if op is Op.EQ:
        return event_value == constraint_value
    if op is Op.NE:
        return event_value != constraint_value
    if op is Op.LT:
        return event_value < constraint_value
    if op is Op.LE:
        return event_value <= constraint_value
    if op is Op.GT:
        return event_value > constraint_value
    if op is Op.GE:
        return event_value >= constraint_value
    if not isinstance(event_value, str):
        return False
    if op is Op.PREFIX:
        return event_value.startswith(constraint_value)
    if op is Op.SUFFIX:
        return event_value.endswith(constraint_value)
    if op is Op.SUBSTRING:
        return constraint_value in event_value
    raise AssertionError(f"unhandled operator {op}")  # pragma: no cover


def implies(narrow_op: Op, narrow_value: Any, wide_op: Op, wide_value: Any) -> bool:
    """Whether ``(x narrow_op narrow_value)`` implies ``(x wide_op wide_value)``.

    This is the per-constraint building block of the covering relation: the
    *narrow* constraint comes from the covered (more specific) filter and
    the *wide* constraint from the covering (more general) one.  The
    implementation is sound but intentionally not complete for every exotic
    operator pair -- exactly like Siena, an unrecognized pair conservatively
    returns ``False``, which only costs an extra forwarded subscription,
    never a missed event.
    """
    if wide_op is Op.ANY:
        return True
    if narrow_op is Op.ANY:
        return False
    if _is_numeric(narrow_value) != _is_numeric(wide_value):
        return False

    if narrow_op is Op.EQ:
        # x == v implies (v wide_op wide_value).
        return matches(wide_op, wide_value, narrow_value)

    numeric = _is_numeric(narrow_value)
    if narrow_op in (Op.GT, Op.GE) and wide_op in (Op.GT, Op.GE):
        if wide_op is Op.GT and narrow_op is Op.GE:
            return narrow_value > wide_value
        return narrow_value >= wide_value
    if narrow_op in (Op.LT, Op.LE) and wide_op in (Op.LT, Op.LE):
        if wide_op is Op.LT and narrow_op is Op.LE:
            return narrow_value < wide_value
        return narrow_value <= wide_value
    if narrow_op in (Op.GT, Op.GE) and wide_op is Op.NE:
        if numeric and isinstance(narrow_value, int) and isinstance(wide_value, int):
            threshold = narrow_value + 1 if narrow_op is Op.GT else narrow_value
            return wide_value < threshold
        return (
            wide_value < narrow_value
            if narrow_op is Op.GE
            else wide_value <= narrow_value
        )
    if narrow_op in (Op.LT, Op.LE) and wide_op is Op.NE:
        if numeric and isinstance(narrow_value, int) and isinstance(wide_value, int):
            threshold = narrow_value - 1 if narrow_op is Op.LT else narrow_value
            return wide_value > threshold
        return (
            wide_value > narrow_value
            if narrow_op is Op.LE
            else wide_value >= narrow_value
        )
    if narrow_op is Op.NE and wide_op is Op.NE:
        return narrow_value == wide_value

    if isinstance(narrow_value, str) and isinstance(wide_value, str):
        if narrow_op is Op.PREFIX and wide_op is Op.PREFIX:
            return narrow_value.startswith(wide_value)
        if narrow_op is Op.SUFFIX and wide_op is Op.SUFFIX:
            return narrow_value.endswith(wide_value)
        if narrow_op in (Op.PREFIX, Op.SUFFIX) and wide_op is Op.SUBSTRING:
            return wide_value in narrow_value
        if narrow_op is Op.SUBSTRING and wide_op is Op.SUBSTRING:
            return wide_value in narrow_value
        if narrow_op is Op.PREFIX and wide_op is Op.GE:
            return narrow_value >= wide_value

    return False
