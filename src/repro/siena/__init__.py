"""A content-based publish-subscribe substrate modeled on Siena.

PSGuard (Section 5.1) is layered on an *unmodified* Siena pub-sub core, so
this package re-implements the slice of Siena that PSGuard relies on
(Carzaniga, Rosenblum, Wolf -- ACM TOCS 2001):

- events are sets of typed, named attributes (:mod:`repro.siena.events`);
- subscriptions are conjunctive filters of per-attribute constraints
  (:mod:`repro.siena.filters`) with the *covering* relation of Section 2.1;
- brokers form a hierarchical (tree) overlay, propagate subscriptions
  upward with the covering optimization, and forward events downward only
  on matching interfaces (:mod:`repro.siena.broker`,
  :mod:`repro.siena.network`).
"""

from repro.siena.broker import Broker
from repro.siena.events import Event
from repro.siena.filters import Constraint, Filter
from repro.siena.network import BrokerTree
from repro.siena.operators import Op
from repro.siena.p2p import AcyclicOverlay, PeerBroker

__all__ = [
    "AcyclicOverlay",
    "Broker",
    "BrokerTree",
    "Constraint",
    "Event",
    "Filter",
    "Op",
    "PeerBroker",
]
