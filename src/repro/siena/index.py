"""A counting-algorithm match index for content-based brokers.

Siena's and Gryphon's performance rests on *sublinear* matching: instead
of testing every filter against every event, constraints are indexed per
attribute and the matcher counts, per filter, how many of its constraints
an event satisfied -- a filter matches when its count reaches its
constraint total (Aguilera et al., PODC '99; the paper's reference [3]).

The index keeps three per-attribute structures:

- **equality buckets**: hash lookup for ``EQ`` constraints;
- **sorted inequality bounds**: binary search finds every satisfied
  ``LT/LE/GT/GE`` constraint;
- **a prefix trie** for ``PREFIX`` constraints (``SUFFIX`` uses the trie
  of reversed patterns; rare operators fall back to a small scan list).

``Broker``/``PeerBroker`` accept the index through the same
``MatchPredicate`` seam used by PSGuard's tokenized matching, and the
test suite checks it agrees with naive matching on randomized workloads.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator

from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.operators import Op

FilterId = int


@dataclass
class _Trie:
    """A character trie mapping prefixes to constraint owners."""

    children: dict[str, "_Trie"] = field(default_factory=dict)
    owners: list[FilterId] = field(default_factory=list)

    def insert(self, text: str, owner: FilterId) -> None:
        node = self
        for character in text:
            node = node.children.setdefault(character, _Trie())
        node.owners.append(owner)

    def remove(self, text: str, owner: FilterId) -> None:
        node = self
        for character in text:
            node = node.children.get(character)
            if node is None:
                return
        if owner in node.owners:
            node.owners.remove(owner)

    def owners_of_prefixes(self, text: str) -> Iterator[FilterId]:
        """Owners of every prefix of *text* (including the empty prefix)."""
        node = self
        yield from node.owners
        for character in text:
            node = node.children.get(character)
            if node is None:
                return
            yield from node.owners


@dataclass
class _AttributeIndex:
    """All indexed constraints on one attribute name."""

    equals: dict[object, list[FilterId]] = field(
        default_factory=lambda: defaultdict(list)
    )
    #: (bound, owner) sorted by bound, for each inequality class
    lower_bounds_open: list[tuple[float, FilterId]] = field(
        default_factory=list
    )  # GT
    lower_bounds_closed: list[tuple[float, FilterId]] = field(
        default_factory=list
    )  # GE
    upper_bounds_open: list[tuple[float, FilterId]] = field(
        default_factory=list
    )  # LT
    upper_bounds_closed: list[tuple[float, FilterId]] = field(
        default_factory=list
    )  # LE
    prefixes: _Trie = field(default_factory=_Trie)
    suffixes: _Trie = field(default_factory=_Trie)
    #: (op, value, owner) for operators not worth indexing (NE, SUBSTRING)
    scan_list: list[tuple[Op, object, FilterId]] = field(default_factory=list)
    #: owners of ANY constraints (match on mere attribute presence)
    any_owners: list[FilterId] = field(default_factory=list)


class MatchIndex:
    """Equality-partitioned, counting-based matching over dynamic filters.

    Two tiers:

    1. Filters with an equality constraint (the overwhelmingly common
       case -- every topic filter) are *partitioned* by one such
       ``(attribute, value)`` pair; an event only ever touches the
       partitions of its own attribute values, so per-event cost tracks
       the few genuinely relevant filters, not the table.
    2. Equality-free filters fall back to the counting algorithm over the
       per-attribute structures.
    """

    def __init__(self):
        self._attributes: dict[str, _AttributeIndex] = defaultdict(
            _AttributeIndex
        )
        self._constraint_totals: dict[FilterId, int] = {}
        self._filters: dict[FilterId, Filter] = {}
        #: (attribute, value) -> ids of filters partitioned there
        self._partitions: dict[tuple[str, object], list[FilterId]] = (
            defaultdict(list)
        )
        self._partition_of: dict[FilterId, tuple[str, object]] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._filters)

    @staticmethod
    def _partition_key(subscription: Filter) -> tuple[str, object] | None:
        """The EQ constraint to partition under (topic preferred)."""
        chosen = None
        for constraint in subscription:
            if constraint.op is not Op.EQ:
                continue
            if constraint.name == "topic":
                return ("topic", constraint.value)
            if chosen is None:
                chosen = (constraint.name, constraint.value)
        return chosen

    # -- maintenance ---------------------------------------------------------

    def add(self, subscription: Filter) -> FilterId:
        """Index *subscription*; returns its id for later removal."""
        filter_id = self._next_id
        self._next_id += 1
        self._filters[filter_id] = subscription
        partition = self._partition_key(subscription)
        if partition is not None:
            self._partitions[partition].append(filter_id)
            self._partition_of[filter_id] = partition
            return filter_id
        self._constraint_totals[filter_id] = len(subscription.constraints)
        for constraint in subscription:
            index = self._attributes[constraint.name]
            if constraint.op is Op.EQ:
                index.equals[constraint.value].append(filter_id)
            elif constraint.op is Op.GT and not isinstance(
                constraint.value, str
            ):
                bisect.insort(
                    index.lower_bounds_open, (constraint.value, filter_id)
                )
            elif constraint.op is Op.GE and not isinstance(
                constraint.value, str
            ):
                bisect.insort(
                    index.lower_bounds_closed, (constraint.value, filter_id)
                )
            elif constraint.op is Op.LT and not isinstance(
                constraint.value, str
            ):
                bisect.insort(
                    index.upper_bounds_open, (constraint.value, filter_id)
                )
            elif constraint.op is Op.LE and not isinstance(
                constraint.value, str
            ):
                bisect.insort(
                    index.upper_bounds_closed, (constraint.value, filter_id)
                )
            elif constraint.op is Op.PREFIX:
                index.prefixes.insert(str(constraint.value), filter_id)
            elif constraint.op is Op.SUFFIX:
                index.suffixes.insert(str(constraint.value)[::-1], filter_id)
            elif constraint.op is Op.ANY:
                index.any_owners.append(filter_id)
            else:
                index.scan_list.append(
                    (constraint.op, constraint.value, filter_id)
                )
        return filter_id

    def remove(self, filter_id: FilterId) -> None:
        """Drop a previously added filter from the index."""
        subscription = self._filters.pop(filter_id, None)
        if subscription is None:
            return
        partition = self._partition_of.pop(filter_id, None)
        if partition is not None:
            owners = self._partitions.get(partition, [])
            if filter_id in owners:
                owners.remove(filter_id)
            return
        self._constraint_totals.pop(filter_id, None)
        for constraint in subscription:
            index = self._attributes[constraint.name]
            if constraint.op is Op.EQ:
                owners = index.equals.get(constraint.value, [])
                if filter_id in owners:
                    owners.remove(filter_id)
            elif constraint.op in (Op.GT, Op.GE, Op.LT, Op.LE) and not (
                isinstance(constraint.value, str)
            ):
                buckets = {
                    Op.GT: index.lower_bounds_open,
                    Op.GE: index.lower_bounds_closed,
                    Op.LT: index.upper_bounds_open,
                    Op.LE: index.upper_bounds_closed,
                }[constraint.op]
                entry = (constraint.value, filter_id)
                if entry in buckets:
                    buckets.remove(entry)
            elif constraint.op is Op.PREFIX:
                index.prefixes.remove(str(constraint.value), filter_id)
            elif constraint.op is Op.SUFFIX:
                index.suffixes.remove(str(constraint.value)[::-1], filter_id)
            elif constraint.op is Op.ANY:
                if filter_id in index.any_owners:
                    index.any_owners.remove(filter_id)
            else:
                entry = (constraint.op, constraint.value, filter_id)
                if entry in index.scan_list:
                    index.scan_list.remove(entry)

    # -- matching ----------------------------------------------------------------

    def _satisfied_owners(
        self, name: str, value: object
    ) -> Iterator[FilterId]:
        index = self._attributes.get(name)
        if index is None:
            return
        yield from index.any_owners
        yield from index.equals.get(value, ())
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            # GT bounds strictly below the value.
            position = bisect.bisect_left(
                index.lower_bounds_open, (value, -1)
            )
            for bound, owner in index.lower_bounds_open[:position]:
                yield owner
            position = bisect.bisect_right(
                index.lower_bounds_closed, (value, float("inf"))
            )
            for bound, owner in index.lower_bounds_closed[:position]:
                yield owner
            position = bisect.bisect_right(
                index.upper_bounds_open, (value, float("inf"))
            )
            for bound, owner in index.upper_bounds_open[position:]:
                yield owner
            position = bisect.bisect_left(
                index.upper_bounds_closed, (value, -1)
            )
            for bound, owner in index.upper_bounds_closed[position:]:
                yield owner
        elif isinstance(value, str):
            yield from index.prefixes.owners_of_prefixes(value)
            yield from index.suffixes.owners_of_prefixes(value[::-1])
            # String inequalities live in the EQ/scan fallbacks: the
            # numeric bound lists only hold numbers.
        from repro.siena.operators import matches as _matches

        for op, constraint_value, owner in index.scan_list:
            if _matches(op, constraint_value, value):
                yield owner

    def matching(self, event: Event) -> list[Filter]:
        """Every indexed filter the event satisfies."""
        matched: list[Filter] = []
        # Tier 1: the event's own attribute values select the partitions.
        for name, value in event:
            for owner in self._partitions.get((name, value), ()):
                candidate = self._filters[owner]
                if candidate.matches(event):
                    matched.append(candidate)
        # Tier 2: counting over the (rare) equality-free filters.
        counts: dict[FilterId, int] = defaultdict(int)
        for name, value in event:
            for owner in self._satisfied_owners(name, value):
                counts[owner] += 1
        matched.extend(
            self._filters[owner]
            for owner, count in counts.items()
            if count == self._constraint_totals[owner]
        )
        return matched

    def matches(self, event: Event) -> bool:
        """Whether any indexed filter matches *event*."""
        return bool(self.matching(event))


class MatchResultCache:
    """A shared memo of filter-match verdicts for the engine's hot path.

    Both supported match predicates (plaintext :meth:`Filter.matches` and
    PSGuard's tokenized match) are pure functions of the filter and the
    event's *constrained* attribute values, so a verdict can be memoized
    exactly.  The cache key is ``(filter, value-vector)`` where the value
    vector holds the event's values for the filter's constrained attribute
    names (sorted once per filter) -- the "(filter-id, token-set)" of the
    engine design.  Transport bookkeeping attributes such as ``_seq``
    never appear in filters, so a verdict computed at one broker is valid
    at every other broker carrying an equal filter.

    Entries never go stale (purity), but :meth:`invalidate_filter` drops a
    departed filter's entries eagerly so unsubscription releases memory
    immediately instead of waiting for LRU pressure.
    """

    def __init__(
        self,
        capacity: int = 65536,
        registry=None,
        **labels,
    ):
        from repro.obs.lru import LRUCache

        self.cache = LRUCache(capacity, "match_result_cache", registry, **labels)
        # Filters intern to dense integer ids so LRU keys hash and compare
        # on small ints instead of re-walking constraint sets per lookup.
        self._filter_ids: dict[Filter, int] = {}
        self._names: dict[int, tuple[str, ...]] = {}
        # event topic-token value -> the group token value it verified
        # against.  Verification is a property of the routable and the
        # token alone, so a positive memo recorded at one broker is valid
        # at every other (only positives are stored: "no group matched
        # here" depends on which groups the testing broker carried).
        self._topic_groups = LRUCache(
            capacity, "topic_group_memo", registry, **labels
        )

    def _key(self, subscription_filter: Filter, event: Event):
        filter_id = self._filter_ids.get(subscription_filter)
        if filter_id is None:
            filter_id = len(self._filter_ids)
            self._filter_ids[subscription_filter] = filter_id
            self._names[filter_id] = tuple(
                sorted({c.name for c in subscription_filter})
            )
        return (
            filter_id,
            tuple(event.get(name) for name in self._names[filter_id]),
        )

    def lookup(self, subscription_filter: Filter, event: Event):
        """Cached verdict for (filter, event), or None when unknown."""
        return self.cache.get(self._key(subscription_filter, event))

    def store(
        self, subscription_filter: Filter, event: Event, verdict: bool
    ) -> None:
        """Record the verdict computed by the broker's match predicate."""
        self.cache.put(self._key(subscription_filter, event), verdict)

    def topic_group(self, topic_token_value: str) -> str | None:
        """Which group token this event routable verified against, if known."""
        return self._topic_groups.get(topic_token_value)

    def remember_topic_group(
        self, topic_token_value: str, group: str
    ) -> None:
        """Record a *verified* (event routable, group token) pairing."""
        self._topic_groups.put(topic_token_value, group)

    def invalidate_filter(self, subscription_filter: Filter) -> int:
        """Drop all entries for one filter; returns how many were removed."""
        filter_id = self._filter_ids.pop(subscription_filter, None)
        if filter_id is None:
            return 0
        self._names.pop(filter_id, None)
        return self.cache.invalidate_where(lambda key: key[0] == filter_id)

    def stats(self) -> dict:
        """JSON-able hit/miss/eviction summary (see :class:`LRUCache`)."""
        return self.cache.stats()
