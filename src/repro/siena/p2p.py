"""Peer-to-peer (acyclic) Siena overlay.

The paper assumes a hierarchical topology "for the sake of simplicity"
(Section 2.1); full Siena runs on general acyclic broker graphs with no
distinguished root, publishers attached anywhere, and reverse-path
forwarding: subscriptions flood outward (suppressed by covering, per
interface), events follow the recorded subscription paths backwards.

PSGuard composes with this overlay unchanged -- sealed events route by
their routable attributes exactly like plain events -- so the
reproduction also demonstrates the paper's claim that its security layer
is agnostic to the pub-sub core's topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from repro.siena.broker import MatchPredicate, _plain_match
from repro.siena.events import Event
from repro.siena.filters import Filter

Interface = Hashable


@dataclass
class _InterfaceState:
    """What one neighbour/client has asked for, and what we told it."""

    #: filters this interface subscribed through us
    wants: list[Filter] = field(default_factory=list)
    #: filters we have announced to this interface (covering-compressed)
    announced: list[Filter] = field(default_factory=list)


class PeerBroker:
    """A Siena broker for acyclic peer-to-peer overlays.

    Unlike the hierarchical :class:`~repro.siena.broker.Broker`, there is
    no parent: subscriptions propagate to *every* neighbour (except where
    they came from), and events are forwarded only toward recorded
    interest -- reverse-path forwarding.
    """

    def __init__(self, broker_id: Hashable, match: MatchPredicate = _plain_match):
        self.broker_id = broker_id
        self.match = match
        self._neighbors: dict[Interface, Callable[[str, object], None]] = {}
        self._clients: dict[Interface, Callable[[Event], None]] = {}
        self._state: dict[Interface, _InterfaceState] = {}
        self.messages_sent = 0

    # -- wiring ------------------------------------------------------------

    def attach_neighbor(
        self, neighbor_id: Interface, send: Callable[[str, object], None]
    ) -> None:
        """Connect a neighbouring broker."""
        self._neighbors[neighbor_id] = send
        self._state.setdefault(neighbor_id, _InterfaceState())

    def attach_client(
        self, client_id: Interface, deliver: Callable[[Event], None]
    ) -> None:
        """Attach a local client (subscriber and/or publisher endpoint)."""
        self._clients[client_id] = deliver
        self._state.setdefault(client_id, _InterfaceState())

    # -- subscription plane ---------------------------------------------------

    def subscribe(self, interface: Interface, subscription: Filter) -> None:
        """Record interest from *interface*; propagate where not covered."""
        state = self._state.setdefault(interface, _InterfaceState())
        if subscription not in state.wants:
            state.wants.append(subscription)
        for neighbor_id, send in self._neighbors.items():
            if neighbor_id == interface:
                continue
            neighbor_state = self._state[neighbor_id]
            if any(
                announced.covers(subscription)
                for announced in neighbor_state.announced
            ):
                continue
            neighbor_state.announced = [
                announced
                for announced in neighbor_state.announced
                if not subscription.covers(announced)
            ]
            neighbor_state.announced.append(subscription)
            self.messages_sent += 1
            send("subscribe", subscription)

    # -- event plane ------------------------------------------------------------

    def publish(self, event: Event, arrived_from: Interface | None = None) -> None:
        """Reverse-path forward *event* toward recorded interest."""
        for interface, state in self._state.items():
            if interface == arrived_from:
                continue
            if not any(self.match(f, event) for f in state.wants):
                continue
            if interface in self._clients:
                self._clients[interface](event)
            elif interface in self._neighbors:
                self.messages_sent += 1
                self._neighbors[interface]("publish", event)

    # -- introspection -------------------------------------------------------------

    def interest_of(self, interface: Interface) -> list[Filter]:
        """Filters recorded for one interface."""
        state = self._state.get(interface)
        return list(state.wants) if state else []


class AcyclicOverlay:
    """An acyclic broker graph with synchronous in-process dispatch.

    >>> overlay = AcyclicOverlay.line(3)
    >>> inbox = []
    >>> overlay.attach_subscriber("s", 2, inbox.append)
    >>> overlay.subscribe("s", Filter.topic("news"))
    >>> overlay.publish(0, Event({"topic": "news"}))
    >>> len(inbox)
    1
    """

    def __init__(
        self,
        edges: Iterable[tuple[Hashable, Hashable]],
        match: MatchPredicate = _plain_match,
    ):
        self.brokers: dict[Hashable, PeerBroker] = {}
        self._edges: list[tuple[Hashable, Hashable]] = []
        self._subscriber_home: dict[Hashable, Hashable] = {}
        self._match = match
        seen_components: dict[Hashable, Hashable] = {}

        def find(node: Hashable) -> Hashable:
            while seen_components.get(node, node) != node:
                node = seen_components[node]
            return node

        for first, second in edges:
            for node in (first, second):
                if node not in self.brokers:
                    self.brokers[node] = PeerBroker(node, match=match)
                    seen_components[node] = node
            root_a, root_b = find(first), find(second)
            if root_a == root_b:
                raise ValueError(
                    f"edge ({first!r}, {second!r}) closes a cycle; Siena "
                    "overlays must be acyclic"
                )
            seen_components[root_a] = root_b
            self._edges.append((first, second))
            self._link(first, second)
        if not self.brokers:
            raise ValueError("an overlay needs at least one edge")

    # -- construction helpers -------------------------------------------------

    @classmethod
    def line(cls, length: int, match: MatchPredicate = _plain_match
             ) -> "AcyclicOverlay":
        """A chain of *length* brokers (ids 0..length-1)."""
        if length < 2:
            raise ValueError("a line needs at least two brokers")
        return cls(
            [(index, index + 1) for index in range(length - 1)], match=match
        )

    @classmethod
    def star(cls, leaves: int, match: MatchPredicate = _plain_match
             ) -> "AcyclicOverlay":
        """A hub (id 0) with *leaves* spokes (ids 1..leaves)."""
        if leaves < 1:
            raise ValueError("a star needs at least one leaf")
        return cls([(0, index) for index in range(1, leaves + 1)],
                   match=match)

    @classmethod
    def random_tree(
        cls, size: int, seed: int = 7, match: MatchPredicate = _plain_match
    ) -> "AcyclicOverlay":
        """A uniformly random labelled tree over *size* brokers."""
        import random

        if size < 2:
            raise ValueError("a tree needs at least two brokers")
        rng = random.Random(seed)
        edges = [
            (node, rng.randrange(0, node)) for node in range(1, size)
        ]
        return cls(edges, match=match)

    def _link(self, first: Hashable, second: Hashable) -> None:
        def sender(from_id: Hashable, to_id: Hashable):
            def send(kind: str, payload: object) -> None:
                broker = self.brokers[to_id]
                if kind == "subscribe":
                    assert isinstance(payload, Filter)
                    broker.subscribe(from_id, payload)
                else:
                    assert isinstance(payload, Event)
                    broker.publish(payload, arrived_from=from_id)

            return send

        self.brokers[first].attach_neighbor(second, sender(first, second))
        self.brokers[second].attach_neighbor(first, sender(second, first))

    # -- client API -----------------------------------------------------------

    def attach_subscriber(
        self,
        subscriber_id: Hashable,
        broker_id: Hashable,
        deliver: Callable[[Event], None],
    ) -> None:
        """Attach a subscriber endpoint to any broker."""
        if subscriber_id in self._subscriber_home:
            raise ValueError(f"subscriber {subscriber_id!r} already attached")
        self.brokers[broker_id].attach_client(subscriber_id, deliver)
        self._subscriber_home[subscriber_id] = broker_id

    def subscribe(self, subscriber_id: Hashable, subscription: Filter) -> None:
        """Issue a subscription from an attached subscriber."""
        broker_id = self._subscriber_home[subscriber_id]
        self.brokers[broker_id].subscribe(subscriber_id, subscription)

    def publish(self, broker_id: Hashable, event: Event) -> None:
        """Inject an event at any broker (publishers live anywhere)."""
        self.brokers[broker_id].publish(event, arrived_from=None)

    def total_messages(self) -> int:
        """Broker-to-broker messages sent so far."""
        return sum(broker.messages_sent for broker in self.brokers.values())
