"""An in-process hierarchical broker overlay.

``BrokerTree`` wires :class:`~repro.siena.broker.Broker` instances into the
tree topology of the reference model (Section 2.1): the publisher sits at
the root, subscribers attach to leaf brokers, and messages move
synchronously (the discrete-event simulator in :mod:`repro.net` provides
the timed variant used by the throughput/latency experiments).
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Callable, Hashable, Iterable

from repro.siena.broker import Broker, MatchPredicate, _plain_match

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.parallel.executor import ShardedMatcher
    from repro.siena.index import MatchResultCache
from repro.siena.events import Event
from repro.siena.filters import Filter


class BrokerTree:
    """A complete ``arity``-ary tree of brokers with synchronous dispatch.

    >>> tree = BrokerTree(num_brokers=3)
    >>> received = []
    >>> tree.attach_subscriber("s", tree.leaf_ids()[0], received.append)
    >>> tree.subscribe("s", Filter.topic("news"))
    >>> tree.publish(Event({"topic": "news"}))
    1
    >>> len(received)
    1
    """

    def __init__(
        self,
        num_brokers: int = 1,
        arity: int = 2,
        match: MatchPredicate = _plain_match,
        registry: "MetricsRegistry | None" = None,
        match_cache: "MatchResultCache | None" = None,
    ):
        if num_brokers < 1:
            raise ValueError("a broker tree needs at least one broker (the root)")
        if arity < 1:
            raise ValueError("tree arity must be positive")
        self.arity = arity
        self.registry = registry
        self.match_cache = match_cache
        #: Optional sharded parallel matcher; bound via :meth:`bind_parallel`.
        self._parallel: "ShardedMatcher | None" = None
        self.brokers: dict[Hashable, Broker] = {}
        self._subscriber_home: dict[Hashable, Hashable] = {}
        self._client_filters: dict[Hashable, list[Filter]] = {}
        self._message_count = 0

        for index in range(num_brokers):
            self.brokers[index] = Broker(
                index, match=match, registry=registry, match_cache=match_cache
            )
        for index in range(1, num_brokers):
            parent_index = (index - 1) // arity
            self._link(parent_index, index)

    # -- construction -----------------------------------------------------

    def _link(self, parent_id: Hashable, child_id: Hashable) -> None:
        parent = self.brokers[parent_id]
        child = self.brokers[child_id]
        parent.attach_child(child_id, self._sender(parent_id, child_id))
        child.attach_parent(parent_id, self._sender(child_id, parent_id))

    def _sender(
        self, from_id: Hashable, to_id: Hashable
    ) -> Callable[[str, object], None]:
        def send(kind: str, payload: object) -> None:
            self._message_count += 1
            target = self.brokers[to_id]
            if kind == "subscribe":
                assert isinstance(payload, Filter)
                target.subscribe(from_id, payload)
            elif kind == "unsubscribe":
                assert isinstance(payload, Filter)
                target.unsubscribe(from_id, payload)
            elif kind == "publish":
                assert isinstance(payload, Event)
                target.publish(payload, arrived_from=from_id)
            elif kind == "publish_batch":
                assert isinstance(payload, list)
                target.publish(payload, arrived_from=from_id)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown message kind {kind!r}")

        return send

    # -- topology ----------------------------------------------------------

    @property
    def root(self) -> Broker:
        """The root broker, where publishers inject events."""
        return self.brokers[0]

    def leaf_ids(self) -> list[Hashable]:
        """Ids of brokers with no children (subscriber attachment points)."""
        leaves = [
            broker_id
            for broker_id, broker in self.brokers.items()
            if not broker.children
        ]
        return sorted(leaves)

    def depth(self) -> int:
        """Depth of the tree (root at depth 0)."""
        depth = 0
        frontier: Iterable[Hashable] = [0]
        while True:
            next_frontier = [
                child
                for broker_id in frontier
                for child in self.brokers[broker_id].children
            ]
            if not next_frontier:
                return depth
            frontier = next_frontier
            depth += 1

    # -- client API --------------------------------------------------------

    def attach_subscriber(
        self,
        subscriber_id: Hashable,
        broker_id: Hashable,
        deliver: Callable[[Event], None],
    ) -> None:
        """Attach a subscriber endpoint to *broker_id*."""
        if subscriber_id in self._subscriber_home:
            raise ValueError(f"subscriber {subscriber_id!r} already attached")
        self.brokers[broker_id].attach_client(subscriber_id, deliver)
        self._subscriber_home[subscriber_id] = broker_id

    def subscribe(self, subscriber_id: Hashable, subscription_filter: Filter) -> None:
        """Issue a subscription on behalf of an attached subscriber."""
        broker_id = self._subscriber_home.get(subscriber_id)
        if broker_id is None:
            raise KeyError(f"subscriber {subscriber_id!r} is not attached")
        self._client_filters.setdefault(subscriber_id, []).append(
            subscription_filter
        )
        if self._parallel is not None:
            self._parallel.register_filter(subscription_filter)
        self.brokers[broker_id].subscribe(subscriber_id, subscription_filter)

    def unsubscribe(
        self, subscriber_id: Hashable, subscription_filter: Filter
    ) -> None:
        """Withdraw a previously issued subscription."""
        broker_id = self._subscriber_home.get(subscriber_id)
        if broker_id is None:
            raise KeyError(f"subscriber {subscriber_id!r} is not attached")
        issued = self._client_filters.get(subscriber_id, [])
        if subscription_filter in issued:
            issued.remove(subscription_filter)
            if self._parallel is not None:
                self._parallel.unregister_filter(subscription_filter)
        self.brokers[broker_id].unsubscribe(subscriber_id, subscription_filter)

    def bind_parallel(self, matcher: "ShardedMatcher") -> None:
        """Arm the tree with a sharded parallel matcher.

        Every already-issued and future client filter registers with
        *matcher* (unsubscriptions unregister), the tree's shared match
        cache becomes its default verdict sink, and batch publishes prime
        through it unless a call overrides ``parallel=``.
        """
        self._parallel = matcher
        matcher.attach_cache(self.match_cache)
        for filters in self._client_filters.values():
            for subscription_filter in filters:
                matcher.register_filter(subscription_filter)

    def publish(
        self,
        events: "Event | list[Event]",
        *,
        at_time: float = 0.0,
        parallel: "ShardedMatcher | None" = None,
    ) -> int:
        """Inject one event or a batch at the root; returns root fan-out.

        Batch deliveries are identical to publishing each event in order;
        broker-to-broker hops carry one batch message per interface.
        *at_time* is accepted for signature uniformity and ignored (the
        tree is synchronous).  *parallel* overrides the matcher bound via
        :meth:`bind_parallel` for this call; batches prime the shared
        match cache through it before routing.
        """
        chosen = parallel if parallel is not None else self._parallel
        return self.root.publish(
            events, arrived_from=None, at_time=at_time, parallel=chosen
        )

    def publish_batch(self, events: list[Event]) -> int:
        """Deprecated alias for :meth:`publish` with a list of events."""
        warnings.warn(
            "BrokerTree.publish_batch is deprecated and will be removed "
            "in repro 2.0; pass the batch to BrokerTree.publish instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.publish(list(events))

    # -- failure lifecycle ---------------------------------------------------

    def crash_broker(self, broker_id: Hashable) -> None:
        """Take one broker down; messages through it are silently lost."""
        self.brokers[broker_id].crash()

    def restart_broker(self, broker_id: Hashable, replay: bool = True) -> None:
        """Restart a crashed broker with empty routing state.

        With *replay* (the default), the recovery protocol runs
        synchronously: surviving children re-announce their forwarded
        filter tables and locally attached subscribers re-issue their
        subscriptions, which the restarted broker re-forwards upstream
        as usual.  ``replay=False`` models the window before neighbours
        notice the restart.
        """
        broker = self.brokers[broker_id]
        broker.restart()
        if not replay:
            return
        for child_id in broker.children:
            self.brokers[child_id].replay_upstream()
        for subscriber_id, home in self._subscriber_home.items():
            if home != broker_id:
                continue
            for subscription_filter in self._client_filters.get(
                subscriber_id, []
            ):
                broker.subscribe(subscriber_id, subscription_filter)

    # -- accounting ----------------------------------------------------------

    @property
    def message_count(self) -> int:
        """Total number of broker-to-broker messages exchanged so far."""
        return self._message_count

    def reset_stats(self) -> None:
        """Zero all broker counters and the global message count."""
        self._message_count = 0
        for broker in self.brokers.values():
            broker.stats.reset()

    def total_deliveries(self) -> int:
        """Events delivered to subscriber endpoints across all brokers."""
        return sum(broker.stats.deliveries for broker in self.brokers.values())
