"""A Siena-style content-based broker.

Each broker maintains a subscription table mapping *interfaces* (its parent
link, child links, and locally attached clients) to the filters subscribed
through them.  Subscriptions propagate toward the root, suppressed when a
previously forwarded filter already covers them; events propagate toward
the root unconditionally and down every interface with a matching filter
(in-network matching, Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

from repro.obs.metrics import MetricsRegistry, RegistryBackedStats
from repro.siena.events import Event
from repro.siena.filters import Filter

#: An interface identifier: a neighbouring broker id or a local client id.
Interface = Hashable

MatchPredicate = Callable[[Filter, Event], bool]


def _plain_match(subscription_filter: Filter, event: Event) -> bool:
    return subscription_filter.matches(event)


class BrokerStats(RegistryBackedStats):
    """Counters a broker keeps for the performance evaluation.

    Backed by :class:`~repro.obs.metrics.MetricsRegistry` counters
    (``broker_<field>_total``, labelled ``broker=<id>``); the attribute
    read/``+=`` API is a thin view over them, so existing consumers keep
    working unchanged while exporters see every broker uniformly.
    """

    _int_fields = (
        "events_received",
        "events_forwarded",
        "subscriptions_received",
        "subscriptions_forwarded",
        "match_tests",
        "deliveries",
        "dropped_while_down",
    )
    _metric_prefix = "broker_"


@dataclass
class _Subscription:
    filter: Filter
    interfaces: set[Interface] = field(default_factory=set)


class Broker:
    """One node of the hierarchical pub-sub overlay.

    The broker is transport-agnostic: ``send`` callables injected by the
    overlay (:class:`repro.siena.network.BrokerTree` or the discrete-event
    simulator) move messages between brokers, while ``deliver`` callables
    hand events to locally attached clients.

    A custom *match predicate* may be supplied; PSGuard substitutes the
    tokenized match of Section 4.1 so brokers route without learning
    attribute values.
    """

    def __init__(
        self,
        broker_id: Hashable,
        match: MatchPredicate = _plain_match,
        indexed: bool = False,
        registry: MetricsRegistry | None = None,
    ):
        self.broker_id = broker_id
        self.match = match
        self.alive = True
        #: Bumped on every restart; neighbours use it to detect that a
        #: broker lost its volatile routing state and needs replays.
        self.incarnation = 0
        self.parent: Optional[Hashable] = None
        self.send_parent: Optional[Callable[[str, object], None]] = None
        self.children: dict[Hashable, Callable[[str, object], None]] = {}
        self.clients: dict[Hashable, Callable[[Event], None]] = {}
        self.subscriptions: list[_Subscription] = []
        self.forwarded_upstream: list[Filter] = []
        self.stats = BrokerStats(registry, broker=str(broker_id))
        # Optional counting-algorithm index (sublinear matching; only
        # valid with the default plaintext match predicate).
        self._index = None
        self._index_ids: dict[Filter, int] = {}
        if indexed:
            if match is not _plain_match:
                raise ValueError(
                    "the match index implements plaintext semantics; "
                    "custom match predicates require the linear scan"
                )
            from repro.siena.index import MatchIndex

            self._index = MatchIndex()

    # -- wiring ------------------------------------------------------------

    def attach_parent(
        self, parent_id: Hashable, send: Callable[[str, object], None]
    ) -> None:
        """Connect this broker to its parent via the *send* callable."""
        self.parent = parent_id
        self.send_parent = send

    def attach_child(
        self, child_id: Hashable, send: Callable[[str, object], None]
    ) -> None:
        """Connect a child broker reachable via the *send* callable."""
        self.children[child_id] = send

    def attach_client(
        self, client_id: Hashable, deliver: Callable[[Event], None]
    ) -> None:
        """Attach a local client (subscriber endpoint)."""
        self.clients[client_id] = deliver

    # -- failure lifecycle ---------------------------------------------------

    def crash(self) -> None:
        """Take the broker down: every message it receives is dropped."""
        self.alive = False

    def restart(self) -> None:
        """Bring the broker back up with *empty* volatile routing state.

        Subscription tables are in-memory state, so a restarted broker
        remembers nothing; neighbours must replay their filters
        (:meth:`replay_upstream`) before routing through it works again.
        """
        self.alive = True
        self.incarnation += 1
        self.subscriptions = []
        self.forwarded_upstream = []
        self._index_ids = {}
        if self._index is not None:
            from repro.siena.index import MatchIndex

            self._index = MatchIndex()

    def replay_upstream(self) -> int:
        """Re-announce every forwarded filter to the parent.

        Called when this broker observes its parent restarting; returns
        the number of filters replayed.  Replays bypass the covering
        suppression because the parent's table is known to be empty.
        """
        if self.send_parent is None:
            return 0
        for forwarded in list(self.forwarded_upstream):
            self.stats.subscriptions_forwarded += 1
            self.send_parent("subscribe", forwarded)
        return len(self.forwarded_upstream)

    # -- subscription plane --------------------------------------------------

    def subscribe(self, interface: Interface, subscription_filter: Filter) -> None:
        """Register *subscription_filter* for *interface*; forward if needed.

        The filter is forwarded to the parent only when no previously
        forwarded filter covers it (Section 2.1).
        """
        if not self.alive:
            self.stats.dropped_while_down += 1
            return
        self.stats.subscriptions_received += 1
        for existing in self.subscriptions:
            if existing.filter == subscription_filter:
                existing.interfaces.add(interface)
                break
        else:
            self.subscriptions.append(
                _Subscription(subscription_filter, {interface})
            )
            if self._index is not None:
                self._index_ids[subscription_filter] = self._index.add(
                    subscription_filter
                )

        if self.send_parent is None:
            return
        if any(
            forwarded.covers(subscription_filter)
            for forwarded in self.forwarded_upstream
        ):
            return
        # Drop previously forwarded filters that the new one covers; Siena
        # replaces them to keep the upstream table minimal.
        self.forwarded_upstream = [
            forwarded
            for forwarded in self.forwarded_upstream
            if not subscription_filter.covers(forwarded)
        ]
        self.forwarded_upstream.append(subscription_filter)
        self.stats.subscriptions_forwarded += 1
        self.send_parent("subscribe", subscription_filter)

    def unsubscribe(self, interface: Interface, subscription_filter: Filter) -> None:
        """Remove *interface*'s registration of *subscription_filter*.

        When the removal changes what this broker needs from upstream, the
        upstream table is recomputed: obsolete forwarded filters are
        withdrawn and filters that the departed one was covering are
        announced (Siena's unsubscription semantics).
        """
        if not self.alive:
            self.stats.dropped_while_down += 1
            return
        changed = False
        for existing in list(self.subscriptions):
            if existing.filter == subscription_filter:
                existing.interfaces.discard(interface)
                if not existing.interfaces:
                    self.subscriptions.remove(existing)
                    changed = True
                    if self._index is not None:
                        index_id = self._index_ids.pop(
                            existing.filter, None
                        )
                        if index_id is not None:
                            self._index.remove(index_id)
        if changed and self.send_parent is not None:
            self._recompute_upstream()

    def _recompute_upstream(self) -> None:
        """Re-derive the minimal covering set to forward upstream."""
        required: list[Filter] = []
        for candidate in (entry.filter for entry in self.subscriptions):
            if any(chosen.covers(candidate) for chosen in required):
                continue
            required = [
                chosen for chosen in required
                if not candidate.covers(chosen)
            ]
            required.append(candidate)

        for obsolete in self.forwarded_upstream:
            if obsolete not in required:
                self.stats.subscriptions_forwarded += 1
                self.send_parent("unsubscribe", obsolete)
        for needed in required:
            if needed not in self.forwarded_upstream:
                self.stats.subscriptions_forwarded += 1
                self.send_parent("subscribe", needed)
        self.forwarded_upstream = required

    # -- event plane ---------------------------------------------------------

    def publish(self, event: Event, arrived_from: Interface | None = None) -> int:
        """Route *event*: up to the parent, down every matching interface.

        Returns the number of interfaces the event was forwarded or
        delivered on (the broker's fan-out for this event).
        """
        if not self.alive:
            self.stats.dropped_while_down += 1
            return 0
        self.stats.events_received += 1
        forwarded_to: set[Interface] = set()
        if self._index is not None:
            matched = set(self._index.matching(event))
            candidates = [
                subscription
                for subscription in self.subscriptions
                if subscription.filter in matched
            ]
            self.stats.match_tests += len(matched)
        else:
            candidates = self.subscriptions
        for subscription in candidates:
            if self._index is None:
                self.stats.match_tests += 1
                if not self.match(subscription.filter, event):
                    continue
            for interface in subscription.interfaces:
                if interface == arrived_from or interface in forwarded_to:
                    continue
                forwarded_to.add(interface)
                if interface in self.clients:
                    self.stats.deliveries += 1
                    self.clients[interface](event)
                elif interface in self.children:
                    self.stats.events_forwarded += 1
                    self.children[interface]("publish", event)

        if (
            self.send_parent is not None
            and arrived_from != self.parent
        ):
            self.stats.events_forwarded += 1
            self.send_parent("publish", event)
            forwarded_to.add(self.parent)
        return len(forwarded_to)

    # -- introspection ---------------------------------------------------------

    def subscription_count(self) -> int:
        """Number of distinct filters in the routing table."""
        return len(self.subscriptions)

    def filters_for(self, interface: Interface) -> list[Filter]:
        """All filters registered for *interface*."""
        return [
            subscription.filter
            for subscription in self.subscriptions
            if interface in subscription.interfaces
        ]
