"""A Siena-style content-based broker.

Each broker maintains a subscription table mapping *interfaces* (its parent
link, child links, and locally attached clients) to the filters subscribed
through them.  Subscriptions propagate toward the root, suppressed when a
previously forwarded filter already covers them; events propagate toward
the root unconditionally and down every interface with a matching filter
(in-network matching, Section 2.1).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

from repro.obs.metrics import MetricsRegistry, RegistryBackedStats
from repro.siena.events import Event
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.recovery.journal import BrokerJournal
    from repro.siena.index import MatchResultCache

#: An interface identifier: a neighbouring broker id or a local client id.
Interface = Hashable

#: Attribute carrying an event's tokenized topic (the same name
#: :data:`repro.routing.tokens.TOPIC_TOKEN_ATTRIBUTE` uses; duplicated
#: here because the routing layer imports from siena, not vice versa).
#: Filters pinning this attribute with EQ partition into *groups*: every
#: filter of a group shares one topic-token check, so a broker running
#: with a match cache tests each group once per event and skips the
#: group's filters wholesale when its topic token does not verify.
_TOPIC_TOKEN_ATTRIBUTE = "_ttok"


def _group_value(subscription_filter: Filter) -> str | None:
    """The filter's topic-token pin, if it has exactly one EQ constraint."""
    pinned = [
        constraint.value
        for constraint in subscription_filter
        if constraint.name == _TOPIC_TOKEN_ATTRIBUTE and constraint.op is Op.EQ
    ]
    if len(pinned) == 1 and isinstance(pinned[0], str):
        return pinned[0]
    return None

MatchPredicate = Callable[[Filter, Event], bool]


def _plain_match(subscription_filter: Filter, event: Event) -> bool:
    return subscription_filter.matches(event)


class BrokerStats(RegistryBackedStats):
    """Counters a broker keeps for the performance evaluation.

    Backed by :class:`~repro.obs.metrics.MetricsRegistry` counters
    (``broker_<field>_total``, labelled ``broker=<id>``); the attribute
    read/``+=`` API is a thin view over them, so existing consumers keep
    working unchanged while exporters see every broker uniformly.
    """

    _int_fields = (
        "events_received",
        "events_forwarded",
        "subscriptions_received",
        "subscriptions_forwarded",
        "match_tests",
        "deliveries",
        "dropped_while_down",
        "batches_received",
        "batches_forwarded",
        # Locally injected events refused by the admission gate
        # (:meth:`Broker.bind_flow`): overload protection, not failure.
        "events_shed",
    )
    _metric_prefix = "broker_"


@dataclass
class _Subscription:
    filter: Filter
    interfaces: set[Interface] = field(default_factory=set)
    #: Topic-token group key (see :func:`_group_value`), or None.
    group: str | None = None


class Broker:
    """One node of the hierarchical pub-sub overlay.

    The broker is transport-agnostic: ``send`` callables injected by the
    overlay (:class:`repro.siena.network.BrokerTree` or the discrete-event
    simulator) move messages between brokers, while ``deliver`` callables
    hand events to locally attached clients.

    A custom *match predicate* may be supplied; PSGuard substitutes the
    tokenized match of Section 4.1 so brokers route without learning
    attribute values.
    """

    def __init__(
        self,
        broker_id: Hashable,
        match: MatchPredicate = _plain_match,
        indexed: bool = False,
        registry: MetricsRegistry | None = None,
        match_cache: "MatchResultCache | None" = None,
    ):
        self.broker_id = broker_id
        self.match = match
        # Optional shared (filter, value-vector) -> verdict memo.  Only
        # sound for match predicates that are pure functions of the
        # filter's constrained attribute values -- true of both the plain
        # and tokenized predicates shipped here.
        self.match_cache = match_cache
        self.alive = True
        #: Bumped on every restart; neighbours use it to detect that a
        #: broker lost its volatile routing state and needs replays.
        self.incarnation = 0
        self.parent: Optional[Hashable] = None
        self.send_parent: Optional[Callable[[str, object], None]] = None
        self.children: dict[Hashable, Callable[[str, object], None]] = {}
        self.clients: dict[Hashable, Callable[[Event], None]] = {}
        self.subscriptions: list[_Subscription] = []
        self.forwarded_upstream: list[Filter] = []
        #: Optional durable write-ahead log of the routing state; bound by
        #: the overlay via :meth:`bind_journal`.
        self.journal: "BrokerJournal | None" = None
        #: Optional admission gate for locally injected events; bound via
        #: :meth:`bind_flow`.
        self._admission: Callable[[Event], bool] | None = None
        self.stats = BrokerStats(registry, broker=str(broker_id))
        # Optional counting-algorithm index (sublinear matching; only
        # valid with the default plaintext match predicate).
        self._index = None
        self._index_ids: dict[Filter, int] = {}
        # Memo of single-constraint filters standing in for whole
        # topic-token groups (used only when a match cache is present).
        self._group_filters: dict[str, Filter] = {}
        if indexed:
            if match is not _plain_match:
                raise ValueError(
                    "the match index implements plaintext semantics; "
                    "custom match predicates require the linear scan"
                )
            from repro.siena.index import MatchIndex

            self._index = MatchIndex()

    # -- wiring ------------------------------------------------------------

    def attach_parent(
        self, parent_id: Hashable, send: Callable[[str, object], None]
    ) -> None:
        """Connect this broker to its parent via the *send* callable."""
        self.parent = parent_id
        self.send_parent = send

    def attach_child(
        self, child_id: Hashable, send: Callable[[str, object], None]
    ) -> None:
        """Connect a child broker reachable via the *send* callable."""
        self.children[child_id] = send

    def attach_client(
        self, client_id: Hashable, deliver: Callable[[Event], None]
    ) -> None:
        """Attach a local client (subscriber endpoint)."""
        self.clients[client_id] = deliver

    def bind_journal(self, journal: "BrokerJournal") -> None:
        """Journal every routing-table mutation to a durable log."""
        self.journal = journal

    def bind_flow(self, admission: Callable[[Event], bool]) -> None:
        """Gate *locally injected* publications through *admission*.

        The synchronous tree has no queues to bound, so its overload
        protection is admission control at the edge: events arriving
        with ``arrived_from=None`` (publisher injections) that the gate
        refuses are shed (``events_shed``) instead of fanning out.
        Broker-to-broker forwarding is never gated -- an event admitted
        once must not be dropped halfway down the tree.
        """
        self._admission = admission

    def detach_child(self, child_id: Hashable) -> None:
        """Remove a (dead) child link and every filter registered on it."""
        self.children.pop(child_id, None)
        self.drop_interface(child_id)

    def reattach_parent(
        self, parent_id: Hashable, send: Callable[[str, object], None]
    ) -> int:
        """Re-parent this broker and replay its covering set to the new
        parent; returns the number of filters replayed (tree repair)."""
        self.parent = parent_id
        self.send_parent = send
        return self.replay_upstream()

    def drop_interface(self, interface: Interface) -> None:
        """Withdraw every filter registered for *interface* at once.

        Like per-filter :meth:`unsubscribe`, the upstream covering set is
        recomputed when the removals changed what this broker needs.
        """
        changed = False
        for existing in list(self.subscriptions):
            if interface not in existing.interfaces:
                continue
            existing.interfaces.discard(interface)
            if self.journal is not None:
                self.journal.log_unsubscribe(interface, existing.filter)
            if not existing.interfaces:
                self.subscriptions.remove(existing)
                changed = True
                if self.match_cache is not None:
                    self.match_cache.invalidate_filter(existing.filter)
                if self._index is not None:
                    index_id = self._index_ids.pop(existing.filter, None)
                    if index_id is not None:
                        self._index.remove(index_id)
        if changed and self.send_parent is not None:
            self._recompute_upstream()

    # -- failure lifecycle ---------------------------------------------------

    def crash(self) -> None:
        """Take the broker down: every message it receives is dropped."""
        self.alive = False

    def restart(self) -> None:
        """Bring the broker back up with *empty* volatile routing state.

        Subscription tables are in-memory state, so a restarted broker
        remembers nothing; neighbours must replay their filters
        (:meth:`replay_upstream`) before routing through it works again.
        """
        self.alive = True
        self.incarnation += 1
        self.subscriptions = []
        self.forwarded_upstream = []
        self._index_ids = {}
        if self._index is not None:
            from repro.siena.index import MatchIndex

            self._index = MatchIndex()

    def restore(
        self,
        subscriptions: list[tuple[Interface, Filter]],
        forwarded_upstream: list[Filter],
    ) -> int:
        """Repopulate routing state replayed from a durable journal.

        Called right after :meth:`restart` when the overlay journals
        broker state: registrations are rebuilt locally WITHOUT upstream
        propagation (the parent's table survived this broker's crash) and
        without re-journaling (the journal already holds them).  Returns
        the number of registrations restored.
        """
        for interface, subscription_filter in subscriptions:
            for existing in self.subscriptions:
                if existing.filter == subscription_filter:
                    existing.interfaces.add(interface)
                    break
            else:
                self.subscriptions.append(
                    _Subscription(
                        subscription_filter,
                        {interface},
                        group=_group_value(subscription_filter),
                    )
                )
                if self._index is not None:
                    self._index_ids[subscription_filter] = self._index.add(
                        subscription_filter
                    )
        self.forwarded_upstream = list(forwarded_upstream)
        return len(subscriptions)

    def replay_upstream(self) -> int:
        """Re-announce every forwarded filter to the parent.

        Called when this broker observes its parent restarting; returns
        the number of filters replayed.  Replays bypass the covering
        suppression because the parent's table is known to be empty.
        """
        if self.send_parent is None:
            return 0
        for forwarded in list(self.forwarded_upstream):
            self.stats.subscriptions_forwarded += 1
            self.send_parent("subscribe", forwarded)
        return len(self.forwarded_upstream)

    # -- subscription plane --------------------------------------------------

    def subscribe(self, interface: Interface, subscription_filter: Filter) -> None:
        """Register *subscription_filter* for *interface*; forward if needed.

        The filter is forwarded to the parent only when no previously
        forwarded filter covers it (Section 2.1).
        """
        if not self.alive:
            self.stats.dropped_while_down += 1
            return
        self.stats.subscriptions_received += 1
        if self.journal is not None:
            self.journal.log_subscribe(interface, subscription_filter)
        for existing in self.subscriptions:
            if existing.filter == subscription_filter:
                existing.interfaces.add(interface)
                break
        else:
            self.subscriptions.append(
                _Subscription(
                    subscription_filter,
                    {interface},
                    group=_group_value(subscription_filter),
                )
            )
            if self._index is not None:
                self._index_ids[subscription_filter] = self._index.add(
                    subscription_filter
                )

        if self.send_parent is None:
            return
        if any(
            forwarded.covers(subscription_filter)
            for forwarded in self.forwarded_upstream
        ):
            return
        # Drop previously forwarded filters that the new one covers; Siena
        # replaces them to keep the upstream table minimal.
        kept = []
        for forwarded in self.forwarded_upstream:
            if subscription_filter.covers(forwarded):
                if self.journal is not None:
                    self.journal.log_unforwarded(forwarded)
            else:
                kept.append(forwarded)
        self.forwarded_upstream = kept
        self.forwarded_upstream.append(subscription_filter)
        if self.journal is not None:
            self.journal.log_forwarded(subscription_filter)
        self.stats.subscriptions_forwarded += 1
        self.send_parent("subscribe", subscription_filter)

    def unsubscribe(self, interface: Interface, subscription_filter: Filter) -> None:
        """Remove *interface*'s registration of *subscription_filter*.

        When the removal changes what this broker needs from upstream, the
        upstream table is recomputed: obsolete forwarded filters are
        withdrawn and filters that the departed one was covering are
        announced (Siena's unsubscription semantics).
        """
        if not self.alive:
            self.stats.dropped_while_down += 1
            return
        changed = False
        for existing in list(self.subscriptions):
            if existing.filter == subscription_filter:
                if self.journal is not None and interface in existing.interfaces:
                    self.journal.log_unsubscribe(interface, subscription_filter)
                existing.interfaces.discard(interface)
                if not existing.interfaces:
                    self.subscriptions.remove(existing)
                    changed = True
                    if self.match_cache is not None:
                        self.match_cache.invalidate_filter(existing.filter)
                    if self._index is not None:
                        index_id = self._index_ids.pop(
                            existing.filter, None
                        )
                        if index_id is not None:
                            self._index.remove(index_id)
        if changed and self.send_parent is not None:
            self._recompute_upstream()

    def _recompute_upstream(self) -> None:
        """Re-derive the minimal covering set to forward upstream."""
        required: list[Filter] = []
        for candidate in (entry.filter for entry in self.subscriptions):
            if any(chosen.covers(candidate) for chosen in required):
                continue
            required = [
                chosen for chosen in required
                if not candidate.covers(chosen)
            ]
            required.append(candidate)

        for obsolete in self.forwarded_upstream:
            if obsolete not in required:
                if self.journal is not None:
                    self.journal.log_unforwarded(obsolete)
                self.stats.subscriptions_forwarded += 1
                self.send_parent("unsubscribe", obsolete)
        for needed in required:
            if needed not in self.forwarded_upstream:
                if self.journal is not None:
                    self.journal.log_forwarded(needed)
                self.stats.subscriptions_forwarded += 1
                self.send_parent("subscribe", needed)
        self.forwarded_upstream = required

    # -- event plane ---------------------------------------------------------

    def _group_filter(self, group: str) -> Filter:
        """The single-constraint stand-in filter for one topic-token group."""
        group_filter = self._group_filters.get(group)
        if group_filter is None:
            group_filter = Filter.of(
                Constraint(_TOPIC_TOKEN_ATTRIBUTE, Op.EQ, group)
            )
            self._group_filters[group] = group_filter
        return group_filter

    def _tested_match(self, subscription_filter: Filter, event: Event) -> bool:
        """One counted match test, via the shared memo when configured."""
        self.stats.match_tests += 1
        if self.match_cache is None:
            return self.match(subscription_filter, event)
        verdict = self.match_cache.lookup(subscription_filter, event)
        if verdict is None:
            verdict = self.match(subscription_filter, event)
            self.match_cache.store(subscription_filter, event, verdict)
        return verdict

    def _matched_interfaces(
        self, event: Event, arrived_from: Interface | None
    ) -> list[Interface]:
        """Interfaces *event* must go out on, in stable delivery order.

        Shared by :meth:`publish` and :meth:`publish_batch` so both paths
        apply identical matching, dedup, and ordering.
        """
        matched: list[Interface] = []
        seen: set[Interface] = set()
        if self._index is not None:
            hits = set(self._index.matching(event))
            candidates = [
                subscription
                for subscription in self.subscriptions
                if subscription.filter in hits
            ]
            self.stats.match_tests += len(hits)
        else:
            candidates = self.subscriptions
        # With a match cache, filters pinning the same topic token share
        # one group check per event: a failed topic token rules out every
        # filter of the group (the filter is a conjunction containing that
        # constraint).  Once some broker has verified the event against
        # one group token, the pairing is a cryptographic fact independent
        # of the broker, so later brokers skip straight to that group.
        group_verdicts: dict[str, bool] = {}
        prefilter = self._index is None and self.match_cache is not None
        verified_group: str | None = None
        event_token = None
        if prefilter:
            event_token = event.get(_TOPIC_TOKEN_ATTRIBUTE)
            if isinstance(event_token, str):
                verified_group = self.match_cache.topic_group(event_token)
        for subscription in candidates:
            if prefilter and subscription.group is not None:
                if verified_group is not None:
                    if subscription.group != verified_group:
                        continue
                else:
                    verdict = group_verdicts.get(subscription.group)
                    if verdict is None:
                        verdict = self._tested_match(
                            self._group_filter(subscription.group), event
                        )
                        group_verdicts[subscription.group] = verdict
                        if verdict:
                            # An event routable verifies against exactly
                            # one token; every other group must fail.
                            verified_group = subscription.group
                            if isinstance(event_token, str):
                                self.match_cache.remember_topic_group(
                                    event_token, subscription.group
                                )
                    if not verdict:
                        continue
            if self._index is None and not self._tested_match(
                subscription.filter, event
            ):
                continue
            for interface in subscription.interfaces:
                if interface == arrived_from or interface in seen:
                    continue
                seen.add(interface)
                matched.append(interface)
        return matched

    def publish(
        self,
        events: "Event | list[Event]",
        arrived_from: Interface | None = None,
        *,
        at_time: float = 0.0,
        parallel=None,
    ) -> int:
        """Route one event or a whole batch -- the unified publish surface.

        A single :class:`Event` routes up to the parent and down every
        matching interface, returning the broker's fan-out.  A list
        routes as a batch -- identical per-subscriber semantics, one
        message per outgoing interface -- returning the number of
        distinct interfaces the batch went out on.

        *at_time* is accepted for signature uniformity with the timed
        overlay and ignored here (the synchronous tree has no clock).
        *parallel* -- a :class:`~repro.parallel.ShardedMatcher` -- primes
        the broker's match cache with batch verdicts computed across the
        worker pool before the (serial, semantics-bearing) routing walk;
        it only applies to locally injected batches on a broker with a
        match cache, and silently degrades to the plain serial walk
        otherwise.
        """
        if isinstance(events, Event):
            return self._publish_one(events, arrived_from)
        return self._publish_many(
            list(events), arrived_from, parallel=parallel
        )

    def publish_batch(
        self, events: list[Event], arrived_from: Interface | None = None
    ) -> int:
        """Deprecated alias for :meth:`publish` with a list of events."""
        warnings.warn(
            "Broker.publish_batch is deprecated and will be removed in "
            "repro 2.0; pass the batch to Broker.publish instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.publish(list(events), arrived_from=arrived_from)

    def _publish_one(
        self, event: Event, arrived_from: Interface | None
    ) -> int:
        if not self.alive:
            self.stats.dropped_while_down += 1
            return 0
        if (
            self._admission is not None
            and arrived_from is None
            and not self._admission(event)
        ):
            self.stats.events_shed += 1
            return 0
        self.stats.events_received += 1
        forwarded_to: set[Interface] = set()
        for interface in self._matched_interfaces(event, arrived_from):
            forwarded_to.add(interface)
            if interface in self.clients:
                self.stats.deliveries += 1
                self.clients[interface](event)
            elif interface in self.children:
                self.stats.events_forwarded += 1
                self.children[interface]("publish", event)

        if (
            self.send_parent is not None
            and arrived_from != self.parent
        ):
            self.stats.events_forwarded += 1
            self.send_parent("publish", event)
            forwarded_to.add(self.parent)
        return len(forwarded_to)

    def _publish_many(
        self,
        events: list[Event],
        arrived_from: Interface | None,
        parallel=None,
    ) -> int:
        """Route a whole batch with one message per outgoing interface.

        Per-subscriber semantics are identical to publishing each event of
        *events* in order (same matching, same delivery order); only the
        transport framing changes -- each child interface receives a
        single ``publish_batch`` message carrying its sub-batch, and the
        parent receives the full batch once.  Returns the number of
        distinct interfaces the batch went out on.
        """
        if not self.alive:
            self.stats.dropped_while_down += len(events)
            return 0
        if self._admission is not None and arrived_from is None:
            admitted = [
                event for event in events if self._admission(event)
            ]
            self.stats.events_shed += len(events) - len(admitted)
            events = admitted
            if not events:
                return 0
        if (
            parallel is not None
            and arrived_from is None
            and self.match_cache is not None
        ):
            # Pool workers compute the batch's match verdicts into the
            # shared cache; the routing walk below (and every downstream
            # broker sharing the cache) then runs on hits.  Pure memo
            # seeding -- dissemination order and verdicts are unchanged.
            parallel.prime(events, self.match_cache)
        self.stats.batches_received += 1
        self.stats.events_received += len(events)
        sub_batches: dict[Interface, list[Event]] = {}
        interface_order: list[Interface] = []
        for event in events:
            for interface in self._matched_interfaces(event, arrived_from):
                bucket = sub_batches.get(interface)
                if bucket is None:
                    bucket = sub_batches[interface] = []
                    interface_order.append(interface)
                bucket.append(event)

        forwarded_to: set[Interface] = set(interface_order)
        for interface in interface_order:
            sub_batch = sub_batches[interface]
            if interface in self.clients:
                deliver = self.clients[interface]
                self.stats.deliveries += len(sub_batch)
                for event in sub_batch:
                    deliver(event)
            elif interface in self.children:
                self.stats.events_forwarded += len(sub_batch)
                self.stats.batches_forwarded += 1
                self.children[interface]("publish_batch", sub_batch)

        if (
            self.send_parent is not None
            and arrived_from != self.parent
        ):
            self.stats.events_forwarded += len(events)
            self.stats.batches_forwarded += 1
            self.send_parent("publish_batch", list(events))
            forwarded_to.add(self.parent)
        return len(forwarded_to)

    # -- introspection ---------------------------------------------------------

    def subscription_count(self) -> int:
        """Number of distinct filters in the routing table."""
        return len(self.subscriptions)

    def filters_for(self, interface: Interface) -> list[Filter]:
        """All filters registered for *interface*."""
        return [
            subscription.filter
            for subscription in self.subscriptions
            if interface in subscription.interfaces
        ]
