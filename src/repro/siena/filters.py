"""Subscription filters and the covering relation.

A filter is a conjunction of per-attribute constraints, e.g.::

    f = <<topic, EQ, cancerTrail>, <age, >, 20>>

``f`` *covers* ``f'`` when every event matching ``f'`` also matches ``f``
(Section 2.1).  Brokers use covering to suppress redundant upstream
subscription forwarding.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.siena.events import Event, _decode_value, _encode_value
from repro.siena.operators import Op, implies, matches, valid_operand


@dataclass(frozen=True)
class Constraint:
    """A single constraint ``<name, op, value>`` on one attribute."""

    name: str
    op: Op
    value: Any = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("constraint attribute name must be non-empty")
        if not valid_operand(self.op, self.value):
            raise ValueError(
                f"operand {self.value!r} is not valid for operator {self.op}"
            )

    def matches(self, event: Event) -> bool:
        """Whether *event* carries this attribute with a satisfying value."""
        if self.name not in event:
            return False
        return matches(self.op, self.value, event[self.name])

    def implied_by(self, other: "Constraint") -> bool:
        """Whether *other* (the narrower constraint) implies this one."""
        if self.name != other.name:
            return False
        return implies(other.op, other.value, self.op, self.value)

    def __str__(self) -> str:
        if self.op is Op.ANY:
            return f"<{self.name}, any>"
        return f"<{self.name}, {self.op.value}, {self.value!r}>"


class Filter:
    """A conjunction of constraints; the unit of subscription.

    Multiple constraints may target the same attribute (e.g. a range is
    ``<age, >=, l> AND <age, <=, u>``).
    """

    def __init__(self, constraints: Iterable[Constraint]):
        self.constraints: tuple[Constraint, ...] = tuple(constraints)
        if not self.constraints:
            raise ValueError("a filter must contain at least one constraint")
        # Filters are immutable and heavily used as dict keys on broker
        # hot paths (subscription tables, match-result caches); hashing a
        # frozenset of constraints per lookup dominates, so do it once.
        self._hash = hash(frozenset(self.constraints))

    @classmethod
    def of(cls, *constraints: Constraint) -> "Filter":
        """Build a filter from constraint arguments."""
        return cls(constraints)

    @classmethod
    def topic(cls, topic: str) -> "Filter":
        """Shorthand for the ubiquitous ``<topic, EQ, w>`` filter."""
        return cls.of(Constraint("topic", Op.EQ, topic))

    @classmethod
    def numeric_range(
        cls, topic: str, attribute: str, low: float, high: float
    ) -> "Filter":
        """Shorthand for ``<topic, EQ, w> AND <attr in [low, high]>``."""
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        return cls.of(
            Constraint("topic", Op.EQ, topic),
            Constraint(attribute, Op.GE, low),
            Constraint(attribute, Op.LE, high),
        )

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self.constraints)

    def __len__(self) -> int:
        return len(self.constraints)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Filter):
            return NotImplemented
        return set(self.constraints) == set(other.constraints)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = " AND ".join(str(c) for c in self.constraints)
        return f"Filter({inner})"

    def matches(self, event: Event) -> bool:
        """Whether *event* satisfies every constraint."""
        return all(constraint.matches(event) for constraint in self.constraints)

    def covers(self, other: "Filter") -> bool:
        """Whether this filter covers *other* (self is at least as general).

        Sound, Siena-style check: every constraint of ``self`` must be
        implied by some constraint of ``other``.  Incompleteness (returning
        ``False`` for an actually-covered pair) only costs extra forwarded
        subscriptions, never a missed event.
        """
        return all(
            any(mine.implied_by(theirs) for theirs in other.constraints)
            for mine in self.constraints
        )

    def attribute_names(self) -> set[str]:
        """The set of attribute names this filter constrains."""
        return {constraint.name for constraint in self.constraints}

    # -- wire format -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical wire encoding (compact, process-boundary safe).

        Constraint frames are sorted byte-wise, so equal filters (set
        equality over constraints) encode identically regardless of
        construction order -- the property shard assignment and
        cross-process caching rely on.
        """
        frames = sorted(
            _encode_constraint(constraint) for constraint in self.constraints
        )
        return struct.pack(">H", len(frames)) + b"".join(frames)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Filter":
        """Inverse of :meth:`to_bytes`."""
        (count,) = struct.unpack_from(">H", data, 0)
        offset = 2
        constraints = []
        for _ in range(count):
            constraint, offset = _decode_constraint(data, offset)
            constraints.append(constraint)
        return cls(constraints)


def _encode_constraint(constraint: Constraint) -> bytes:
    name = constraint.name.encode("utf-8")
    op = constraint.op.value.encode("ascii")
    parts = [struct.pack(">H", len(name)), name,
             struct.pack(">B", len(op)), op]
    if constraint.value is None:
        parts.append(b"\x00")
    else:
        parts.append(b"\x01")
        parts.append(_encode_value(constraint.value))
    return b"".join(parts)


def _decode_constraint(data: bytes, offset: int) -> tuple[Constraint, int]:
    (name_len,) = struct.unpack_from(">H", data, offset)
    offset += 2
    name = data[offset: offset + name_len].decode("utf-8")
    offset += name_len
    op_len = data[offset]
    offset += 1
    op = Op(data[offset: offset + op_len].decode("ascii"))
    offset += op_len
    has_value = data[offset]
    offset += 1
    value: Any = None
    if has_value:
        value, offset = _decode_value(data, offset)
    return Constraint(name, op, value), offset
