"""Events: typed attribute sets published into the pub-sub network.

An event is a set of named attributes, e.g. (Section 1)::

    e = <<topic, cancerTrail>, <age, 25>, <patientRecord, record>>

Attributes split into *routable* attributes (visible to brokers for
content-based routing, possibly tokenized by PSGuard) and *secret*
attributes (encrypted end to end).  The plain Siena core treats every
attribute as routable; PSGuard's envelope layer
(:mod:`repro.core.envelope`) introduces the distinction.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.siena.operators import AttributeValue

_WIRE_TAG_INT = 0
_WIRE_TAG_FLOAT = 1
_WIRE_TAG_STR = 2
_WIRE_TAG_BYTES = 3


def _encode_value(value: AttributeValue) -> bytes:
    if isinstance(value, bool):
        raise TypeError("boolean attribute values are not supported")
    if isinstance(value, int):
        return struct.pack(">Bq", _WIRE_TAG_INT, value)
    if isinstance(value, float):
        return struct.pack(">Bd", _WIRE_TAG_FLOAT, value)
    if isinstance(value, str):
        data = value.encode("utf-8")
        return struct.pack(">BI", _WIRE_TAG_STR, len(data)) + data
    if isinstance(value, (bytes, bytearray)):
        return struct.pack(">BI", _WIRE_TAG_BYTES, len(value)) + bytes(value)
    raise TypeError(f"unsupported attribute value type {type(value).__name__}")


def _decode_value(data: bytes, offset: int) -> tuple[AttributeValue, int]:
    tag = data[offset]
    if tag == _WIRE_TAG_INT:
        (value,) = struct.unpack_from(">q", data, offset + 1)
        return value, offset + 9
    if tag == _WIRE_TAG_FLOAT:
        (value,) = struct.unpack_from(">d", data, offset + 1)
        return value, offset + 9
    if tag in (_WIRE_TAG_STR, _WIRE_TAG_BYTES):
        (length,) = struct.unpack_from(">I", data, offset + 1)
        start = offset + 5
        raw = data[start: start + length]
        if len(raw) != length:
            raise ValueError("truncated attribute value")
        if tag == _WIRE_TAG_STR:
            return raw.decode("utf-8"), start + length
        return raw, start + length
    raise ValueError(f"unknown wire tag {tag}")


@dataclass(frozen=True)
class Event:
    """An immutable pub-sub event.

    ``attributes`` maps attribute names to values; ``publisher`` identifies
    the publishing principal (used for per-publisher topic keys,
    Section 3.1 "Multiple Publishers").
    """

    attributes: Mapping[str, AttributeValue]
    publisher: str | None = None

    _sorted_items: tuple[tuple[str, AttributeValue], ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        items = tuple(sorted(dict(self.attributes).items()))
        object.__setattr__(self, "attributes", dict(items))
        object.__setattr__(self, "_sorted_items", items)

    def __contains__(self, name: str) -> bool:
        return name in self.attributes

    def __getitem__(self, name: str) -> AttributeValue:
        return self.attributes[name]

    def __iter__(self) -> Iterator[tuple[str, AttributeValue]]:
        return iter(self._sorted_items)

    def __len__(self) -> int:
        return len(self.attributes)

    def __hash__(self) -> int:
        return hash((self._sorted_items, self.publisher))

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self._sorted_items == other._sorted_items
            and self.publisher == other.publisher
        )

    def get(self, name: str, default: AttributeValue | None = None):
        """Return the value of attribute *name*, or *default*."""
        return self.attributes.get(name, default)

    def with_attributes(self, **extra: AttributeValue) -> "Event":
        """A copy of this event with *extra* attributes merged in."""
        merged = dict(self.attributes)
        merged.update(extra)
        return Event(merged, publisher=self.publisher)

    def without_attributes(self, *names: str) -> "Event":
        """A copy of this event with the given attributes removed."""
        remaining = {
            name: value for name, value in self.attributes.items()
            if name not in names
        }
        return Event(remaining, publisher=self.publisher)

    # -- wire format -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Deterministic wire encoding (used for sizing and encryption)."""
        parts = [struct.pack(">H", len(self._sorted_items))]
        publisher = (self.publisher or "").encode("utf-8")
        parts.append(struct.pack(">H", len(publisher)))
        parts.append(publisher)
        for name, value in self._sorted_items:
            encoded_name = name.encode("utf-8")
            parts.append(struct.pack(">H", len(encoded_name)))
            parts.append(encoded_name)
            parts.append(_encode_value(value))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Event":
        """Inverse of :meth:`to_bytes`."""
        (count,) = struct.unpack_from(">H", data, 0)
        (publisher_len,) = struct.unpack_from(">H", data, 2)
        offset = 4 + publisher_len
        publisher = data[4:offset].decode("utf-8") or None
        attributes: dict[str, AttributeValue] = {}
        for _ in range(count):
            (name_len,) = struct.unpack_from(">H", data, offset)
            offset += 2
            name = data[offset: offset + name_len].decode("utf-8")
            offset += name_len
            value, offset = _decode_value(data, offset)
            attributes[name] = value
        return cls(attributes, publisher=publisher)

    def wire_size(self) -> int:
        """Size of the event on the wire, in bytes."""
        return len(self.to_bytes())
