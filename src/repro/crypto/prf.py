"""Keyed pseudo-random functions.

The paper uses two keyed PRFs:

- ``KH`` -- the keyed hash used for key derivation roots, approximated by
  HMAC-SHA1 (Section 3.1): ``K(w) = KH_{rk(KDC)}(w)``.
- ``F`` -- the PRF used by the Song-Wagner-Perrig tokenization scheme
  (Section 4.1): ``T(w) = F_{rk(KDC)}(w)`` and the routable attribute
  ``<r, F_{T(w)}(r)>``.

Both are HMAC instances over different domain-separation labels so that a
token can never collide with a key.
"""

from __future__ import annotations

import hmac

from repro.crypto.hashes import KEY_BYTES, SUPPORTED_ALGORITHMS

_KH_LABEL = b"psguard:kh:"
_F_LABEL = b"psguard:f:"


def _keyed_hash(key: bytes, label: bytes, message: bytes, algorithm: str) -> bytes:
    if algorithm not in SUPPORTED_ALGORITHMS:
        raise ValueError(
            f"unsupported hash algorithm {algorithm!r}; "
            f"expected one of {SUPPORTED_ALGORITHMS}"
        )
    if not isinstance(key, (bytes, bytearray)):
        raise TypeError(f"PRF key must be bytes, got {type(key).__name__}")
    return hmac.new(bytes(key), label + message, algorithm).digest()[:KEY_BYTES]


def KH(key: bytes, message: bytes, algorithm: str = "sha1") -> bytes:
    """The keyed pseudo-random function ``KH`` (HMAC), truncated to key width.

    Used to derive topic keys and key-tree roots, e.g.
    ``K_root(age) = KH_{K(cancerTrail)}("age")``.
    """
    return _keyed_hash(key, _KH_LABEL, message, algorithm)


def F(key: bytes, message: bytes, algorithm: str = "sha1") -> bytes:
    """The tokenization PRF ``F`` (HMAC under a distinct label).

    Domain-separated from :func:`KH` so tokens and keys never coincide even
    for equal inputs.
    """
    return _keyed_hash(key, _F_LABEL, message, algorithm)


def derive_key(parent: bytes, branch: bytes, algorithm: str = "sha1") -> bytes:
    """Derive a child key ``H(parent || branch)`` in the hierarchical key tree.

    Child derivation is one-way: given the child it is computationally
    infeasible to recover the parent or a sibling.
    """
    from repro.crypto.hashes import H

    return H(bytes(parent) + bytes(branch), algorithm)


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe byte-string comparison for token/MAC verification."""
    return hmac.compare_digest(bytes(a), bytes(b))
