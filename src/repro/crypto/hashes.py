"""One-way hash functions.

The paper approximates the one-way hash function ``H`` with SHA1 (or MD5).
Keys derived from ``H`` live in a 128-bit key space, so every hash output is
truncated to :data:`KEY_BYTES` bytes before it is used as a key.
"""

from __future__ import annotations

import hashlib
from typing import Callable

#: Size of every key in the common key space (AES-128 keys are 16 bytes).
KEY_BYTES = 16

#: Hash algorithms the prototype supports, mirroring the paper's choices.
SUPPORTED_ALGORITHMS = ("sha1", "md5", "sha256")

_DEFAULT_ALGORITHM = "sha1"


def hash_function(algorithm: str = _DEFAULT_ALGORITHM) -> Callable[[bytes], bytes]:
    """Return a full-width one-way hash function for *algorithm*.

    >>> digest = hash_function("sha1")(b"x")
    >>> len(digest)
    20
    """
    if algorithm not in SUPPORTED_ALGORITHMS:
        raise ValueError(
            f"unsupported hash algorithm {algorithm!r}; "
            f"expected one of {SUPPORTED_ALGORITHMS}"
        )

    def _hash(data: bytes) -> bytes:
        return hashlib.new(algorithm, data).digest()

    return _hash


def H(data: bytes, algorithm: str = _DEFAULT_ALGORITHM) -> bytes:
    """The one-way hash ``H`` of the paper, truncated to the key width.

    ``H`` is used for child-key derivation in the hierarchical key trees:
    ``K(xi || b) = H(K(xi) || b)``.  Truncating a cryptographic hash is the
    standard way of fitting its output into a fixed-width key space.
    """
    return hash_function(algorithm)(data)[:KEY_BYTES]
