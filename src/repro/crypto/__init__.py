"""Cryptographic substrate for PSGuard.

The paper's prototype (Section 5.1) uses SHA1 for the one-way hash ``H``,
HMAC-SHA1 for the keyed pseudo-random function ``KH`` and AES-128-CBC for
the symmetric encryption algorithm ``E``.  This package provides those
primitives from scratch:

- :mod:`repro.crypto.hashes` -- one-way hash functions (``H``).
- :mod:`repro.crypto.prf` -- keyed PRFs ``KH`` and ``F`` (HMAC based).
- :mod:`repro.crypto.aes` -- a pure-Python AES block cipher.
- :mod:`repro.crypto.modes` -- CBC mode with PKCS#7 padding.
- :mod:`repro.crypto.cipher` -- the high-level ``encrypt``/``decrypt`` used
  by the rest of the system, with an optional accelerated backend.
"""

from repro.crypto.aes import AES
from repro.crypto.cipher import decrypt, encrypt
from repro.crypto.hashes import H, hash_function, KEY_BYTES
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, pkcs7_pad, pkcs7_unpad
from repro.crypto.prf import F, KH, constant_time_equal, derive_key

__all__ = [
    "AES",
    "F",
    "H",
    "KEY_BYTES",
    "KH",
    "cbc_decrypt",
    "cbc_encrypt",
    "constant_time_equal",
    "decrypt",
    "derive_key",
    "encrypt",
    "hash_function",
    "pkcs7_pad",
    "pkcs7_unpad",
]
