"""High-level symmetric encryption used throughout PSGuard.

``encrypt``/``decrypt`` implement AES-CBC with PKCS#7 padding and a random
IV.  Two interchangeable backends produce and accept the identical wire
format ``iv || ciphertext``:

- ``"cryptography"`` -- the C-backed AES from the ``cryptography`` wheel
  (~100x cheaper per block than pure Python);
- ``"pure"`` -- the from-scratch FIPS-197 implementation in
  :mod:`repro.crypto.aes` / :mod:`repro.crypto.modes`.

Backend selection is *verified-then-preferred*: the first call resolves
the backend lazily, and before the fast backend is adopted it must
reproduce the pure-Python implementation bit-for-bit on a fixed
known-answer vector (encrypt and decrypt round trip).  A mismatching or
broken wheel silently falls back to the pure implementation rather than
corrupting ciphertexts.  The ``REPRO_AES_BACKEND`` environment variable
overrides the choice:

- ``auto`` (default): prefer ``cryptography`` when importable and
  self-check passes, else ``pure``;
- ``cryptography``: require the fast backend (raise if unavailable or the
  self-check fails);
- ``pure``: force the reference implementation (useful for benchmarking
  the paper's cost model and for differential testing).
"""

from __future__ import annotations

import os

from repro.crypto.aes import BLOCK_SIZE
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, pkcs7_pad, pkcs7_unpad

try:  # pragma: no cover - exercised indirectly depending on environment
    from cryptography.hazmat.primitives.ciphers import Cipher as _Cipher
    from cryptography.hazmat.primitives.ciphers import algorithms as _algorithms
    from cryptography.hazmat.primitives.ciphers import modes as _modes

    _HAVE_CRYPTOGRAPHY = True
except ImportError:  # pragma: no cover
    _HAVE_CRYPTOGRAPHY = False

#: Environment variable selecting the AES backend.
BACKEND_ENV = "REPRO_AES_BACKEND"
_VALID_CHOICES = ("auto", "cryptography", "pure")

#: Resolved backend name, or None while still unresolved.
_active_backend: str | None = None
#: Why the fast backend was rejected under ``auto`` (diagnostics only).
_fallback_reason: str | None = None


def _fast_encrypt(key: bytes, plaintext: bytes, iv: bytes) -> bytes:
    encryptor = _Cipher(_algorithms.AES(bytes(key)), _modes.CBC(iv)).encryptor()
    return iv + encryptor.update(pkcs7_pad(plaintext)) + encryptor.finalize()


def _fast_decrypt(key: bytes, data: bytes) -> bytes:
    if len(data) < 2 * BLOCK_SIZE or len(data) % BLOCK_SIZE != 0:
        raise ValueError("ciphertext too short or not block aligned")
    iv, ciphertext = data[:BLOCK_SIZE], data[BLOCK_SIZE:]
    decryptor = _Cipher(_algorithms.AES(bytes(key)), _modes.CBC(iv)).decryptor()
    return pkcs7_unpad(decryptor.update(ciphertext) + decryptor.finalize())


def _self_check() -> str | None:
    """Cross-validate the fast backend against pure Python.

    Returns None on success, else a human-readable failure description.
    The vector exercises padding (non-block-aligned plaintext) and both
    directions; any divergence from the reference implementation rejects
    the backend.
    """
    key = bytes(range(16))
    iv = bytes(range(16, 32))
    plaintext = b"psguard aes backend self-check \x00\x01\x02"
    try:
        reference = cbc_encrypt(key, plaintext, iv)
        candidate = _fast_encrypt(key, plaintext, iv)
        if candidate != reference:
            return "ciphertext mismatch against pure-Python reference"
        if _fast_decrypt(key, reference) != plaintext:
            return "decrypt round trip mismatch"
    except Exception as exc:  # pragma: no cover - defensive
        return f"self-check raised {exc!r}"
    return None


def _resolve_backend() -> str:
    """Resolve (once) which backend serves encrypt/decrypt calls."""
    global _active_backend, _fallback_reason
    if _active_backend is not None:
        return _active_backend
    requested = os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"
    if requested not in _VALID_CHOICES:
        raise ValueError(
            f"{BACKEND_ENV}={requested!r} is not one of {_VALID_CHOICES}"
        )
    if requested == "pure":
        _active_backend = "pure"
        return _active_backend
    if not _HAVE_CRYPTOGRAPHY:
        if requested == "cryptography":
            raise RuntimeError(
                f"{BACKEND_ENV}=cryptography but the wheel is not importable"
            )
        _active_backend = "pure"
        _fallback_reason = "cryptography wheel not importable"
        return _active_backend
    failure = _self_check()
    if failure is None:
        _active_backend = "cryptography"
    elif requested == "cryptography":
        raise RuntimeError(f"cryptography AES backend failed self-check: {failure}")
    else:
        _active_backend = "pure"
        _fallback_reason = f"self-check failed: {failure}"
    return _active_backend


def reset_backend() -> None:
    """Forget the resolved backend so the next call re-reads the environment.

    Intended for tests that flip ``REPRO_AES_BACKEND``.
    """
    global _active_backend, _fallback_reason
    _active_backend = None
    _fallback_reason = None


def backend_name() -> str:
    """Name of the active AES backend (``"cryptography"`` or ``"pure"``).

    Resolves the backend (including the first-use self-check) if no
    encrypt/decrypt call has done so yet.
    """
    return _resolve_backend()


def fallback_reason() -> str | None:
    """Why ``auto`` rejected the fast backend, or None if it did not."""
    _resolve_backend()
    return _fallback_reason


def encrypt(key: bytes, plaintext: bytes, iv: bytes | None = None) -> bytes:
    """AES-CBC encrypt *plaintext* under *key*; returns ``iv || ciphertext``."""
    if _resolve_backend() == "pure":
        return cbc_encrypt(key, plaintext, iv)
    if iv is None:
        iv = os.urandom(BLOCK_SIZE)
    return _fast_encrypt(key, plaintext, iv)


def decrypt(key: bytes, data: bytes) -> bytes:
    """Inverse of :func:`encrypt`.

    Raises :class:`ValueError` when the ciphertext is malformed or the
    padding check fails (e.g. wrong key).
    """
    if _resolve_backend() == "pure":
        return cbc_decrypt(key, data)
    return _fast_decrypt(key, data)
