"""High-level symmetric encryption used throughout PSGuard.

``encrypt``/``decrypt`` implement AES-CBC with PKCS#7 padding and a random
IV.  When the ``cryptography`` wheel is importable its C-backed AES is used
(the pure-Python cipher in :mod:`repro.crypto.aes` costs ~100x more per
block); otherwise the pure-Python implementation serves.  Both produce and
accept the identical wire format ``iv || ciphertext`` and the test suite
cross-validates them.
"""

from __future__ import annotations

import os

from repro.crypto.aes import BLOCK_SIZE
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, pkcs7_pad, pkcs7_unpad

try:  # pragma: no cover - exercised indirectly depending on environment
    from cryptography.hazmat.primitives.ciphers import Cipher as _Cipher
    from cryptography.hazmat.primitives.ciphers import algorithms as _algorithms
    from cryptography.hazmat.primitives.ciphers import modes as _modes

    _HAVE_CRYPTOGRAPHY = True
except ImportError:  # pragma: no cover
    _HAVE_CRYPTOGRAPHY = False


def backend_name() -> str:
    """Name of the active AES backend (``"cryptography"`` or ``"pure"``)."""
    return "cryptography" if _HAVE_CRYPTOGRAPHY else "pure"


def encrypt(key: bytes, plaintext: bytes, iv: bytes | None = None) -> bytes:
    """AES-CBC encrypt *plaintext* under *key*; returns ``iv || ciphertext``."""
    if not _HAVE_CRYPTOGRAPHY:
        return cbc_encrypt(key, plaintext, iv)
    if iv is None:
        iv = os.urandom(BLOCK_SIZE)
    encryptor = _Cipher(_algorithms.AES(bytes(key)), _modes.CBC(iv)).encryptor()
    ciphertext = encryptor.update(pkcs7_pad(plaintext)) + encryptor.finalize()
    return iv + ciphertext


def decrypt(key: bytes, data: bytes) -> bytes:
    """Inverse of :func:`encrypt`.

    Raises :class:`ValueError` when the ciphertext is malformed or the
    padding check fails (e.g. wrong key).
    """
    if not _HAVE_CRYPTOGRAPHY:
        return cbc_decrypt(key, data)
    if len(data) < 2 * BLOCK_SIZE or len(data) % BLOCK_SIZE != 0:
        raise ValueError("ciphertext too short or not block aligned")
    iv, ciphertext = data[:BLOCK_SIZE], data[BLOCK_SIZE:]
    decryptor = _Cipher(_algorithms.AES(bytes(key)), _modes.CBC(iv)).decryptor()
    return pkcs7_unpad(decryptor.update(ciphertext) + decryptor.finalize())
