"""CBC mode of operation and PKCS#7 padding for the AES block cipher."""

from __future__ import annotations

import os

from repro.crypto.aes import AES, BLOCK_SIZE


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Pad *data* to a multiple of *block_size* per PKCS#7.

    Always appends at least one byte so the padding is unambiguous.
    """
    if not 1 <= block_size <= 255:
        raise ValueError(f"block size must be in [1, 255], got {block_size}")
    pad_len = block_size - (len(data) % block_size)
    return bytes(data) + bytes([pad_len] * pad_len)


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding.

    Raises :class:`ValueError` on malformed padding, which doubles as a
    (coarse) integrity failure signal when decrypting with a wrong key.
    """
    if not data or len(data) % block_size != 0:
        raise ValueError("ciphertext is not a whole number of blocks")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise ValueError("invalid PKCS#7 padding length")
    if data[-pad_len:] != bytes([pad_len] * pad_len):
        raise ValueError("invalid PKCS#7 padding bytes")
    return data[:-pad_len]


def cbc_encrypt(key: bytes, plaintext: bytes, iv: bytes | None = None) -> bytes:
    """AES-CBC encrypt with PKCS#7 padding; returns ``iv || ciphertext``.

    A fresh random IV is drawn when none is supplied.
    """
    if iv is None:
        iv = os.urandom(BLOCK_SIZE)
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    cipher = AES(key)
    padded = pkcs7_pad(plaintext)
    blocks = [iv]
    previous = iv
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = bytes(
            p ^ c for p, c in zip(padded[offset: offset + BLOCK_SIZE], previous)
        )
        previous = cipher.encrypt_block(block)
        blocks.append(previous)
    return b"".join(blocks)


def cbc_decrypt(key: bytes, data: bytes) -> bytes:
    """Inverse of :func:`cbc_encrypt`; expects ``iv || ciphertext``."""
    if len(data) < 2 * BLOCK_SIZE or len(data) % BLOCK_SIZE != 0:
        raise ValueError("ciphertext too short or not block aligned")
    cipher = AES(key)
    iv, ciphertext = data[:BLOCK_SIZE], data[BLOCK_SIZE:]
    plaintext = bytearray()
    previous = iv
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[offset: offset + BLOCK_SIZE]
        decrypted = cipher.decrypt_block(block)
        plaintext.extend(p ^ c for p, c in zip(decrypted, previous))
        previous = block
    return pkcs7_unpad(bytes(plaintext))
