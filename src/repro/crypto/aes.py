"""Pure-Python AES block cipher (FIPS-197).

The PSGuard prototype encrypts the secret attributes of every event with
AES-128-CBC (Section 5.1).  This module implements the AES block cipher from
scratch so the repository carries no mandatory third-party crypto
dependency; :mod:`repro.crypto.cipher` transparently switches to the
``cryptography`` wheel when it is importable, and the test suite
cross-checks the two implementations against each other and against the
FIPS-197 vectors.

Supports 128-, 192- and 256-bit keys.  This is a straightforward table
implementation -- correct and adequately fast for a simulator, not intended
to be side-channel hardened.
"""

from __future__ import annotations

BLOCK_SIZE = 16

# ---------------------------------------------------------------------------
# S-box construction.  The AES S-box is the multiplicative inverse in
# GF(2^8) (modulo the Rijndael polynomial x^8+x^4+x^3+x+1) followed by an
# affine transform.  Generating the tables avoids transcription errors in
# 512 hand-typed constants; the generated values are pinned by test vectors.
# ---------------------------------------------------------------------------


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) modulo the Rijndael polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sboxes() -> tuple[list[int], list[int]]:
    # Build the inverse table via the generator 3 (a primitive element).
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 3)
    exp[255] = exp[0]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inverse = 0 if value == 0 else exp[255 - log[value]]
        # Affine transform: s = b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        s = inverse
        for shift in range(1, 5):
            s ^= ((inverse << shift) | (inverse >> (8 - shift))) & 0xFF
        s ^= 0x63
        sbox[value] = s
        inv_sbox[s] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sboxes()

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))


_ROUNDS_BY_KEY_LEN = {16: 10, 24: 12, 32: 14}


class AES:
    """The AES block cipher over 16-byte blocks.

    >>> cipher = AES(bytes(16))
    >>> cipher.decrypt_block(cipher.encrypt_block(bytes(16))) == bytes(16)
    True
    """

    def __init__(self, key: bytes):
        key = bytes(key)
        if len(key) not in _ROUNDS_BY_KEY_LEN:
            raise ValueError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
            )
        self.key = key
        self.rounds = _ROUNDS_BY_KEY_LEN[len(key)]
        self._round_keys = self._expand_key(key)

    # -- key schedule -----------------------------------------------------

    def _expand_key(self, key: bytes) -> list[list[int]]:
        """FIPS-197 key expansion into (rounds + 1) 16-byte round keys."""
        nk = len(key) // 4
        words = [list(key[4 * i: 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            word = list(words[i - 1])
            if i % nk == 0:
                word = word[1:] + word[:1]
                word = [SBOX[b] for b in word]
                word[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                word = [SBOX[b] for b in word]
            words.append([w ^ p for w, p in zip(word, words[i - nk])])
        round_keys = []
        for round_index in range(self.rounds + 1):
            key_bytes: list[int] = []
            for word in words[4 * round_index: 4 * round_index + 4]:
                key_bytes.extend(word)
            round_keys.append(key_bytes)
        return round_keys

    # -- round operations (state is a flat list of 16 ints, column-major) --

    @staticmethod
    def _add_round_key(state: list[int], round_key: list[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: list[int], box: list[int]) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        # state[4*col + row]; row r rotates left by r.
        for row in range(1, 4):
            column_values = [state[4 * col + row] for col in range(4)]
            shifted = column_values[row:] + column_values[:row]
            for col in range(4):
                state[4 * col + row] = shifted[col]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for row in range(1, 4):
            column_values = [state[4 * col + row] for col in range(4)]
            shifted = column_values[-row:] + column_values[:-row]
            for col in range(4):
                state[4 * col + row] = shifted[col]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        for col in range(4):
            a0, a1, a2, a3 = state[4 * col: 4 * col + 4]
            state[4 * col + 0] = _xtime(a0) ^ _xtime(a1) ^ a1 ^ a2 ^ a3
            state[4 * col + 1] = a0 ^ _xtime(a1) ^ _xtime(a2) ^ a2 ^ a3
            state[4 * col + 2] = a0 ^ a1 ^ _xtime(a2) ^ _xtime(a3) ^ a3
            state[4 * col + 3] = _xtime(a0) ^ a0 ^ a1 ^ a2 ^ _xtime(a3)

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        for col in range(4):
            a0, a1, a2, a3 = state[4 * col: 4 * col + 4]
            state[4 * col + 0] = (
                _gf_mul(a0, 14) ^ _gf_mul(a1, 11) ^ _gf_mul(a2, 13) ^ _gf_mul(a3, 9)
            )
            state[4 * col + 1] = (
                _gf_mul(a0, 9) ^ _gf_mul(a1, 14) ^ _gf_mul(a2, 11) ^ _gf_mul(a3, 13)
            )
            state[4 * col + 2] = (
                _gf_mul(a0, 13) ^ _gf_mul(a1, 9) ^ _gf_mul(a2, 14) ^ _gf_mul(a3, 11)
            )
            state[4 * col + 3] = (
                _gf_mul(a0, 11) ^ _gf_mul(a1, 13) ^ _gf_mul(a2, 9) ^ _gf_mul(a3, 14)
            )

    # -- block API ---------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self.rounds):
            self._sub_bytes(state, SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state, SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for round_index in range(self.rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, INV_SBOX)
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
