"""``repro.api`` -- the one-call facade over the PSGuard stack.

Standing up the reproduction by hand means wiring a KDC, topic schemas,
authorization grants, a broker tree, publisher and subscriber engines,
and (if you want to see anything) an observability bundle.  The facade
collapses that into a builder::

    from repro.api import System
    from repro.siena import Event, Filter

    system = System.builder().topic("news", numeric={"price": 128}).build()
    watcher = system.subscribe(
        "watcher", Filter.numeric_range("news", "price", 0, 63))
    feed = system.publisher("feed")
    feed.publish(Event({"topic": "news", "price": 10, "body": "hi"},
                       publisher="feed"))
    watcher.opened[0].event["body"]   # -> "hi"

Everything the builder wires is reachable afterwards (``system.kdc``,
``system.tree``, ``system.obs``) so a session can start simple and reach
into the layers when it needs to.  The facade is synchronous -- events
flow through the in-process :class:`~repro.siena.network.BrokerTree`;
the timed/fault-injected variants stay with the harnesses
(:mod:`repro.harness.chaos`, :mod:`repro.harness.kdcchaos`), which share
the same observability substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Hashable, Iterable

from repro.core.composite import CompositeKeySpace
from repro.core.envelope import OpenResult, SealedEvent
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.core.publisher import Publisher
from repro.core.renewal import RenewalManager, RenewalPolicy
from repro.core.subscriber import Subscriber
from repro.flow import AdmissionController, priority_of
from repro.obs import Observability
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.network import BrokerTree

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.executor import ShardedMatcher
    from repro.rtnet.live import LiveSystem


@dataclass(frozen=True)
class SystemOptions:
    """Every construction knob, as one value.

    Both entry points -- the fluent :meth:`System.builder` and the
    one-call :func:`connect` -- resolve to a ``SystemOptions`` before
    building, so the two surfaces can never drift apart: a knob exists
    here or it does not exist.  An options value can also be built
    directly and handed to either entry point
    (``connect(options=...)`` / ``builder().options(...)``).

    - ``transport``: ``"inproc"`` (synchronous broker tree) or ``"tcp"``
      (a localhost cluster, :class:`repro.rtnet.LiveSystem`);
    - ``num_brokers`` / ``arity``: dissemination tree shape;
    - ``master_key``: fix ``rk(KDC)`` for reproducible key material;
    - ``admission``: an :class:`~repro.flow.AdmissionController` or a
      ``{"rate", "burst", "reserve"}`` spec for the edge gate;
    - ``parallel``: a ``{"workers", "chunk_size"}`` spec for the
      sharded matcher (``None`` keeps the serial path);
    - ``renewal``: a :class:`~repro.core.renewal.RenewalPolicy`; when
      set, subscribers hold *standing* subscriptions whose grants renew
      across epoch boundaries (inproc: driven by
      :meth:`System.advance`; tcp: driven in-band by REKEY broadcasts
      through the hosted KDC endpoint).
    """

    transport: str = "inproc"
    num_brokers: int = 3
    arity: int = 2
    master_key: bytes | None = None
    admission: "AdmissionController | dict | None" = None
    parallel: dict | None = None
    renewal: RenewalPolicy | None = None

    def __post_init__(self) -> None:
        if self.transport not in ("inproc", "tcp"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.num_brokers < 1:
            raise ValueError("a system needs at least one broker")
        if self.arity < 1:
            raise ValueError("arity must be positive")


class SessionPublisher:
    """A publishing principal bound to one :class:`System`."""

    def __init__(self, system: "System", publisher_id: str):
        self.system = system
        self.engine = Publisher(publisher_id, system.kdc)
        #: Publications this session sealed but the admission gate shed.
        self.shed = 0

    @property
    def publisher_id(self) -> str:
        return self.engine.publisher_id

    def publish(
        self,
        event: Event,
        secret_attributes: set[str] | None = None,
        at_time: float = 0.0,
    ) -> SealedEvent:
        """Seal *event* and disseminate it through the broker tree.

        With admission control configured on the system, a shed
        publication still returns its sealed form (the caller may retry)
        but reaches no subscriber; :attr:`shed` counts them.
        """
        sealed = self.engine.publish(
            event, secret_attributes=secret_attributes, at_time=at_time
        )
        _fanout, shed = self.system._disseminate(sealed, at_time)
        if shed:
            self.shed += 1
        return sealed


class SessionSubscriber:
    """A subscribing principal attached to one leaf broker.

    Collects every event the broker tree hands it: decryptable ones land
    in :attr:`opened` (as :class:`~repro.core.envelope.OpenResult`),
    cryptographically unreadable ones only bump :attr:`unreadable`.
    """

    def __init__(
        self,
        system: "System",
        subscriber_id: str,
        filters: Iterable[Filter],
        grace_period: float = 0.0,
        at_time: float = 0.0,
    ):
        self.system = system
        policy = system.renewal
        if policy is not None:
            grace_period = max(grace_period, policy.grace)
        self.engine = Subscriber(subscriber_id, grace_period=grace_period)
        #: Standing-subscription manager, or None without a renewal
        #: policy (grants are then one-shot, anchored at *at_time*).
        self.renewal: RenewalManager | None = None
        if policy is not None:
            self.renewal = RenewalManager(
                self.engine, system.kdc, renew_lead_time=policy.lead
            )
        self.opened: list[OpenResult] = []
        self.unreadable = 0
        self.home = system._next_leaf()
        system.tree.attach_subscriber(subscriber_id, self.home, self._deliver)
        for subscription_filter in filters:
            if self.renewal is not None:
                self.renewal.add_subscription(
                    subscription_filter, at_time=at_time
                )
            else:
                self.engine.add_grant(
                    system.kdc.authorize(
                        subscriber_id, subscription_filter, at_time=at_time
                    )
                )
            system.tree.subscribe(subscriber_id, subscription_filter)

    @property
    def renewal_stats(self):
        """The session's :class:`~repro.core.renewal.RenewalStats`,
        or ``None`` without a renewal policy."""
        return self.renewal.stats if self.renewal is not None else None

    @property
    def subscriber_id(self) -> str:
        return self.engine.subscriber_id

    def _deliver(self, _routable: Event) -> None:
        sealed = self.system._current_sealed
        result = self.engine.receive(
            sealed, self.system.schema_lookup, at_time=self.system._current_time
        )
        if result is not None:
            self.opened.append(result)
        else:
            self.unreadable += 1
        self.system.tracer.span(
            self.system._current_seq,
            "deliver" if result is not None else "decrypt",
            self.engine.subscriber_id,
            self.system._current_time,
            decrypted=result is not None,
        )


class System:
    """A fully wired PSGuard instance: KDC, broker tree, observability."""

    def __init__(
        self,
        kdc: KDC,
        tree: BrokerTree,
        obs: Observability,
        admission: AdmissionController | None = None,
        parallel: "ShardedMatcher | None" = None,
        renewal: RenewalPolicy | None = None,
    ):
        self.kdc = kdc
        self.tree = tree
        self.obs = obs
        #: Default key-lifecycle policy for subscribers; when set,
        #: ``subscribe()`` opens standing subscriptions and
        #: :meth:`advance` renews them across epoch boundaries.
        self.renewal = renewal
        #: The publication timeline's current instant (the facade is
        #: synchronous; time only moves via publishes and `advance`).
        self.clock = 0.0
        #: Edge admission controller, or None when unconfigured.
        #: Checked by the facade itself before an event enters the tree
        #: (:meth:`_disseminate` reports the verdict explicitly), so
        #: publisher sessions never have to infer sheds from counter
        #: diffs.
        self.admission = admission
        #: Sharded parallel matcher bound to the tree, or None.
        self.parallel = parallel
        self._shed_events = 0
        self.registry = obs.registry
        self.tracer = obs.tracer
        self.publishers: dict[str, SessionPublisher] = {}
        self.subscribers: dict[str, SessionSubscriber] = {}
        self._leaf_cursor = 0
        self._next_seq = 0
        self._current_sealed: SealedEvent | None = None
        self._current_seq: int | None = None
        self._current_time = 0.0

    @staticmethod
    def builder() -> "SystemBuilder":
        return SystemBuilder()

    # -- principals -----------------------------------------------------------

    def publisher(self, publisher_id: str) -> SessionPublisher:
        """Get or create the publishing session for *publisher_id*."""
        session = self.publishers.get(publisher_id)
        if session is None:
            session = SessionPublisher(self, publisher_id)
            self.publishers[publisher_id] = session
        return session

    def subscribe(
        self,
        subscriber_id: str,
        *filters: Filter,
        grace_period: float = 0.0,
        at_time: float | None = None,
    ) -> SessionSubscriber:
        """Authorize and attach a subscriber in one call.

        With a renewal policy on the system this opens *standing*
        subscriptions: the session holds a
        :class:`~repro.core.renewal.RenewalManager` and
        :meth:`advance` keeps its grants fresh across epoch
        boundaries.  Without one, grants are one-shot, anchored at
        *at_time* (default: the system clock).
        """
        if subscriber_id in self.subscribers:
            raise ValueError(f"subscriber {subscriber_id!r} already attached")
        session = SessionSubscriber(
            self,
            subscriber_id,
            filters,
            grace_period=grace_period,
            at_time=at_time if at_time is not None else self.clock,
        )
        self.subscribers[subscriber_id] = session
        return session

    def advance(self, at_time: float) -> int:
        """Move the publication timeline to *at_time* and run every
        session's renewal tick (renew due grants, drop expired ones).
        Returns how many renewals completed.  The in-process analogue
        of the REKEY broadcast on the tcp transport."""
        self.clock = max(self.clock, at_time)
        renewed = 0
        for session in self.subscribers.values():
            if session.renewal is not None:
                renewed += session.renewal.tick(self.clock)
        return renewed

    def schema_lookup(self, topic: str) -> CompositeKeySpace:
        """Topic schema resolver (schemas are public configuration)."""
        return self.kdc.config_for(topic).schema

    @property
    def shed_events(self) -> int:
        """Publications refused by the facade's admission gate."""
        return self._shed_events

    def parallel_stats(self) -> dict:
        """Utilization snapshot of the bound parallel matcher ({} if none)."""
        return self.parallel.stats() if self.parallel is not None else {}

    # -- dissemination --------------------------------------------------------

    def _next_leaf(self) -> Hashable:
        leaves = self.tree.leaf_ids()
        leaf = leaves[self._leaf_cursor % len(leaves)]
        self._leaf_cursor += 1
        return leaf

    def _disseminate(
        self, sealed: SealedEvent, at_time: float
    ) -> tuple[int, bool]:
        """Push one sealed publication into the tree.

        Returns ``(fanout, shed)``: *shed* is True when the admission
        gate refused the event (it then reached no subscriber), so
        callers learn the verdict directly instead of diffing counters.
        The facade is synchronous -- the bucket's clock is the
        publication timeline (the ``at_time`` each publish carries).
        """
        self._current_time = at_time
        if self.admission is not None and not self.admission.admit(
            priority_of(sealed.routable), at_time
        ):
            self._shed_events += 1
            return 0, True
        seq = self._next_seq
        self._next_seq += 1
        self.tracer.start_trace(("api", seq), at=at_time)
        self.tracer.span(("api", seq), "publish", 0, at_time)
        self._current_sealed = sealed
        self._current_seq = ("api", seq)
        try:
            return self.tree.publish(sealed.routable), False
        finally:
            self._current_sealed = None
            self._current_seq = None

    # -- observability --------------------------------------------------------

    def snapshot(self) -> dict:
        return self.obs.snapshot()

    def to_json(self, indent: int | None = 2) -> str:
        return self.obs.to_json(indent=indent)

    def to_prometheus(self) -> str:
        return self.obs.to_prometheus()


class SystemBuilder:
    """Fluent construction of a :class:`System`.

    Defaults give a working three-broker tree with an in-process KDC;
    every knob is optional.  The knobs accumulate into one
    :class:`SystemOptions` value (``self._options``), the same dataclass
    :func:`connect` resolves its keyword arguments into.
    """

    def __init__(self):
        self._options = SystemOptions()
        self._kdc: KDC | None = None
        self._obs: Observability | None = None
        self._topics: list[tuple[str, CompositeKeySpace, float, bool]] = []

    def options(self, options: SystemOptions) -> "SystemBuilder":
        """Replace every construction knob at once with *options*
        (live objects -- the KDC, observability, topics -- persist)."""
        self._options = options
        return self

    def brokers(self, num_brokers: int, arity: int = 2) -> "SystemBuilder":
        """Size the dissemination tree."""
        self._options = replace(
            self._options, num_brokers=num_brokers, arity=arity
        )
        return self

    def master_key(self, key: bytes) -> "SystemBuilder":
        """Fix ``rk(KDC)`` (reproducible key material)."""
        self._options = replace(self._options, master_key=key)
        return self

    def kdc(self, kdc: KDC) -> "SystemBuilder":
        """Use an existing KDC (e.g. one replica of a cluster)."""
        self._kdc = kdc
        return self

    def observability(self, obs: Observability) -> "SystemBuilder":
        """Share an existing metrics/tracing bundle."""
        self._obs = obs
        return self

    def admission(
        self,
        controller: AdmissionController | None = None,
        *,
        rate: float = 100.0,
        burst: float | None = None,
        reserve: float = 0.2,
    ) -> "SystemBuilder":
        """Gate locally injected publications at the root broker.

        Pass a ready :class:`~repro.flow.AdmissionController`, or let
        the builder make one: *rate* events/s sustained, bursts up to
        *burst* (default ``2 x rate``), the last *reserve* fraction of
        the bucket held for high-priority events.  Shed publications
        reach no subscriber and count in ``System.shed_events`` (and in
        ``flow_shed_total{stage="admission"}``).
        """
        if controller is not None:
            self._options = replace(self._options, admission=controller)
        else:
            self._options = replace(
                self._options,
                admission={
                    "rate": rate,
                    "burst": burst if burst is not None else 2.0 * rate,
                    "reserve": reserve,
                },
            )
        return self

    def parallel(
        self, workers: int, chunk_size: int = 64
    ) -> "SystemBuilder":
        """Shard batch matching across *workers* processes.

        The built system carries a shared match-result cache and a
        :class:`~repro.parallel.ShardedMatcher` bound to its tree
        (``system.parallel``); batch publishes through ``system.tree``
        prime the cache in parallel before the serial walk, and
        ``system.parallel_stats()`` exposes worker utilization.  With
        ``workers <= 1`` the matcher stays in serial-fallback mode, so
        the knob is safe to set unconditionally.
        """
        self._options = replace(
            self._options,
            parallel={"workers": workers, "chunk_size": chunk_size},
        )
        return self

    def transport(self, kind: str) -> "SystemBuilder":
        """Choose how events move: ``"inproc"`` (default) keeps the
        synchronous in-process :class:`~repro.siena.network.BrokerTree`;
        ``"tcp"`` deploys the same broker tree as a localhost TCP
        cluster (:class:`repro.rtnet.LiveSystem`) -- real sockets,
        framed PSE2 events, tokenized in-network matching."""
        self._options = replace(self._options, transport=kind)
        return self

    def renewal(
        self,
        policy: RenewalPolicy | None = None,
        *,
        lead: float = 0.0,
        grace: float = 0.0,
    ) -> "SystemBuilder":
        """Keep subscriber grants fresh across epoch boundaries.

        Pass a ready :class:`~repro.core.renewal.RenewalPolicy`, or let
        the builder make one from *lead* (renew this many seconds before
        a grant's epoch expires) and *grace* (keep an expired grant
        usable this long after the boundary).  On the inproc transport
        renewals run from :meth:`System.advance`; on tcp the built
        :class:`~repro.rtnet.LiveSystem` hosts a KDC endpoint beside the
        broker tree and subscribers renew in-band over GRANT/GRANT_ACK,
        driven by REKEY broadcasts.
        """
        if policy is None:
            policy = RenewalPolicy(lead=lead, grace=grace)
        self._options = replace(self._options, renewal=policy)
        return self

    def topic(
        self,
        name: str,
        schema: CompositeKeySpace | None = None,
        numeric: dict[str, int] | None = None,
        epoch_length: float = 3600.0,
        per_publisher: bool = False,
    ) -> "SystemBuilder":
        """Register a topic; *numeric* maps attribute name -> range size."""
        if schema is None:
            schema = CompositeKeySpace(
                {
                    attribute: NumericKeySpace(attribute, size)
                    for attribute, size in (numeric or {}).items()
                }
            )
        self._topics.append((name, schema, epoch_length, per_publisher))
        return self

    def build(self) -> "System | LiveSystem":
        options = self._options
        obs = self._obs if self._obs is not None else Observability()
        kdc = self._kdc
        if kdc is None:
            kdc = (
                KDC(master_key=options.master_key)
                if options.master_key is not None
                else KDC()
            )
        for name, schema, epoch_length, per_publisher in self._topics:
            kdc.register_topic(name, schema, epoch_length, per_publisher)
        if options.transport == "tcp":
            if options.admission is not None or options.parallel is not None:
                raise ValueError(
                    "admission control and parallel matching are not yet "
                    "wired through the tcp transport"
                )
            from repro.rtnet.live import LiveSystem

            return LiveSystem(
                kdc,
                obs,
                num_brokers=options.num_brokers,
                arity=options.arity,
                renewal=options.renewal,
            )
        matcher = None
        match_cache = None
        if options.parallel is not None:
            from repro.parallel.executor import ShardedMatcher
            from repro.parallel.policy import ParallelPolicy
            from repro.siena.index import MatchResultCache

            match_cache = MatchResultCache(registry=obs.registry)
            matcher = ShardedMatcher(
                ParallelPolicy(**options.parallel),
                match="plain",
                registry=obs.registry,
            )
        tree = BrokerTree(
            num_brokers=options.num_brokers,
            arity=options.arity,
            registry=obs.registry,
            match_cache=match_cache,
        )
        if matcher is not None:
            tree.bind_parallel(matcher)
        admission = options.admission
        if isinstance(admission, dict):
            admission = AdmissionController(
                registry=obs.registry, **admission
            )
        return System(
            kdc,
            tree,
            obs,
            admission=admission,
            parallel=matcher,
            renewal=options.renewal,
        )


def connect(
    topic: str | None = None,
    numeric: dict[str, int] | None = None,
    brokers: int | None = None,
    *,
    arity: int | None = None,
    transport: str | None = None,
    parallel: int | dict | None = None,
    admission: "AdmissionController | dict | None" = None,
    renewal: RenewalPolicy | None = None,
    master_key: bytes | None = None,
    options: SystemOptions | None = None,
    **topic_kwargs,
) -> "System | LiveSystem":
    """One-call convenience: ``connect(topic="news", numeric={...})``.

    Every builder knob is reachable here too -- both surfaces resolve
    to the same :class:`SystemOptions` before building.  Pass a ready
    *options* value as the base; explicit keyword arguments override
    its fields.  *parallel* accepts a worker count or a full
    ``{"workers", "chunk_size"}`` spec; *admission* accepts a ready
    controller or a ``{"rate", "burst", "reserve"}`` spec.
    """
    resolved = options if options is not None else SystemOptions()
    overrides: dict = {}
    if brokers is not None:
        overrides["num_brokers"] = brokers
    if arity is not None:
        overrides["arity"] = arity
    if transport is not None:
        overrides["transport"] = transport
    if parallel is not None:
        overrides["parallel"] = (
            parallel
            if isinstance(parallel, dict)
            else {"workers": parallel, "chunk_size": 64}
        )
    if admission is not None:
        overrides["admission"] = admission
    if renewal is not None:
        overrides["renewal"] = renewal
    if master_key is not None:
        overrides["master_key"] = master_key
    if overrides:
        resolved = replace(resolved, **overrides)
    builder = System.builder().options(resolved)
    if topic is not None:
        builder.topic(topic, numeric=numeric, **topic_kwargs)
    return builder.build()
