"""The :class:`ShardedMatcher`: process-pool parallel match evaluation.

The matcher owns a refcounted table of every registered subscription
filter (fed by :meth:`BrokerTree.bind_parallel` hooks or directly) and a
lazily (re)built :class:`~concurrent.futures.ProcessPoolExecutor` whose
workers each hold the full table, partitioned into ``workers`` shards by
:func:`~repro.parallel.wire.shard_of` (topic-token groups hash by group
value, ungrouped filters by canonical filter bytes).

:meth:`prime` is the integration point: given a batch of events it fans
``(shard, chunk)`` match tasks across the pool and seeds the shared
:class:`~repro.siena.index.MatchResultCache` with the returned verdicts
-- full-filter verdicts, group stand-in verdicts, and the topic-group
memo.  Dissemination then proceeds down the ordinary serial broker walk,
hitting the cache instead of recomputing PRFs, so delivery order, dedup,
and per-subscriber streams are bit-identical to the serial path.

Serial fallback -- :meth:`prime` becomes a no-op returning 0 -- triggers
when the policy is serial (``workers <= 1``), the batch cannot use a
cache (none attached), the events cannot take the compact wire form, or
the pool cannot be (re)built or breaks mid-batch.  Every fallback counts
in ``parallel_serial_fallbacks_total`` so a silently-serial deployment is
visible in metrics.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry
from repro.parallel import worker as _worker
from repro.parallel.policy import ParallelPolicy
from repro.parallel.wire import encode_events, encode_filters
from repro.siena.events import Event
from repro.siena.filters import Filter

if TYPE_CHECKING:  # pragma: no cover
    from repro.siena.index import MatchResultCache

_MATCH_MODES = ("tokenized", "plain")


class ShardedMatcher:
    """Sharded parallel match evaluation behind a ``prime()`` call.

    One instance per trust domain and filter population; bind it to a
    tree with :meth:`BrokerTree.bind_parallel` (which wires the
    subscribe/unsubscribe hooks and the shared match cache) or drive
    :meth:`register_filter` / :meth:`prime` directly.
    """

    def __init__(
        self,
        policy: ParallelPolicy,
        match: str = "tokenized",
        registry: MetricsRegistry | None = None,
        mp_context=None,
    ):
        if match not in _MATCH_MODES:
            raise ValueError(
                f"match mode must be one of {_MATCH_MODES}, got {match!r}"
            )
        self.policy = policy
        self.match_mode = match
        self.registry = registry if registry is not None else MetricsRegistry()
        self._mp_context = mp_context
        self._refcounts: dict[Filter, int] = {}
        self._order: list[Filter] = []
        self._generation = 0
        self._built_generation = -1
        self._pool: ProcessPoolExecutor | None = None
        self._cache: "MatchResultCache | None" = None
        self._closed = False
        # Plain counters mirrored into the registry so ``stats()`` stays a
        # cheap dict build while exporters see the full metric families.
        self.tasks = 0
        self.primed_verdicts = 0
        self.serial_fallbacks = 0
        self.rebuilds = 0
        self.busy_seconds = 0.0
        self._c_tasks = self.registry.counter(
            "parallel_tasks_total", kind="match"
        )
        self._c_primed = self.registry.counter("parallel_primed_verdicts_total")
        self._c_rebuilds = self.registry.counter("parallel_rebuilds_total")
        self._g_queue_depth = self.registry.gauge("parallel_queue_depth")

    # -- filter table ------------------------------------------------------

    def register_filter(self, subscription_filter: Filter) -> None:
        """Add one registration of *subscription_filter* (refcounted)."""
        count = self._refcounts.get(subscription_filter, 0)
        self._refcounts[subscription_filter] = count + 1
        if count == 0:
            self._order.append(subscription_filter)
            self._generation += 1

    def unregister_filter(self, subscription_filter: Filter) -> None:
        """Drop one registration; the table shrinks at refcount zero."""
        count = self._refcounts.get(subscription_filter)
        if count is None:
            return
        if count <= 1:
            del self._refcounts[subscription_filter]
            self._order.remove(subscription_filter)
            self._generation += 1
        else:
            self._refcounts[subscription_filter] = count - 1

    def attach_cache(self, match_cache: "MatchResultCache | None") -> None:
        """Default verdict sink for :meth:`prime` calls without one."""
        self._cache = match_cache

    @property
    def filter_count(self) -> int:
        return len(self._order)

    # -- pool lifecycle ----------------------------------------------------

    def _fallback(self, reason: str) -> int:
        self.serial_fallbacks += 1
        self.registry.counter(
            "parallel_serial_fallbacks_total", reason=reason
        ).inc()
        return 0

    def _ensure_pool(self) -> bool:
        """(Re)build the pool when the filter table changed; False = can't."""
        if self._pool is not None and self._built_generation == self._generation:
            return True
        rebuilt = self._pool is not None
        self._shutdown_pool()
        try:
            filters_wire = encode_filters(self._order)
            self._pool = ProcessPoolExecutor(
                max_workers=self.policy.workers,
                mp_context=self._mp_context,
                initializer=_worker.init_matcher,
                initargs=(filters_wire, self.policy.workers, self.match_mode),
            )
        except (OSError, TypeError, ValueError):
            self._pool = None
            return False
        self._built_generation = self._generation
        if rebuilt:
            self.rebuilds += 1
            self._c_rebuilds.inc()
        return True

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Release the worker pool; further primes fall back to serial."""
        self._closed = True
        self._shutdown_pool()

    def __enter__(self) -> "ShardedMatcher":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- priming -----------------------------------------------------------

    def prime(
        self,
        events: list[Event],
        match_cache: "MatchResultCache | None" = None,
    ) -> int:
        """Precompute match verdicts for *events* across the worker pool.

        Seeds *match_cache* (or the attached default) and returns the
        number of verdicts primed; 0 means the serial path runs uncached
        (serial policy, no cache, unwireable events, or a broken pool --
        all counted under ``parallel_serial_fallbacks_total``).
        """
        cache = match_cache if match_cache is not None else self._cache
        if not events or not self._order:
            return 0
        if self._closed:
            return self._fallback("closed")
        if not self.policy.parallel:
            return self._fallback("serial_policy")
        if cache is None:
            return self._fallback("no_cache")
        try:
            chunks = [
                events[start: start + self.policy.chunk_size]
                for start in range(0, len(events), self.policy.chunk_size)
            ]
            chunk_wires = [encode_events(chunk) for chunk in chunks]
        except TypeError:
            return self._fallback("unwireable_events")
        if not self._ensure_pool():
            return self._fallback("pool_unavailable")

        shards = self.policy.workers
        futures = []
        try:
            for chunk_index, wire in enumerate(chunk_wires):
                for shard in range(shards):
                    futures.append(
                        (chunk_index, shard,
                         self._pool.submit(_worker.match_chunk, shard, wire))
                    )
            self._g_queue_depth.set(len(futures))
            merged: list[list] = [
                [None, [], []] for _ in events
            ]
            offsets = [0]
            for chunk in chunks[:-1]:
                offsets.append(offsets[-1] + len(chunk))
            for chunk_index, shard, future in futures:
                busy, results = future.result()
                self.tasks += 1
                self._c_tasks.inc()
                self.busy_seconds += busy
                self.registry.counter(
                    "parallel_worker_busy_seconds_total", shard=str(shard)
                ).inc(busy)
                base = offsets[chunk_index]
                for position, (verified, tested, verdicts) in enumerate(
                    results
                ):
                    bundle = merged[base + position]
                    if verified is not None:
                        bundle[0] = verified
                    bundle[1].extend(tested)
                    bundle[2].extend(verdicts)
        except Exception:
            # A dead worker (OOM kill, interpreter crash) breaks the pool:
            # drop it, run this batch serially, rebuild on the next prime.
            self._shutdown_pool()
            self._built_generation = -1
            return self._fallback("pool_broken")
        finally:
            self._g_queue_depth.set(0)

        from repro.routing.tokens import TOPIC_TOKEN_ATTRIBUTE

        primed = 0
        for event, (verified, tested, verdicts) in zip(events, merged):
            for group, ok in tested:
                cache.store(_worker.group_stand_in(group), event, ok)
                primed += 1
            if verified is not None:
                event_token = event.get(TOPIC_TOKEN_ATTRIBUTE)
                if isinstance(event_token, str):
                    cache.remember_topic_group(event_token, verified)
            for index, ok in verdicts:
                cache.store(self._order[index], event, ok)
                primed += 1
        self.primed_verdicts += primed
        self._c_primed.inc(primed)
        return primed

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """JSON-able utilization summary for ``parallel_stats()``."""
        return {
            "workers": self.policy.workers,
            "chunk_size": self.policy.chunk_size,
            "match_mode": self.match_mode,
            "filters": len(self._order),
            "tasks": self.tasks,
            "primed_verdicts": self.primed_verdicts,
            "serial_fallbacks": self.serial_fallbacks,
            "rebuilds": self.rebuilds,
            "busy_seconds": self.busy_seconds,
            "pool_live": self._pool is not None,
        }
