"""The :class:`ParallelPolicy` knobs for multi-core dissemination.

One small frozen dataclass shared by every parallel component
(:class:`~repro.parallel.executor.ShardedMatcher`,
:class:`~repro.parallel.crypto.CryptoPool`) and by the surfaces that
accept a ``parallel=`` argument.  ``workers`` counts worker *processes*:
``0`` and ``1`` both mean "stay serial" (the policy exists so callers can
thread one object through without branching), anything above one arms the
process pool.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParallelPolicy:
    """Tuning knobs for the process-pool execution layer.

    ``workers``: worker processes to shard across (``<= 1``: serial).
    ``chunk_size``: events per dispatched task; larger chunks amortize
    IPC overhead, smaller ones balance better across workers.
    """

    workers: int = 0
    chunk_size: int = 64

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be at least one event")

    @property
    def parallel(self) -> bool:
        """Whether this policy arms a worker pool at all."""
        return self.workers > 1
