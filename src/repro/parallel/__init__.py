"""``repro.parallel`` -- the process-pool execution layer.

Shards dissemination work across CPU cores behind three pieces:

- :class:`ParallelPolicy` -- the knobs (worker count, chunk size);
- :class:`ShardedMatcher` -- partitions the subscription table across
  workers and primes the shared match cache with batch verdicts
  (``prime()``), leaving the serial broker walk untouched so delivery
  semantics stay bit-exact;
- :class:`CryptoPool` -- offloads batch seal/open and token-PRF
  evaluation.

Every piece degrades to the serial path (``workers <= 1``, pool failure,
unwireable payloads) and counts the fallback, so code can thread a
policy through unconditionally.  See DESIGN.md ("Parallel execution").
"""

from __future__ import annotations

from repro.parallel.crypto import CryptoPool
from repro.parallel.executor import ShardedMatcher
from repro.parallel.policy import ParallelPolicy
from repro.parallel.wire import (
    decode_events,
    decode_filters,
    encode_events,
    encode_filters,
    shard_of,
)

__all__ = [
    "CryptoPool",
    "ParallelPolicy",
    "ShardedMatcher",
    "decode_events",
    "decode_filters",
    "encode_events",
    "encode_filters",
    "shard_of",
]
