"""Compact wire forms for batches crossing the worker-process boundary.

Worker tasks ship events and filters as concatenated length-prefixed
frames of the canonical per-object codecs (:meth:`Event.to_bytes`,
:meth:`Filter.to_bytes`) instead of pickled object graphs: the frames are
smaller, versioned by the codecs themselves, and -- critically for shard
assignment -- *canonical*, so a hash of the bytes agrees across processes
(Python's ``hash()`` does not: ``PYTHONHASHSEED`` differs per process).
"""

from __future__ import annotations

import struct
import zlib

from repro.siena.events import Event
from repro.siena.filters import Filter


def encode_events(events: list[Event]) -> bytes:
    """Frame a batch of events for one worker task."""
    parts = [struct.pack(">I", len(events))]
    for event in events:
        payload = event.to_bytes()
        parts.append(struct.pack(">I", len(payload)))
        parts.append(payload)
    return b"".join(parts)


def decode_events(data: bytes) -> list[Event]:
    """Inverse of :func:`encode_events`."""
    (count,) = struct.unpack_from(">I", data, 0)
    offset = 4
    events = []
    for _ in range(count):
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        events.append(Event.from_bytes(data[offset: offset + length]))
        offset += length
    return events


def encode_filters(filters: list[Filter]) -> bytes:
    """Frame a filter table for worker initialization."""
    parts = [struct.pack(">I", len(filters))]
    for subscription_filter in filters:
        payload = subscription_filter.to_bytes()
        parts.append(struct.pack(">I", len(payload)))
        parts.append(payload)
    return b"".join(parts)


def decode_filters(data: bytes) -> list[Filter]:
    """Inverse of :func:`encode_filters`."""
    (count,) = struct.unpack_from(">I", data, 0)
    offset = 4
    filters = []
    for _ in range(count):
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        filters.append(Filter.from_bytes(data[offset: offset + length]))
        offset += length
    return filters


def shard_of(key: str | bytes, shards: int) -> int:
    """Deterministic shard assignment, stable across processes.

    CRC32 over the canonical bytes -- NOT ``hash()``, whose string seeds
    differ between the parent and its workers.
    """
    if isinstance(key, str):
        key = key.encode("utf-8")
    return zlib.crc32(key) % shards
