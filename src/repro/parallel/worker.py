"""Worker-process entry points for the parallel execution layer.

Everything here runs inside :class:`concurrent.futures.ProcessPoolExecutor`
workers.  The matcher protocol is *initializer + stateless tasks*: a pool
cannot route a task to a chosen worker, so every worker is initialized
with the FULL filter table (one decode per pool build, amortized over
every subsequent chunk) and each task names the *shard* it evaluates --
the subset of topic-token groups and residual filters that
:func:`repro.parallel.wire.shard_of` assigns to that shard index.  Any
worker can serve any shard; the parent fans one task out per
``(shard, chunk)`` pair and unions the results.

Workers return *verdicts*, not routing decisions: which topic-token group
an event verified against, which groups tested false, and the full-filter
match verdicts for the verified group's members plus the shard's
ungrouped filters.  The parent seeds the shared
:class:`~repro.siena.index.MatchResultCache` with them, and the normal
(serial, semantics-bearing) broker walk then runs entirely on cache hits
-- which is how the parallel path stays bit-exact with the serial one:
the dissemination code path never changes, only where the pure match
verdicts get computed.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.crypto.prf import F
from repro.core.envelope import SealedEvent, open_event, seal_event
from repro.parallel.wire import decode_events, decode_filters, shard_of
from repro.routing.tokens import TokenPRFCache, cached_tokenized_match
from repro.siena.broker import _TOPIC_TOKEN_ATTRIBUTE, _group_value
from repro.siena.events import Event
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op

#: One verdict bundle per event: (verified group or None,
#: [(group, stand-in verdict)] tested, [(filter index, verdict)]).
MatchVerdicts = tuple[
    "str | None", list[tuple[str, bool]], list[tuple[int, bool]]
]


def group_stand_in(group: str) -> Filter:
    """The single-constraint filter standing in for a topic-token group."""
    return Filter.of(Constraint(_TOPIC_TOKEN_ATTRIBUTE, Op.EQ, group))


class _WorkerState:
    """Per-process matcher state built once by :func:`init_matcher`."""

    def __init__(self, filters: list[Filter], shards: int, match_mode: str):
        self.filters = filters
        self.shards = shards
        #: shard -> topic-token group values it owns, in table order
        self.groups: dict[int, list[str]] = {}
        #: group value -> indexes of its member filters
        self.group_members: dict[str, list[int]] = {}
        #: shard -> indexes of ungrouped (residual) filters it owns
        self.residuals: dict[int, list[int]] = {}
        self.group_filters: dict[str, Filter] = {}
        for index, subscription_filter in enumerate(filters):
            group = _group_value(subscription_filter)
            if group is not None:
                members = self.group_members.get(group)
                if members is None:
                    members = self.group_members[group] = []
                    shard = shard_of(group, shards)
                    self.groups.setdefault(shard, []).append(group)
                    self.group_filters[group] = group_stand_in(group)
                members.append(index)
            else:
                shard = shard_of(subscription_filter.to_bytes(), shards)
                self.residuals.setdefault(shard, []).append(index)
        if match_mode == "tokenized":
            self.match: Callable[[Filter, Event], bool] = (
                cached_tokenized_match(TokenPRFCache())
            )
        elif match_mode == "plain":
            self.match = lambda f, e: f.matches(e)
        else:
            raise ValueError(f"unknown match mode {match_mode!r}")


_STATE: _WorkerState | None = None


def init_matcher(filters_wire: bytes, shards: int, match_mode: str) -> None:
    """Pool initializer: decode the filter table, derive shard ownership."""
    global _STATE
    _STATE = _WorkerState(decode_filters(filters_wire), shards, match_mode)


def match_chunk(
    shard: int, events_wire: bytes
) -> tuple[float, list[MatchVerdicts]]:
    """Evaluate one shard's filters against one chunk of events.

    Per event: test the shard's topic-token group stand-ins (stopping at
    the first verified one -- an event routable verifies against exactly
    one token, and the parent's topic-group memo makes the untested rest
    unreachable), then full verdicts for the verified group's members and
    for every residual filter the shard owns.  Returns worker busy
    seconds plus the per-event verdict bundles.
    """
    state = _STATE
    if state is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker used before init_matcher")
    started = time.perf_counter()
    events = decode_events(events_wire)
    owned_groups = state.groups.get(shard, ())
    owned_residuals = state.residuals.get(shard, ())
    results: list[MatchVerdicts] = []
    for event in events:
        verified: str | None = None
        tested: list[tuple[str, bool]] = []
        verdicts: list[tuple[int, bool]] = []
        for group in owned_groups:
            ok = state.match(state.group_filters[group], event)
            tested.append((group, ok))
            if ok:
                verified = group
                for index in state.group_members[group]:
                    verdicts.append(
                        (index, state.match(state.filters[index], event))
                    )
                break
        for index in owned_residuals:
            verdicts.append(
                (index, state.match(state.filters[index], event))
            )
        results.append((verified, tested, verdicts))
    return time.perf_counter() - started, results


# -- crypto offload tasks -------------------------------------------------------

def prf_chunk(
    pairs: list[tuple[bytes, bytes]]
) -> tuple[float, list[bytes]]:
    """``F(token, nonce)`` for each pair (token-proof evaluation)."""
    started = time.perf_counter()
    proofs = [F(token, nonce) for token, nonce in pairs]
    return time.perf_counter() - started, proofs


def seal_chunk(jobs: list[tuple]) -> tuple[float, list[bytes]]:
    """Seal a chunk of events; results travel back in wire form.

    Each job is ``(event, schema, topic_key, secret_attributes,
    extra_lock_subsets)`` exactly as :func:`repro.core.envelope.seal_event`
    takes them.
    """
    started = time.perf_counter()
    sealed_wire = []
    for event, schema, topic_key, secret_attributes, extra in jobs:
        sealed = seal_event(
            event, schema, topic_key, set(secret_attributes), extra
        )
        sealed_wire.append(sealed.to_bytes())
    return time.perf_counter() - started, sealed_wire


def open_chunk(jobs: list[tuple]) -> tuple[float, list]:
    """Open a chunk of sealed events (wire form in, OpenResult out).

    Each job is ``(sealed_wire, schema, component_keys, hash_operations)``;
    an unsatisfiable or corrupt envelope yields ``None`` in its slot
    instead of failing the whole chunk.
    """
    started = time.perf_counter()
    results = []
    for sealed_wire, schema, component_keys, hash_operations in jobs:
        try:
            sealed = SealedEvent.from_bytes(sealed_wire)
            results.append(
                open_event(sealed, schema, component_keys, hash_operations)
            )
        except ValueError:
            results.append(None)
    return time.perf_counter() - started, results
