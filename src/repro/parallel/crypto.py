"""The :class:`CryptoPool`: batch crypto offload to worker processes.

Sealing, opening, and token-PRF evaluation are pure per-item functions
(modulo fresh randomness, which is semantically free to move between
processes), so whole batches offload cleanly: the pool chunks a batch by
``policy.chunk_size``, fans the chunks across workers, and reassembles
results in order.  Sealed events cross the boundary in their compact
wire form (:meth:`SealedEvent.to_bytes`) rather than as pickled object
graphs.

With a serial policy (``workers <= 1``), or when the pool cannot start
or breaks, every method computes in-process with identical results --
the same serial-fallback contract as
:class:`~repro.parallel.executor.ShardedMatcher`, counted under the same
``parallel_serial_fallbacks_total`` metric.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.crypto.prf import F
from repro.core.envelope import OpenResult, SealedEvent, open_event, seal_event
from repro.obs.metrics import MetricsRegistry
from repro.parallel import worker as _worker
from repro.parallel.policy import ParallelPolicy

#: One seal job: (event, schema, topic_key, secret_attributes, extra_locks).
SealJob = tuple
#: One open job: (sealed, schema, component_keys, hash_operations).
OpenJob = tuple


class CryptoPool:
    """Offloads batch seal/open/PRF work across worker processes."""

    def __init__(
        self,
        policy: ParallelPolicy,
        registry: MetricsRegistry | None = None,
        mp_context=None,
    ):
        self.policy = policy
        self.registry = registry if registry is not None else MetricsRegistry()
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False
        self.tasks = 0
        self.offloaded = 0
        self.serial_fallbacks = 0
        self.busy_seconds = 0.0
        self._c_offloaded = self.registry.counter("parallel_prf_offloaded_total")

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self) -> bool:
        if self._closed or not self.policy.parallel:
            return False
        if self._pool is not None:
            return True
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=self.policy.workers,
                mp_context=self._mp_context,
            )
        except (OSError, ValueError):
            self._pool = None
        return self._pool is not None

    def _note_fallback(self, reason: str) -> None:
        self.serial_fallbacks += 1
        self.registry.counter(
            "parallel_serial_fallbacks_total", reason=reason
        ).inc()

    def close(self) -> None:
        """Release the worker pool; further batches compute in-process."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "CryptoPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------

    def _run_chunks(self, task, jobs: list, kind: str):
        """Fan *jobs* across the pool in order-preserving chunks.

        Returns the concatenated per-chunk results, or None when the
        batch must compute serially (policy, pool failure).
        """
        if not jobs:
            return []
        if not self._ensure_pool():
            if self.policy.parallel and not self._closed:
                self._note_fallback("pool_unavailable")
            else:
                self._note_fallback("serial_policy")
            return None
        chunks = [
            jobs[start: start + self.policy.chunk_size]
            for start in range(0, len(jobs), self.policy.chunk_size)
        ]
        try:
            futures = [self._pool.submit(task, chunk) for chunk in chunks]
            results = []
            for shard, future in enumerate(futures):
                busy, chunk_results = future.result()
                self.tasks += 1
                self.busy_seconds += busy
                self.registry.counter(
                    "parallel_tasks_total", kind=kind
                ).inc()
                self.registry.counter(
                    "parallel_worker_busy_seconds_total",
                    shard=str(shard % max(1, self.policy.workers)),
                ).inc(busy)
                results.extend(chunk_results)
            return results
        except Exception:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            self._note_fallback("pool_broken")
            return None

    # -- batch operations --------------------------------------------------

    def prf_batch(self, pairs: list[tuple[bytes, bytes]]) -> list[bytes]:
        """``F(token, nonce)`` for each pair, offloaded when parallel."""
        results = self._run_chunks(_worker.prf_chunk, list(pairs), "prf")
        if results is None:
            return [F(token, nonce) for token, nonce in pairs]
        self.offloaded += len(pairs)
        self._c_offloaded.inc(len(pairs))
        return results

    def seal_batch(self, jobs: list[SealJob]) -> list[SealedEvent]:
        """Seal a batch of events; same contract as per-item ``seal_event``.

        Each job is ``(event, schema, topic_key, secret_attributes)`` with
        an optional fifth ``extra_lock_subsets`` member.
        """
        normalized = [
            job if len(job) == 5 else (*job, None) for job in jobs
        ]
        results = self._run_chunks(_worker.seal_chunk, normalized, "seal")
        if results is None:
            return [
                seal_event(event, schema, topic_key, set(secret), extra)
                for event, schema, topic_key, secret, extra in normalized
            ]
        return [SealedEvent.from_bytes(wire) for wire in results]

    def open_batch(self, jobs: list[OpenJob]) -> list[OpenResult | None]:
        """Open a batch of sealed events; unsatisfiable slots are None.

        Each job is ``(sealed, schema, component_keys)`` with an optional
        fourth ``hash_operations`` member.
        """
        normalized = [
            job if len(job) == 4 else (*job, 0) for job in jobs
        ]
        wire_jobs = [
            (sealed.to_bytes(), schema, component_keys, hash_operations)
            for sealed, schema, component_keys, hash_operations in normalized
        ]
        results = self._run_chunks(_worker.open_chunk, wire_jobs, "open")
        if results is not None:
            return results
        opened: list[OpenResult | None] = []
        for sealed, schema, component_keys, hash_operations in normalized:
            try:
                opened.append(
                    open_event(sealed, schema, component_keys, hash_operations)
                )
            except ValueError:
                opened.append(None)
        return opened

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """JSON-able utilization summary."""
        return {
            "workers": self.policy.workers,
            "chunk_size": self.policy.chunk_size,
            "tasks": self.tasks,
            "offloaded": self.offloaded,
            "serial_fallbacks": self.serial_fallbacks,
            "busy_seconds": self.busy_seconds,
            "pool_live": self._pool is not None,
        }
