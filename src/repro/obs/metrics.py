"""A zero-dependency metrics substrate: counters, gauges, histograms.

Every runtime layer of the reproduction (brokers, the reliable overlay,
the KDC cluster, routing) tallies what it did; before this module each
layer kept an ad-hoc ``*Stats`` dataclass, invisible to everything else.
``MetricsRegistry`` replaces those internals with shared, exportable
instruments:

- :class:`Counter` -- a monotonically growing tally (``*_total`` names);
- :class:`Gauge` -- a value that moves both ways (view numbers, breaker
  state);
- :class:`Histogram` -- count/sum/min/max plus **streaming quantiles**
  (p50/p95/p99 by default) computed with the P2 (P-squared) algorithm
  (Jain & Chlamtac, CACM 1985), so latency distributions cost O(1)
  memory per tracked quantile instead of storing samples;
- :class:`Timer` -- a context manager observing elapsed time into a
  histogram, driven by any clock (wall clock by default, ``sim.now``
  inside the discrete-event simulator).

Instruments are identified by ``(name, labels)``; ``registry.counter()``
et al. are get-or-create, so independent layers sharing a registry
accumulate into the same series.  :class:`RegistryBackedStats` is the
adapter that lets the legacy ``stats.field`` attribute API (reads *and*
``+=`` writes) keep working as a thin view over registry counters.
"""

from __future__ import annotations

import math
import time
from typing import Callable, ClassVar, Iterator

#: The default quantiles a histogram tracks.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def series_name(name: str, labels: LabelKey) -> str:
    """Render ``name{k="v",...}`` (Prometheus series notation)."""
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically growing tally."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value: float = 0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only grow; use a Gauge to go down")
        self._value += amount

    def set(self, value: float) -> None:
        """Overwrite the value (only for stats-view writes and resets)."""
        self._value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({series_name(self.name, self.labels)}={self._value})"


class Gauge:
    """A value that can move in both directions."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value: float = 0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self._value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({series_name(self.name, self.labels)}={self._value})"


class _P2Quantile:
    """One streaming quantile estimate (the P^2 algorithm).

    Five markers track the running estimate; memory and per-observation
    cost are O(1).  Until five observations arrive the exact sorted
    sample is used.
    """

    __slots__ = ("p", "_q", "_n", "_desired", "_rate", "_count")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError("quantile must be strictly inside (0, 1)")
        self.p = p
        self._q: list[float] = []  # marker heights
        self._n = [1.0, 2.0, 3.0, 4.0, 5.0]  # marker positions
        self._desired = [1.0, 1.0 + 2 * p, 1.0 + 4 * p, 3.0 + 2 * p, 5.0]
        self._rate = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self._count = 0

    def observe(self, x: float) -> None:
        self._count += 1
        if self._count <= 5:
            self._q.append(x)
            if self._count == 5:
                self._q.sort()
            return
        q, n = self._q, self._n
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 3
            for i in range(1, 4):
                if x < q[i]:
                    k = i - 1
                    break
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._desired[i] += self._rate[i]
        for i in (1, 2, 3):
            drift = self._desired[i] - n[i]
            if (drift >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                drift <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if drift > 0 else -1.0
                candidate = self._parabolic(i, step)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, step)
                q[i] = candidate
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q, n = self._q, self._n
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        q, n = self._q, self._n
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        if self._count == 0:
            return math.nan
        if self._count < 5:
            ordered = sorted(self._q)
            # Linear interpolation over the exact (small) sample.
            position = self.p * (len(ordered) - 1)
            low = int(position)
            high = min(low + 1, len(ordered) - 1)
            return ordered[low] + (position - low) * (
                ordered[high] - ordered[low]
            )
        return self._q[2]


class Histogram:
    """Count/sum/min/max plus streaming quantiles; no stored samples."""

    kind = "histogram"
    __slots__ = ("name", "labels", "count", "sum", "min", "max", "_quantiles")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
    ):
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._quantiles = {q: _P2Quantile(q) for q in quantiles}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for estimator in self._quantiles.values():
            estimator.observe(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    @property
    def tracked_quantiles(self) -> tuple[float, ...]:
        return tuple(self._quantiles)

    def quantile(self, q: float) -> float:
        """The streaming estimate for tracked quantile *q*."""
        estimator = self._quantiles.get(q)
        if estimator is None:
            raise KeyError(
                f"quantile {q} is not tracked by {self.name} "
                f"(tracked: {sorted(self._quantiles)})"
            )
        return estimator.value

    def snapshot(self) -> dict:
        """A JSON-able summary of the distribution."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean if self.count else None,
            "quantiles": {
                f"p{int(q * 100)}": estimator.value
                for q, estimator in self._quantiles.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram({series_name(self.name, self.labels)} "
            f"count={self.count})"
        )


class Timer:
    """Observe elapsed time into a histogram; any clock, re-entrant.

    >>> registry = MetricsRegistry()
    >>> timer = registry.timer("work_seconds")
    >>> with timer:
    ...     pass
    >>> registry.histogram("work_seconds").count
    1
    """

    __slots__ = ("histogram", "clock", "_starts")

    def __init__(
        self,
        histogram: Histogram,
        clock: Callable[[], float] | None = None,
    ):
        self.histogram = histogram
        self.clock = clock if clock is not None else time.perf_counter
        self._starts: list[float] = []

    def __enter__(self) -> "Timer":
        self._starts.append(self.clock())
        return self

    def __exit__(self, *_exc_info) -> None:
        self.histogram.observe(self.clock() - self._starts.pop())

    def start(self) -> "TimerHandle":
        """An explicit handle for spans crossing callbacks (async code)."""
        return TimerHandle(self)

    def observe_since(self, start: float) -> float:
        """Observe ``clock() - start``; returns the elapsed time."""
        elapsed = self.clock() - start
        self.histogram.observe(elapsed)
        return elapsed


class TimerHandle:
    """One in-flight timed span started via :meth:`Timer.start`."""

    __slots__ = ("timer", "started_at", "_done")

    def __init__(self, timer: Timer):
        self.timer = timer
        self.started_at = timer.clock()
        self._done = False

    def stop(self) -> float:
        """Observe and return the elapsed time (idempotent)."""
        elapsed = self.timer.clock() - self.started_at
        if not self._done:
            self._done = True
            self.timer.histogram.observe(elapsed)
        return elapsed


class MetricsRegistry:
    """Get-or-create registry of named, labelled instruments."""

    def __init__(self):
        self._metrics: dict[tuple[str, LabelKey], object] = {}
        self._timers: dict[tuple[str, LabelKey], Timer] = {}

    def _get_or_create(self, cls, name: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {series_name(*key)} already registered as "
                f"{metric.kind}, not {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
        **labels,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, quantiles=quantiles
        )

    def timer(
        self,
        name: str,
        clock: Callable[[], float] | None = None,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
        **labels,
    ) -> Timer:
        """A timer observing into ``histogram(name, **labels)``."""
        key = (name, _label_key(labels))
        timer = self._timers.get(key)
        if timer is None:
            timer = Timer(
                self.histogram(name, quantiles=quantiles, **labels), clock
            )
            self._timers[key] = timer
        return timer

    # -- queries --------------------------------------------------------------

    def get(self, name: str, **labels):
        """The instrument at ``(name, labels)``, or ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    def collect(self) -> Iterator[object]:
        """Every instrument, ordered by (name, labels)."""
        for key in sorted(self._metrics, key=lambda k: (k[0], k[1])):
            yield self._metrics[key]

    def series(self, name: str) -> list[object]:
        """Every labelled instrument sharing *name*."""
        return [m for m in self.collect() if m.name == name]

    def total(self, name: str) -> float:
        """Sum of counter/gauge values across all label sets of *name*."""
        return sum(
            m.value
            for m in self.series(name)
            if isinstance(m, (Counter, Gauge))
        )

    def snapshot(self) -> dict:
        """A JSON-able snapshot of every instrument."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for metric in self.collect():
            key = series_name(metric.name, metric.labels)
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            else:
                histograms[key] = metric.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


class RegistryBackedStats:
    """Base class for legacy ``*Stats`` views over registry counters.

    Subclasses declare ``_int_fields`` (the counter-backed attributes)
    and ``_metric_prefix``; attribute reads return the counter's value
    and attribute writes (including ``stats.field += 1``) update it, so
    existing consumers keep working unchanged while the numbers live in
    a shareable, exportable :class:`MetricsRegistry`.
    """

    _int_fields: ClassVar[tuple[str, ...]] = ()
    _metric_prefix: ClassVar[str] = ""

    def __init__(
        self, registry: MetricsRegistry | None = None, **labels
    ):
        registry = registry if registry is not None else MetricsRegistry()
        counters = {
            field: registry.counter(
                f"{self._metric_prefix}{field}_total", **labels
            )
            for field in self._int_fields
        }
        object.__setattr__(self, "_counters", counters)
        object.__setattr__(self, "registry", registry)

    def __getattr__(self, name: str):
        # Only consulted when normal lookup fails -- i.e. for the
        # counter-backed fields, which are not instance attributes.
        counters = object.__getattribute__(self, "_counters")
        if name in counters:
            value = counters[name].value
            return int(value) if value == int(value) else value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            counters[name].set(value)
        else:
            object.__setattr__(self, name, value)

    def inc(self, field: str, amount: float = 1) -> None:
        """Fast-path increment of one counter-backed field."""
        object.__getattribute__(self, "_counters")[field].inc(amount)

    def reset(self) -> None:
        """Zero every counter-backed field."""
        for counter in object.__getattribute__(self, "_counters").values():
            counter.set(0)

    def as_dict(self) -> dict[str, float]:
        """The counter-backed fields as a plain dict."""
        return {field: getattr(self, field) for field in self._int_fields}

    def __eq__(self, other) -> bool:
        # Value equality, like the dataclasses these views replaced.
        if not isinstance(other, type(self)):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{field}={getattr(self, field)}" for field in self._int_fields
        )
        return f"{type(self).__name__}({fields})"
