"""Snapshot exporters: JSON and Prometheus text exposition format.

The registry's live instruments are rendered into the two formats a
deployment actually consumes: a JSON document (artifacts, dashboards,
the ``repro metrics`` CLI) and the Prometheus text format (scrape
endpoints).  Histograms export as Prometheus *summaries* -- quantile
series plus ``_sum``/``_count`` -- because the streaming estimator keeps
quantiles, not buckets.
"""

from __future__ import annotations

import json
import math

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Tracer


def snapshot(
    registry: MetricsRegistry, tracer: Tracer | None = None
) -> dict:
    """One JSON-able document: every instrument plus trace accounting."""
    document = registry.snapshot()
    if tracer is not None:
        document["tracing"] = tracer.summary()
    return document


def to_json(
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    indent: int | None = 2,
) -> str:
    """The snapshot as a JSON string (NaN-free: NaN renders as null)."""

    def scrub(value):
        if isinstance(value, float) and (
            math.isnan(value) or math.isinf(value)
        ):
            return None
        if isinstance(value, dict):
            return {key: scrub(item) for key, item in value.items()}
        if isinstance(value, list):
            return [scrub(item) for item in value]
        return value

    return json.dumps(
        scrub(snapshot(registry, tracer)), indent=indent, sort_keys=True
    )


def _render_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _finite(value: float) -> float:
    return value if math.isfinite(value) else 0.0


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for metric in registry.collect():
        if isinstance(metric, Counter):
            if metric.name not in seen_types:
                lines.append(f"# TYPE {metric.name} counter")
                seen_types.add(metric.name)
            lines.append(
                f"{metric.name}{_render_labels(metric.labels)} "
                f"{metric.value:g}"
            )
        elif isinstance(metric, Gauge):
            if metric.name not in seen_types:
                lines.append(f"# TYPE {metric.name} gauge")
                seen_types.add(metric.name)
            lines.append(
                f"{metric.name}{_render_labels(metric.labels)} "
                f"{metric.value:g}"
            )
        elif isinstance(metric, Histogram):
            if metric.name not in seen_types:
                lines.append(f"# TYPE {metric.name} summary")
                seen_types.add(metric.name)
            for q in metric.tracked_quantiles:
                quantile_label = 'quantile="%g"' % q
                lines.append(
                    f"{metric.name}"
                    f"{_render_labels(metric.labels, quantile_label)}"
                    f" {_finite(metric.quantile(q)):g}"
                )
            labels = _render_labels(metric.labels)
            lines.append(f"{metric.name}_sum{labels} {metric.sum:g}")
            lines.append(f"{metric.name}_count{labels} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")
