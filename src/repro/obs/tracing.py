"""Per-event tracing across the dissemination fabric.

Every published event is stamped with a **trace id** (in the simulated
overlay the publication sequence number doubles as the trace id, riding
the existing ``_seq`` attribute so the wire format is unchanged).  As the
event crosses the system, each layer records a :class:`Span` against
that id:

- ``publish``  -- the event enters the system at the publisher;
- ``hop``      -- one broker-to-broker transmission that arrived
                  (``attempt`` > 0 marks a retransmission, ``path``
                  marks which redundant multipath copy it belongs to);
- ``drop``     -- one transmission the (faulty) medium swallowed;
- ``deliver``  -- the event reached a subscriber endpoint (the span
                  covers the subscriber-side processing/decrypt cost);
- ``decrypt``  -- a cryptographic open attempt (KDC chaos harness).

A :class:`Trace` therefore reconstructs the event's full journey:
hop count, fan-out, retransmits, multipath splits, and end-to-end
latency are queryable per event -- exactly the per-event visibility the
throughput/latency evaluations need.

Spans recorded against an id that was never started are counted in
:attr:`Tracer.dropped_spans` (instrumentation bugs surface as a nonzero
counter, which the ``repro metrics`` smoke check asserts is zero).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping


@dataclass(frozen=True)
class Span:
    """One step of an event's journey."""

    op: str
    node: Hashable
    start: float
    end: float
    attrs: Mapping[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """Every recorded span of one published event, in record order."""

    __slots__ = ("trace_id", "started_at", "attrs", "spans")

    def __init__(
        self,
        trace_id: Hashable,
        started_at: float,
        attrs: Mapping[str, object] | None = None,
    ):
        self.trace_id = trace_id
        self.started_at = started_at
        self.attrs = dict(attrs) if attrs else {}
        self.spans: list[Span] = []

    # -- queries --------------------------------------------------------------

    def ops(self, *names: str) -> list[Span]:
        """Spans whose op is one of *names* (all spans when empty)."""
        if not names:
            return list(self.spans)
        return [span for span in self.spans if span.op in names]

    @property
    def hop_count(self) -> int:
        """Broker-to-broker transmissions that arrived."""
        return len(self.ops("hop"))

    @property
    def retransmits(self) -> int:
        """Transmission attempts beyond each hop's first try."""
        return sum(
            1
            for span in self.ops("hop", "drop")
            if span.attrs.get("attempt", 0)
        )

    @property
    def drops(self) -> int:
        return len(self.ops("drop"))

    @property
    def fan_out(self) -> int:
        """Distinct subscriber endpoints the event reached."""
        return len({span.node for span in self.ops("deliver")})

    @property
    def paths(self) -> set:
        """Distinct multipath copies observed (``path`` span attribute)."""
        return {
            span.attrs["path"]
            for span in self.spans
            if "path" in span.attrs
        }

    @property
    def delivered(self) -> bool:
        return bool(self.ops("deliver"))

    def end_to_end_latency(self) -> float:
        """Publication to last delivery; NaN when nothing was delivered."""
        deliveries = self.ops("deliver")
        if not deliveries:
            return math.nan
        return max(span.end for span in deliveries) - self.started_at

    def first_delivery_latency(self) -> float:
        """Publication to the *first* delivery; NaN when undelivered."""
        deliveries = self.ops("deliver")
        if not deliveries:
            return math.nan
        return min(span.end for span in deliveries) - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({self.trace_id!r}, spans={len(self.spans)}, "
            f"hops={self.hop_count}, fan_out={self.fan_out})"
        )


class Tracer:
    """Registry of per-event traces.

    *max_traces* bounds memory for long-running workloads: when set, the
    oldest traces are evicted (counted in :attr:`traces_evicted`; spans
    arriving for an evicted id are counted separately from genuinely
    unknown ids, so the zero-``dropped_spans`` invariant stays
    meaningful).
    """

    def __init__(self, max_traces: int | None = None):
        if max_traces is not None and max_traces < 1:
            raise ValueError("max_traces must be positive when set")
        self.max_traces = max_traces
        self._traces: dict[Hashable, Trace] = {}
        self._evicted_ids: set[Hashable] = set()
        self._auto_ids = itertools.count()
        self.traces_started = 0
        self.spans_recorded = 0
        #: Spans against ids that were never started -- instrumentation bugs.
        self.dropped_spans = 0
        #: Spans against ids evicted by the *max_traces* bound.
        self.late_spans = 0
        self.traces_evicted = 0

    # -- recording ------------------------------------------------------------

    def start_trace(
        self,
        trace_id: Hashable | None = None,
        at: float = 0.0,
        **attrs,
    ) -> Hashable:
        """Open a trace; returns its id (auto-allocated when ``None``)."""
        if trace_id is None:
            trace_id = next(self._auto_ids)
        if trace_id in self._traces:
            raise ValueError(f"trace {trace_id!r} already started")
        self._traces[trace_id] = Trace(trace_id, at, attrs)
        self.traces_started += 1
        if self.max_traces is not None and len(self._traces) > self.max_traces:
            oldest = next(iter(self._traces))
            del self._traces[oldest]
            self._evicted_ids.add(oldest)
            self.traces_evicted += 1
        return trace_id

    def span(
        self,
        trace_id: Hashable,
        op: str,
        node: Hashable,
        start: float,
        end: float | None = None,
        **attrs,
    ) -> None:
        """Record one span against *trace_id* (instant span when no end)."""
        trace = self._traces.get(trace_id)
        if trace is None:
            if trace_id in self._evicted_ids:
                self.late_spans += 1
            else:
                self.dropped_spans += 1
            return
        trace.spans.append(
            Span(op, node, start, end if end is not None else start, attrs)
        )
        self.spans_recorded += 1

    # -- queries --------------------------------------------------------------

    def trace(self, trace_id: Hashable) -> Trace | None:
        return self._traces.get(trace_id)

    def traces(self) -> Iterator[Trace]:
        yield from self._traces.values()

    def __len__(self) -> int:
        return len(self._traces)

    def summary(self) -> dict:
        """Aggregate trace accounting (JSON-able)."""
        delivered = sum(1 for trace in self.traces() if trace.delivered)
        latencies = [
            trace.end_to_end_latency()
            for trace in self.traces()
            if trace.delivered
        ]
        return {
            "traces_started": self.traces_started,
            "traces_held": len(self._traces),
            "traces_evicted": self.traces_evicted,
            "spans_recorded": self.spans_recorded,
            "dropped_spans": self.dropped_spans,
            "late_spans": self.late_spans,
            "traces_delivered": delivered,
            "mean_end_to_end_latency": (
                sum(latencies) / len(latencies) if latencies else None
            ),
            "total_retransmits": sum(
                trace.retransmits for trace in self.traces()
            ),
            "total_drops": sum(trace.drops for trace in self.traces()),
        }
