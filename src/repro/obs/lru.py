"""Instrumented bounded LRU maps for the hot-path memoization layers.

The engine (PR 4) memoizes three expensive pure computations -- derived
hierarchical keys, Song--Wagner--Perrig token PRFs, and per-broker
filter-match results.  All three need the same substrate: a bounded
mapping with LRU eviction whose hit/miss/eviction counts surface in the
shared :class:`~repro.obs.metrics.MetricsRegistry` so ``repro bench`` and
``repro metrics`` can report cache effectiveness without bespoke plumbing
per layer.

The class is deliberately dependency-free (it lives in ``repro.obs`` so
that low layers such as ``repro.routing.tokens`` and ``repro.siena.index``
can use it without import cycles through ``repro.core``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterator

from repro.obs.metrics import MetricsRegistry


class LRUCache:
    """A bounded mapping with LRU eviction and observable hit/miss counts.

    ``registry`` is optional: when provided, ``<name>_hits_total``,
    ``<name>_misses_total`` and ``<name>_evictions_total`` counters plus a
    ``<name>_entries`` gauge are registered (with ``**labels``) and kept in
    step with the local integer counters, so shared caches show up in
    metrics snapshots alongside broker and transport instruments.
    """

    def __init__(
        self,
        capacity: int,
        name: str = "lru_cache",
        registry: MetricsRegistry | None = None,
        **labels,
    ):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if registry is not None:
            self._c_hits = registry.counter(f"{name}_hits_total", **labels)
            self._c_misses = registry.counter(f"{name}_misses_total", **labels)
            self._c_evictions = registry.counter(
                f"{name}_evictions_total", **labels
            )
            self._g_entries = registry.gauge(f"{name}_entries", **labels)
        else:
            self._c_hits = None
            self._c_misses = None
            self._c_evictions = None
            self._g_entries = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def get(self, key: Hashable, default: object = None) -> object:
        """Counted lookup; refreshes recency on hit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            if self._c_hits is not None:
                self._c_hits.inc()
            return self._entries[key]
        self.misses += 1
        if self._c_misses is not None:
            self._c_misses.inc()
        return default

    def peek(self, key: Hashable, default: object = None) -> object:
        """Uncounted lookup that leaves recency untouched (for tests)."""
        return self._entries.get(key, default)

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) an entry; evicts LRU entries beyond capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            if self._c_evictions is not None:
                self._c_evictions.inc()
        if self._g_entries is not None:
            self._g_entries.set(len(self._entries))

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], object]
    ) -> object:
        """Return the cached value for *key*, computing and storing on miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            if self._c_hits is not None:
                self._c_hits.inc()
            return self._entries[key]
        self.misses += 1
        if self._c_misses is not None:
            self._c_misses.inc()
        value = compute()
        self.put(key, value)
        return value

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        if key in self._entries:
            del self._entries[key]
            if self._g_entries is not None:
                self._g_entries.set(len(self._entries))
            return True
        return False

    def invalidate_where(
        self, predicate: Callable[[Hashable], bool]
    ) -> int:
        """Drop every entry whose key satisfies *predicate*; returns count."""
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            del self._entries[key]
        if doomed and self._g_entries is not None:
            self._g_entries.set(len(self._entries))
        return len(doomed)

    def clear(self) -> None:
        """Drop all entries (counters keep their lifetime totals)."""
        self._entries.clear()
        if self._g_entries is not None:
            self._g_entries.set(0)

    @property
    def hit_rate(self) -> float:
        """Fraction of counted lookups served from cache (0 when none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """JSON-able summary used by ``repro bench`` reports."""
        return {
            "name": self.name,
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
