"""``repro.obs`` -- unified observability for the reproduction.

One :class:`MetricsRegistry` (counters, gauges, streaming-quantile
histograms, timers) plus one :class:`Tracer` (per-event spans across
publisher, brokers, and subscribers) shared by every runtime layer.
:class:`Observability` bundles the pair so harnesses and the
:mod:`repro.api` facade can thread a single object through the stack.

See ``docs/API.md`` for the public surface and the metrics-name
glossary, and ``DESIGN.md`` ("Observability") for the design rationale.
"""

from __future__ import annotations

from repro.obs.export import snapshot, to_json, to_prometheus
from repro.obs.lru import LRUCache
from repro.obs.metrics import (
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistryBackedStats,
    Timer,
    TimerHandle,
    series_name,
)
from repro.obs.tracing import Span, Trace, Tracer

__all__ = [
    "DEFAULT_QUANTILES",
    "Counter",
    "Gauge",
    "Histogram",
    "LRUCache",
    "MetricsRegistry",
    "Observability",
    "RegistryBackedStats",
    "Span",
    "Timer",
    "TimerHandle",
    "Trace",
    "Tracer",
    "series_name",
    "snapshot",
    "to_json",
    "to_prometheus",
]


class Observability:
    """A registry + tracer pair threaded through one system instance."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    def snapshot(self) -> dict:
        """JSON-able snapshot of every instrument plus trace accounting."""
        return snapshot(self.registry, self.tracer)

    def to_json(self, indent: int | None = 2) -> str:
        return to_json(self.registry, self.tracer, indent=indent)

    def to_prometheus(self) -> str:
        return to_prometheus(self.registry)
