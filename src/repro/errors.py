"""``repro.errors`` -- the public exception hierarchy.

Every error the blessed API surfaces derives from :class:`ReproError`,
so callers can write one ``except ReproError`` instead of cataloguing
exception types module by module.  The leaves also subclass the builtin
each one historically was, so code written against earlier releases
(``except ValueError`` around a frame decode, ``except PermissionError``
around a grant request) keeps working unchanged:

- :class:`RateLimited` -- a publish refused by rate limiting or edge
  admission (raised by :class:`~repro.flow.AdmissionController` users
  such as :class:`~repro.core.publisher.Publisher`);
- :class:`GrantDenied` -- the KDC refuses to authorize a revoked
  ``(subscriber, topic)`` pair; terminal, do not retry (lazy
  revocation: the denial bites at the next renewal).  Also importable
  under its historical name ``repro.core.kdc.AuthorizationDenied``;
- :class:`GrantExpired` -- a grant operation completed only after the
  grant's epoch (plus any grace window) had already lapsed;
- :class:`KDCUnavailable` -- no KDC replica could serve the request;
  retryable.  Also importable as ``repro.core.kdc.KDCUnavailableError``;
- :class:`FrameError` -- a byte buffer is not a valid wire artifact
  (grant, sealed event, filter, or rtnet frame).  Subclasses
  :class:`ValueError`, which is what the decoders in
  :mod:`repro.core.wire` and :mod:`repro.rtnet.frames` raised before
  the hierarchy existed.

This module imports nothing from the rest of the package, so any layer
may raise from it without creating import cycles.
"""

from __future__ import annotations

__all__ = [
    "FrameError",
    "GrantDenied",
    "GrantExpired",
    "KDCUnavailable",
    "RateLimited",
    "ReproError",
]


class ReproError(Exception):
    """Base class for every error the PSGuard API raises."""


class RateLimited(ReproError):
    """A publish was refused by rate limiting or edge admission.

    The overload signal AIMD publisher pacing feeds on: back off and
    retry, or drop the publication if it has lost its value.
    """


class GrantDenied(ReproError, PermissionError):
    """The KDC refuses to authorize a revoked (subscriber, topic) pair.

    Lazy revocation (Section 3.1 of the paper): existing grants lapse at
    their epoch's end, and the denial takes effect at the next renewal
    attempt.  This error is *terminal* -- clients must not retry it
    against a replica.
    """


class GrantExpired(ReproError):
    """A grant arrived or was used after its epoch (plus grace) lapsed.

    Raised by the rekey plane when a renewal completes so late that the
    returned grant is already past ``expires_at`` plus the subscriber's
    grace window at install time -- the subscription crossed an epoch
    boundary unprotected and the caller should treat the interval as a
    coverage gap, not silently install a dead grant.
    """


class KDCUnavailable(ReproError, RuntimeError):
    """No KDC (replica) could serve the request.

    Retryable: the caller may try again later.  The networked client
    raises it only after exhausting replicas, retries, and breakers; a
    direct in-process binding raises it to model an unreachable KDC.
    """


class FrameError(ReproError, ValueError):
    """A byte buffer is not a valid PSGuard wire artifact.

    Covers truncated or trailing bytes, corrupt text, unknown tags and
    operators, bad length prefixes -- every malformed-input failure from
    the :mod:`repro.core.wire` codecs and the :mod:`repro.rtnet.frames`
    framing layer.  Subclasses :class:`ValueError` so pre-hierarchy
    handlers keep catching it.
    """
