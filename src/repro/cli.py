"""Command-line interface: ``python -m repro <command>``.

Commands self-register through the :func:`command` decorator -- a
declarative registry of (name, help, argument builder, handler) -- so a
new harness scenario only writes its own handler; ``build_parser`` and
``main`` never change.  Registered commands:

- ``demo``           -- the quickstart medical-records flow;
- ``grant``          -- show the key material the KDC issues for a range
                        subscription (cover elements, key count, bytes);
- ``calibrate``      -- measure the crypto primitive costs on this host;
- ``experiment``     -- regenerate a table/figure series (keys, entropy,
                        construction-cost, cache);
- ``topology``       -- generate a transit-stub topology and report its
                        overlay RTT statistics;
- ``verify``         -- fast self-check of the headline claims;
- ``chaos``          -- run pub-sub workloads under injected broker
                        crashes and link loss, comparing fire-and-forget
                        against reliable at-least-once delivery; the
                        ``kdc`` scenario takes KDC replicas down across
                        an epoch boundary and measures decrypt success;
                        the ``recovery`` scenario kills brokers
                        permanently and gates (``--check``) on tree
                        repair plus exactly-once delivery; the ``rekey``
                        scenario churns membership across live epoch
                        rollovers on real sockets and gates on zero
                        unauthorized opens plus survivor delivery;
- ``metrics``        -- run an instrumented workload and export the
                        metrics/tracing snapshot (JSON or Prometheus);
- ``bench``          -- drive the same Zipf workload through the legacy
                        per-event path and the batched ``repro.engine``,
                        write ``BENCH_engine.json``, and optionally gate
                        against a committed baseline (``--check``);
- ``serve``          -- run one rtnet broker server on a TCP socket,
                        optionally dialing a parent broker (a cluster is
                        N ``serve`` processes, or ``livebench`` in one);
- ``livebench``      -- push a Zipf workload through a localhost TCP
                        broker tree (:mod:`repro.rtnet`), write
                        ``BENCH_rtnet.json``, and optionally gate
                        against a committed baseline (``--check``).

Randomized commands share one ``--seed`` option (:func:`add_seed_option`)
so a single integer pins workload draws across ``bench``, ``chaos`` and
``metrics`` runs.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass(frozen=True)
class Command:
    """One CLI subcommand: its name, help line, args, and handler."""

    name: str
    help: str
    handler: Callable[[argparse.Namespace], int]
    configure: Callable[[argparse.ArgumentParser], None] | None = None


_REGISTRY: dict[str, Command] = {}


def register(entry: Command) -> Command:
    """Add *entry* to the subcommand registry (last writer wins)."""
    _REGISTRY[entry.name] = entry
    return entry


def command(
    name: str,
    help: str,  # noqa: A002 - mirrors argparse's keyword
    configure: Callable[[argparse.ArgumentParser], None] | None = None,
) -> Callable[[Callable[[argparse.Namespace], int]], Callable]:
    """Decorator form of :func:`register` for handler functions."""

    def decorate(
        handler: Callable[[argparse.Namespace], int]
    ) -> Callable[[argparse.Namespace], int]:
        register(Command(name, help, handler, configure))
        return handler

    return decorate


def commands() -> tuple[Command, ...]:
    """The registered subcommands, in registration order."""
    return tuple(_REGISTRY.values())


def add_seed_option(
    parser: argparse.ArgumentParser, default: int = 7
) -> None:
    """The uniform ``--seed`` option for randomized subcommands.

    Every command that draws randomness (workload sampling, fault
    schedules, Zipf topic popularity) takes its seed from here, so the
    same integer reproduces the same run everywhere.
    """
    parser.add_argument(
        "--seed", type=int, default=default,
        help=f"PRNG seed pinning every random draw (default: {default})",
    )


# -- demo ---------------------------------------------------------------------


@command("demo", "run the quickstart flow")
def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.api import connect
    from repro.siena import Event, Filter

    system = connect("cancerTrail", numeric={"age": 128})
    doctor = system.subscribe(
        "doctor", Filter.numeric_range("cancerTrail", "age", 21, 127)
    )
    outsider = system.subscribe(
        "outsider", Filter.numeric_range("cancerTrail", "age", 31, 127)
    )
    sealed = system.publisher("hospital").publish(
        Event(
            {"topic": "cancerTrail", "age": 25, "patientRecord": "rec-17"},
            publisher="hospital",
        ),
        secret_attributes={"patientRecord"},
    )
    print(f"event routable part : {dict(sealed.routable.attributes)}")
    print(f"doctor (age>20)     : {doctor.opened[0].event['patientRecord']!r}")
    print(f"outsider (age>30)   : "
          f"{outsider.opened[0] if outsider.opened else None}")
    return 0


# -- grant --------------------------------------------------------------------


def _grant_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topic", default="cancerTrail")
    parser.add_argument("--attribute", default="age")
    parser.add_argument("--range", type=int, default=128)
    parser.add_argument("low", type=int)
    parser.add_argument("high", type=int)


@command(
    "grant",
    "show the key material for a range subscription",
    configure=_grant_args,
)
def _cmd_grant(args: argparse.Namespace) -> int:
    from repro.core import KDC, CompositeKeySpace, NumericKeySpace
    from repro.siena import Filter

    kdc = KDC()
    kdc.register_topic(
        args.topic,
        CompositeKeySpace(
            {args.attribute: NumericKeySpace(args.attribute, args.range)}
        ),
    )
    grant = kdc.authorize(
        "cli-subscriber",
        Filter.numeric_range(args.topic, args.attribute, args.low, args.high),
    )
    print(f"subscription: {args.attribute} in [{args.low}, {args.high}] "
          f"on topic {args.topic!r} (range {args.range})")
    print(f"epoch {grant.epoch}, expires at t={grant.expires_at:.0f}s")
    for clause in grant.clauses:
        for component in clause.components:
            print(f"  element {str(component.element):>12}  "
                  f"key {component.key.hex()[:16]}…")
    print(f"total: {grant.key_count()} keys, {grant.wire_bytes()} bytes, "
          f"{grant.hash_operations} KDC hash ops")
    return 0


# -- calibrate ----------------------------------------------------------------


@command("calibrate", "measure crypto primitive costs on this host")
def _cmd_calibrate(_args: argparse.Namespace) -> int:
    from repro.harness.timing import measure_crypto_costs

    costs = measure_crypto_costs()
    for name, value in vars(costs).items():
        print(f"{name:>15}: {value * 1e6:8.3f} us")
    return 0


# -- experiment ---------------------------------------------------------------


def _experiment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "name", choices=["keys", "entropy", "construction", "cache"]
    )
    parser.add_argument("--events", type=int, default=4000)


@command(
    "experiment",
    "regenerate one experiment series",
    configure=_experiment_args,
)
def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness.reporting import format_table

    if args.name == "keys":
        from repro.harness.keymgmt import run_key_management

        rows = run_key_management([2, 4, 8, 16, 32])
        print(format_table(
            ["NS", "PSGuard keys/sub", "Group keys/sub"],
            [(r.num_subscribers, r.psguard_keys_per_subscriber,
              r.group_keys_per_subscriber) for r in rows],
            title="Figure 3: keys per subscriber",
        ))
    elif args.name == "entropy":
        from repro.routing.experiment import (
            RoutingExperimentConfig, sweep_ind_max,
        )

        results = sweep_ind_max(
            RoutingExperimentConfig(events=args.events)
        )
        print(format_table(
            ["ind_max", "S_app", "S_act", "S_max"],
            [(r.ind_max, r.s_app, r.s_act, r.s_max) for r in results],
            title="Figure 6: non-collusive apparent entropy (bits)",
        ))
    elif args.name == "construction":
        from repro.routing.experiment import construction_cost_curve

        print(format_table(
            ["ind_max", "normalized cost"],
            construction_cost_curve(),
            title="Figure 8: construction cost",
        ))
    elif args.name == "cache":
        from repro.harness.endtoend import measure_cache_effect

        rows = measure_cache_effect()
        print(format_table(
            ["cache KB", "pub H/event", "sub H/event", "hit rate"],
            [(r.cache_kb, r.publisher_hash_per_event,
              r.subscriber_hash_per_event, r.publisher_hit_rate)
             for r in rows],
            title="Figure 11: key-cache effect",
        ))
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.name)
    return 0


# -- topology -----------------------------------------------------------------


def _topology_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=63)
    parser.add_argument("--seed", type=int, default=7)


@command(
    "topology",
    "generate a topology and report RTT statistics",
    configure=_topology_args,
)
def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.topology import TransitStubTopology

    topology = TransitStubTopology(seed=args.seed)
    overlay = topology.sample_overlay(args.nodes)
    stats = topology.overlay_stats(overlay)
    print(f"{args.nodes}-node overlay on a transit-stub topology "
          f"(seed {args.seed}):")
    print(f"  RTT min  {stats.min_rtt * 1e3:6.1f} ms")
    print(f"  RTT max  {stats.max_rtt * 1e3:6.1f} ms")
    print(f"  RTT mean {stats.mean_rtt * 1e3:6.1f} ms")
    print(f"  RTT sd   {stats.std_rtt * 1e3:6.1f} ms")
    return 0


# -- verify -------------------------------------------------------------------


@command("verify", "fast self-check of the reproduction's headline claims")
def _cmd_verify(_args: argparse.Namespace) -> int:
    from repro.harness.verification import (
        format_verification,
        run_verification,
    )

    results = run_verification()
    print(format_verification(results))
    return 0 if all(result.passed for result in results) else 1


# -- chaos --------------------------------------------------------------------

#: The chaos scenario registry: name -> one-line description.  ``--list``
#: prints it; ``--scenario`` choices derive from it, so adding a
#: scenario means adding an entry here plus a branch in the handler.
CHAOS_SCENARIOS: dict[str, str] = {
    "overlay": "broker crashes + link loss: fire-and-forget vs the "
    "reliable at-least-once stack",
    "kdc": "key-service outage straddling an epoch boundary: replicated "
    "KDC failover and decrypt success",
    "recovery": "permanent broker kills + a partition: tree repair, "
    "durable journals, exactly-once delivery",
    "overload": "publisher storm at a multiple of sustainable rate: "
    "bounded queues, priority protection, graceful degradation, "
    "post-storm recovery",
    "rekey": "live membership churn over real sockets: epoch rollovers, "
    "in-band grant renewal, lazy revocation, mid-stream join/leave",
}


def _chaos_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", choices=["all", *CHAOS_SCENARIOS], default="all",
        help="overlay = broker-crash delivery experiments, "
        "kdc = key-service outage across an epoch boundary, "
        "recovery = permanent kills + partition with tree repair, "
        "durable journals and exactly-once delivery, "
        "overload = publisher storm against the flow-controlled overlay, "
        "rekey = live epoch rollover and membership churn over TCP",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list the chaos scenarios with descriptions and exit",
    )
    add_seed_option(parser)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--rate", type=float, default=40.0,
                        help="publications per second")
    parser.add_argument("--crash-prob", type=float, default=0.2,
                        help="per-broker crash probability")
    parser.add_argument("--crash-duration", type=float, default=0.5,
                        help="seconds a crashed broker stays down")
    parser.add_argument("--link-loss", type=float, default=0.05,
                        help="per-transmission link loss probability")
    parser.add_argument("--redundancy", type=int, default=2,
                        help="multipath redundancy k for the reliable run")
    parser.add_argument("--brokers", type=int, default=15,
                        help="tree overlay size")
    parser.add_argument("--epoch-length", type=float, default=2.0,
                        help="kdc scenario: topic epoch length in seconds")
    parser.add_argument("--kdc-replicas", type=int, default=3,
                        help="kdc scenario: replicas in the replicated run")
    parser.add_argument("--subscribers", type=int, default=8,
                        help="kdc scenario: subscriber count")
    parser.add_argument("--grace", type=float, default=1.0,
                        help="kdc scenario: post-expiry grace window")
    parser.add_argument("--outage", type=float, default=1.0,
                        help="kdc scenario: outage straddling the boundary")
    parser.add_argument("--storm-factor", type=float, default=4.0,
                        help="overload scenario: offered rate as a "
                        "multiple of broker capacity")
    parser.add_argument("--high-fraction", type=float, default=0.1,
                        help="overload scenario: fraction of the storm "
                        "published at high priority")
    parser.add_argument("--queue-capacity", type=int, default=32,
                        help="overload scenario: bounded queue depth")
    parser.add_argument("--shed-policy", default="drop-oldest",
                        choices=["drop-oldest", "drop-lowest-priority",
                                 "reject-new"],
                        help="overload scenario: load-shedding policy")
    parser.add_argument("--rollovers", type=int, default=3,
                        help="rekey scenario: live epoch boundaries to "
                        "cross (minimum 3)")
    parser.add_argument("--snapshot", metavar="PATH",
                        help="overload/rekey scenarios: write the run's "
                        "metrics snapshot (JSON) here")
    parser.add_argument(
        "--check", action="store_true",
        help="recovery/overload/rekey scenarios: fail unless the "
        "scenario's gates hold (recovery: delivery >= 99%%, zero "
        "surfaced duplicates, every permanent kill repaired; overload: "
        "bounded queues, >= 99%% high-priority delivery, graceful "
        "degradation, full post-storm recovery; rekey: >= 3 live "
        "rollovers, zero unauthorized post-revocation opens, >= 99%% "
        "survivor delivery)",
    )


@command(
    "chaos",
    "measure delivery under injected broker crashes and link loss",
    configure=_chaos_args,
)
def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.list:
        width = max(len(name) for name in CHAOS_SCENARIOS)
        for name, description in CHAOS_SCENARIOS.items():
            print(f"{name:<{width}}  {description}")
        return 0
    sections = []
    gate_problems: list[str] = []
    try:
        if args.scenario in ("all", "overlay"):
            from repro.harness.chaos import (
                ChaosConfig,
                format_chaos_report,
                run_chaos,
            )

            config = ChaosConfig(
                seed=args.seed,
                duration=args.duration,
                publish_rate=args.rate,
                crash_probability=args.crash_prob,
                crash_duration=args.crash_duration,
                link_loss=args.link_loss,
                redundancy=args.redundancy,
                num_brokers=args.brokers,
            )
            sections.append(format_chaos_report(run_chaos(config)))
        if args.scenario in ("all", "kdc"):
            from repro.harness.kdcchaos import (
                KdcChaosConfig,
                format_kdc_chaos_report,
                run_kdc_chaos,
            )

            kdc_config = KdcChaosConfig(
                seed=args.seed,
                duration=args.duration,
                publish_rate=args.rate,
                epoch_length=args.epoch_length,
                replicas=args.kdc_replicas,
                subscribers=args.subscribers,
                grace_period=args.grace,
                outage_duration=args.outage,
            )
            sections.append(
                format_kdc_chaos_report(run_kdc_chaos(kdc_config))
            )
        if args.scenario in ("all", "recovery"):
            from repro.harness.recovery import (
                RecoveryConfig,
                check_recovery,
                format_recovery_report,
                run_recovery,
            )

            recovery_config = RecoveryConfig(
                seed=args.seed,
                duration=args.duration,
                publish_rate=args.rate,
                num_brokers=args.brokers,
                link_loss=args.link_loss,
            )
            recovery_result = run_recovery(recovery_config)
            sections.append(
                format_recovery_report(recovery_config, recovery_result)
            )
            if args.check:
                gate_problems.extend(
                    f"recovery gate violated: {problem}"
                    for problem in check_recovery(
                        recovery_config, recovery_result
                    )
                )
        if args.scenario in ("all", "overload"):
            import json

            from repro.harness.overload import (
                OverloadConfig,
                check_overload,
                format_overload_report,
                run_overload,
            )

            overload_config = OverloadConfig(
                seed=args.seed,
                storm_factor=args.storm_factor,
                high_fraction=args.high_fraction,
                queue_capacity=args.queue_capacity,
                shed_policy=args.shed_policy,
            )
            overload_result = run_overload(overload_config)
            sections.append(
                format_overload_report(overload_config, overload_result)
            )
            if args.snapshot:
                with open(args.snapshot, "w", encoding="utf-8") as handle:
                    json.dump(
                        overload_result.obs.snapshot(), handle,
                        indent=2, sort_keys=True,
                    )
                    handle.write("\n")
                print(f"wrote metrics snapshot to {args.snapshot}",
                      file=sys.stderr)
            if args.check:
                gate_problems.extend(
                    f"overload gate violated: {problem}"
                    for problem in check_overload(
                        overload_config, overload_result
                    )
                )
        if args.scenario in ("all", "rekey"):
            import json

            from repro.harness.rekey import (
                RekeyChaosConfig,
                check_rekey,
                format_rekey_report,
                run_rekey_chaos,
            )

            rekey_config = RekeyChaosConfig(
                seed=args.seed,
                rollovers=args.rollovers,
                grace=args.grace,
            )
            rekey_result = run_rekey_chaos(rekey_config)
            sections.append(
                format_rekey_report(rekey_config, rekey_result)
            )
            if args.snapshot and args.scenario == "rekey":
                with open(args.snapshot, "w", encoding="utf-8") as handle:
                    json.dump(
                        rekey_result.registry.snapshot(), handle,
                        indent=2, sort_keys=True,
                    )
                    handle.write("\n")
                print(f"wrote metrics snapshot to {args.snapshot}",
                      file=sys.stderr)
            if args.check:
                gate_problems.extend(
                    f"rekey gate violated: {problem}"
                    for problem in check_rekey(rekey_config, rekey_result)
                )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print("\n\n".join(sections))
    for problem in gate_problems:
        print(problem, file=sys.stderr)
    if gate_problems:
        return 1
    if args.check:
        print("chaos gates passed", file=sys.stderr)
    return 0


# -- metrics ------------------------------------------------------------------


def _metrics_args(parser: argparse.ArgumentParser) -> None:
    add_seed_option(parser)
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--rate", type=float, default=30.0,
                        help="publications per second")
    parser.add_argument("--brokers", type=int, default=7,
                        help="tree overlay size")
    parser.add_argument("--link-loss", type=float, default=0.05,
                        help="per-transmission link loss probability")
    parser.add_argument(
        "--format", choices=["json", "prometheus"], default="json",
        help="snapshot rendering (default: json)",
    )
    parser.add_argument("--output", metavar="PATH",
                        help="write the snapshot here instead of stdout")
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless the tracing invariants hold "
        "(published == traced, zero dropped spans)",
    )


@command(
    "metrics",
    "run an instrumented workload and export a metrics snapshot",
    configure=_metrics_args,
)
def _cmd_metrics(args: argparse.Namespace) -> int:
    import json
    import math

    from repro.harness.metricsrun import (
        MetricsRunConfig,
        check_invariants,
        run_metrics_workload,
    )

    config = MetricsRunConfig(
        seed=args.seed,
        duration=args.duration,
        publish_rate=args.rate,
        num_brokers=args.brokers,
        link_loss=args.link_loss,
    )
    result = run_metrics_workload(config)
    if args.format == "prometheus":
        rendered = result.obs.to_prometheus()
    else:
        def scrub(value):
            if isinstance(value, float) and not math.isfinite(value):
                return None
            if isinstance(value, dict):
                return {key: scrub(item) for key, item in value.items()}
            if isinstance(value, list):
                return [scrub(item) for item in value]
            return value

        rendered = json.dumps(
            scrub(result.snapshot()), indent=2, sort_keys=True
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.format} snapshot to {args.output}")
    else:
        print(rendered)
    summary = result.obs.tracer.summary()
    print(
        f"published {result.published} events, delivered "
        f"{result.delivered}/{result.expected}; "
        f"{summary['spans_recorded']} spans across "
        f"{summary['traces_started']} traces "
        f"({summary['total_retransmits']} retransmits, "
        f"{summary['total_drops']} drops)",
        file=sys.stderr,
    )
    if args.check:
        problems = check_invariants(result)
        for problem in problems:
            print(f"invariant violated: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("all tracing invariants hold", file=sys.stderr)
    return 0


# -- bench --------------------------------------------------------------------


def _bench_args(parser: argparse.ArgumentParser) -> None:
    add_seed_option(parser)
    parser.add_argument(
        "--suite", choices=["engine", "overload", "parallel", "rekey"],
        default="engine",
        help="engine: batched-dissemination throughput (default); "
        "overload: sustained-storm delivery/shedding sweep; "
        "parallel: sharded-matcher worker-ladder speedups; "
        "rekey: live membership-churn ladder over epoch rollovers",
    )
    parser.add_argument("--events", type=int, default=400,
                        help="publications per measured path")
    parser.add_argument("--brokers", type=int, default=15,
                        help="tree overlay size")
    parser.add_argument("--arity", type=int, default=2,
                        help="broker tree arity")
    parser.add_argument("--subscribers", type=int, default=16)
    parser.add_argument("--topics", type=int, default=32,
                        help="topic population (multiple of 4)")
    parser.add_argument("--topics-per-subscriber", type=int, default=8)
    parser.add_argument("--batch-size", type=int, default=32,
                        help="engine batch size for the headline numbers")
    parser.add_argument(
        "--sweep", default="1,8,32,128", metavar="SIZES",
        help="comma-separated batch sizes for the sweep section",
    )
    parser.add_argument(
        "--workers", default="1,2,4,8", metavar="COUNTS",
        help="comma-separated worker ladder for --suite parallel",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=64,
        help="events per parallel matcher task (--suite parallel)",
    )
    parser.add_argument(
        "--rungs", default="1,3,6", metavar="SURVIVORS",
        help="comma-separated survivor populations for --suite rekey",
    )
    parser.add_argument("--output", metavar="PATH", default=None,
                        help="machine-readable report destination "
                        "(default: BENCH_<suite>.json)")
    parser.add_argument(
        "--check", action="store_true",
        help="gate this run against a committed baseline report",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline report for --check "
        "(default: benchmarks/baselines/BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression before --check fails",
    )


def _cmd_bench_overload(args: argparse.Namespace) -> int:
    """The ``--suite overload`` leg: sustained-storm delivery sweep."""
    from repro.bench import (
        OverloadBenchConfig,
        check_overload_regression,
        load_report,
        render_overload_report,
        run_overload_bench,
        write_overload_report,
    )

    output = args.output or "BENCH_overload.json"
    baseline_path = (
        args.baseline or "benchmarks/baselines/BENCH_overload.json"
    )
    try:
        report = run_overload_bench(OverloadBenchConfig(seed=args.seed))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    write_overload_report(report, output)
    print(render_overload_report(report))
    print(f"wrote report to {output}", file=sys.stderr)
    if args.check:
        try:
            baseline = load_report(baseline_path)
        except OSError as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        problems = check_overload_regression(
            report, baseline, args.tolerance
        )
        for problem in problems:
            print(f"regression: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("bench check passed: within tolerance of the baseline",
              file=sys.stderr)
    return 0


def _cmd_bench_parallel(args: argparse.Namespace) -> int:
    """The ``--suite parallel`` leg: worker-ladder speedups."""
    from repro.bench import (
        ParallelBenchConfig,
        check_parallel_regression,
        load_report,
        render_parallel_report,
        run_parallel_bench,
        write_report,
    )

    output = args.output or "BENCH_parallel.json"
    baseline_path = (
        args.baseline or "benchmarks/baselines/BENCH_parallel.json"
    )
    try:
        ladder = tuple(
            int(workers)
            for workers in str(args.workers).split(",")
            if workers.strip()
        )
        config = ParallelBenchConfig(
            seed=args.seed,
            events=args.events,
            num_brokers=args.brokers,
            arity=args.arity,
            num_subscribers=args.subscribers,
            num_topics=args.topics,
            topics_per_subscriber=args.topics_per_subscriber,
            batch_size=args.batch_size,
            chunk_size=args.chunk_size,
            worker_ladder=ladder,
        )
        report = run_parallel_bench(config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    write_report(report, output)
    print(render_parallel_report(report))
    print(f"wrote report to {output}", file=sys.stderr)
    if not report["equivalence"]["holds"]:
        print("error: parallel deliveries diverge from the serial path",
              file=sys.stderr)
        return 1
    if args.check:
        try:
            baseline = load_report(baseline_path)
        except OSError as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        problems = check_parallel_regression(
            report, baseline, args.tolerance
        )
        for problem in problems:
            print(f"regression: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("bench check passed: within tolerance of the baseline",
              file=sys.stderr)
    return 0


def _cmd_bench_rekey(args: argparse.Namespace) -> int:
    """The ``--suite rekey`` leg: membership-churn ladder."""
    from repro.bench import (
        RekeyBenchConfig,
        check_rekey_regression,
        load_report,
        render_rekey_report,
        run_rekey_bench,
        write_report,
    )

    output = args.output or "BENCH_rekey.json"
    baseline_path = (
        args.baseline or "benchmarks/baselines/BENCH_rekey.json"
    )
    try:
        rungs = tuple(
            int(survivors)
            for survivors in str(args.rungs).split(",")
            if survivors.strip()
        )
        report = run_rekey_bench(
            RekeyBenchConfig(seed=args.seed, rungs=rungs)
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    write_report(report, output)
    print(render_rekey_report(report))
    print(f"wrote report to {output}", file=sys.stderr)
    failed = [
        problem for rung in report["rungs"] for problem in rung["gates"]
    ]
    if failed:
        for problem in failed:
            print(f"error: churn gate violated: {problem}", file=sys.stderr)
        return 1
    if args.check:
        try:
            baseline = load_report(baseline_path)
        except OSError as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        problems = check_rekey_regression(report, baseline, args.tolerance)
        for problem in problems:
            print(f"regression: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("bench check passed: within tolerance of the baseline",
              file=sys.stderr)
    return 0


@command(
    "bench",
    "benchmark the batched engine against the per-event path",
    configure=_bench_args,
)
def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        BenchConfig,
        check_regression,
        load_report,
        render_report,
        run_bench,
        write_report,
    )

    if args.suite == "overload":
        return _cmd_bench_overload(args)
    if args.suite == "parallel":
        return _cmd_bench_parallel(args)
    if args.suite == "rekey":
        return _cmd_bench_rekey(args)
    output = args.output or "BENCH_engine.json"
    baseline_path = (
        args.baseline or "benchmarks/baselines/BENCH_engine.json"
    )
    try:
        sweep = tuple(
            int(size) for size in str(args.sweep).split(",") if size.strip()
        )
        config = BenchConfig(
            seed=args.seed,
            events=args.events,
            num_brokers=args.brokers,
            arity=args.arity,
            num_subscribers=args.subscribers,
            num_topics=args.topics,
            topics_per_subscriber=args.topics_per_subscriber,
            batch_size=args.batch_size,
            batch_sweep=sweep,
        )
        report = run_bench(config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    write_report(report, output)
    print(render_report(report))
    print(f"wrote report to {output}", file=sys.stderr)
    if not report["equivalence"]["holds"]:
        print("error: engine deliveries diverge from the per-event path",
              file=sys.stderr)
        return 1
    if args.check:
        try:
            baseline = load_report(baseline_path)
        except OSError as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        problems = check_regression(report, baseline, args.tolerance)
        for problem in problems:
            print(f"regression: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("bench check passed: within tolerance of the baseline",
              file=sys.stderr)
    return 0


# -- serve --------------------------------------------------------------------


def _serve_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--broker-id", default="b0",
                        help="this broker's overlay identifier")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--parent", metavar="HOST:PORT", default=None,
                        help="dial this parent broker after binding")
    parser.add_argument("--egress-capacity", type=int, default=512,
                        help="per-peer bounded egress queue depth")


@command(
    "serve",
    "run one rtnet broker server on a TCP socket",
    configure=_serve_args,
)
def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.rtnet import BrokerServer

    async def serve() -> None:
        server = BrokerServer(
            args.broker_id,
            host=args.host,
            port=args.port,
            egress_capacity=args.egress_capacity,
        )
        await server.start()
        print(f"broker {args.broker_id} listening on "
              f"{server.host}:{server.port}", file=sys.stderr)
        if args.parent:
            host, _, port = args.parent.rpartition(":")
            await server.connect_parent(host, int(port))
            print(f"attached to parent at {args.parent}", file=sys.stderr)
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


# -- livebench ----------------------------------------------------------------


def _livebench_args(parser: argparse.ArgumentParser) -> None:
    add_seed_option(parser)
    parser.add_argument("--events", type=int, default=200,
                        help="publications pushed through the cluster")
    parser.add_argument("--brokers", type=int, default=7,
                        help="loopback TCP tree size")
    parser.add_argument("--arity", type=int, default=2)
    parser.add_argument("--subscribers", type=int, default=8)
    parser.add_argument("--topics", type=int, default=16,
                        help="topic population (multiple of 4)")
    parser.add_argument("--topics-per-subscriber", type=int, default=4)
    parser.add_argument("--output", metavar="PATH",
                        default="BENCH_rtnet.json",
                        help="machine-readable report destination")
    parser.add_argument(
        "--check", action="store_true",
        help="gate this run against a committed baseline report",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        default="benchmarks/baselines/BENCH_rtnet.json",
        help="baseline report for --check",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression before --check fails",
    )


@command(
    "livebench",
    "benchmark dissemination over a localhost TCP broker tree",
    configure=_livebench_args,
)
def _cmd_livebench(args: argparse.Namespace) -> int:
    from repro.bench import (
        RtnetBenchConfig,
        check_rtnet_regression,
        load_report,
        render_rtnet_report,
        run_rtnet_bench,
        write_report,
    )

    try:
        config = RtnetBenchConfig(
            seed=args.seed,
            events=args.events,
            num_brokers=args.brokers,
            arity=args.arity,
            num_subscribers=args.subscribers,
            num_topics=args.topics,
            topics_per_subscriber=args.topics_per_subscriber,
        )
        report = run_rtnet_bench(config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    write_report(report, args.output)
    print(render_rtnet_report(report))
    print(f"wrote report to {args.output}", file=sys.stderr)
    if not report["equivalence"]["holds"]:
        print("error: socket-path deliveries diverge from the in-process "
              "reference", file=sys.stderr)
        return 1
    if args.check:
        try:
            baseline = load_report(args.baseline)
        except OSError as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        problems = check_rtnet_regression(report, baseline, args.tolerance)
        for problem in problems:
            print(f"regression: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("livebench check passed: within tolerance of the baseline",
              file=sys.stderr)
    return 0


# -- parser / entry point -----------------------------------------------------


def _distribution_version() -> str:
    """The running build's version, for ``repro --version``."""
    from importlib import metadata

    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:
        # Source checkouts run uninstalled (PYTHONPATH=src); fall back
        # to the package's own notion of its version.
        import repro

        return getattr(repro, "__version__", "0.0.0+unknown")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser, built from the command registry."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PSGuard: secure event dissemination in pub-sub "
        "networks (ICDCS 2007 reproduction)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {_distribution_version()}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for entry in commands():
        subparser = subparsers.add_parser(entry.name, help=entry.help)
        if entry.configure is not None:
            entry.configure(subparser)
        subparser.set_defaults(handler=entry.handler)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
