"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user one entry point to poke at the system without
writing code:

- ``demo``           -- the quickstart medical-records flow;
- ``grant``          -- show the key material the KDC issues for a range
                        subscription (cover elements, key count, bytes);
- ``calibrate``      -- measure the crypto primitive costs on this host;
- ``experiment``     -- regenerate a table/figure series (keys, entropy,
                        construction-cost, cache);
- ``topology``       -- generate a transit-stub topology and report its
                        overlay RTT statistics;
- ``chaos``          -- run pub-sub workloads under injected broker
                        crashes and link loss, comparing fire-and-forget
                        against reliable at-least-once delivery; the
                        ``kdc`` scenario takes KDC replicas down across
                        an epoch boundary and measures decrypt success.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.core import (
        KDC, CompositeKeySpace, NumericKeySpace, Publisher, Subscriber,
    )
    from repro.siena import Event, Filter

    kdc = KDC()
    kdc.register_topic(
        "cancerTrail",
        CompositeKeySpace({"age": NumericKeySpace("age", 128)}),
    )
    doctor = Subscriber("doctor")
    doctor.add_grant(
        kdc.authorize(
            "doctor", Filter.numeric_range("cancerTrail", "age", 21, 127)
        )
    )
    outsider = Subscriber("outsider")
    outsider.add_grant(
        kdc.authorize(
            "outsider", Filter.numeric_range("cancerTrail", "age", 31, 127)
        )
    )
    publisher = Publisher("hospital", kdc)
    sealed = publisher.publish(
        Event(
            {"topic": "cancerTrail", "age": 25, "patientRecord": "rec-17"},
            publisher="hospital",
        ),
        secret_attributes={"patientRecord"},
    )
    lookup = lambda t: kdc.config_for(t).schema  # noqa: E731
    opened = doctor.receive(sealed, lookup)
    denied = outsider.receive(sealed, lookup)
    print(f"event routable part : {dict(sealed.routable.attributes)}")
    print(f"doctor (age>20)     : {opened.event['patientRecord']!r}")
    print(f"outsider (age>30)   : {denied}")
    return 0


def _cmd_grant(args: argparse.Namespace) -> int:
    from repro.core import KDC, CompositeKeySpace, NumericKeySpace
    from repro.siena import Filter

    kdc = KDC()
    kdc.register_topic(
        args.topic,
        CompositeKeySpace(
            {args.attribute: NumericKeySpace(args.attribute, args.range)}
        ),
    )
    grant = kdc.authorize(
        "cli-subscriber",
        Filter.numeric_range(args.topic, args.attribute, args.low, args.high),
    )
    print(f"subscription: {args.attribute} in [{args.low}, {args.high}] "
          f"on topic {args.topic!r} (range {args.range})")
    print(f"epoch {grant.epoch}, expires at t={grant.expires_at:.0f}s")
    for clause in grant.clauses:
        for component in clause.components:
            print(f"  element {str(component.element):>12}  "
                  f"key {component.key.hex()[:16]}…")
    print(f"total: {grant.key_count()} keys, {grant.wire_bytes()} bytes, "
          f"{grant.hash_operations} KDC hash ops")
    return 0


def _cmd_calibrate(_args: argparse.Namespace) -> int:
    from repro.harness.timing import measure_crypto_costs

    costs = measure_crypto_costs()
    for name, value in vars(costs).items():
        print(f"{name:>15}: {value * 1e6:8.3f} us")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness.reporting import format_table

    if args.name == "keys":
        from repro.harness.keymgmt import run_key_management

        rows = run_key_management([2, 4, 8, 16, 32])
        print(format_table(
            ["NS", "PSGuard keys/sub", "Group keys/sub"],
            [(r.num_subscribers, r.psguard_keys_per_subscriber,
              r.group_keys_per_subscriber) for r in rows],
            title="Figure 3: keys per subscriber",
        ))
    elif args.name == "entropy":
        from repro.routing.experiment import (
            RoutingExperimentConfig, sweep_ind_max,
        )

        results = sweep_ind_max(
            RoutingExperimentConfig(events=args.events)
        )
        print(format_table(
            ["ind_max", "S_app", "S_act", "S_max"],
            [(r.ind_max, r.s_app, r.s_act, r.s_max) for r in results],
            title="Figure 6: non-collusive apparent entropy (bits)",
        ))
    elif args.name == "construction":
        from repro.routing.experiment import construction_cost_curve

        print(format_table(
            ["ind_max", "normalized cost"],
            construction_cost_curve(),
            title="Figure 8: construction cost",
        ))
    elif args.name == "cache":
        from repro.harness.endtoend import measure_cache_effect

        rows = measure_cache_effect()
        print(format_table(
            ["cache KB", "pub H/event", "sub H/event", "hit rate"],
            [(r.cache_kb, r.publisher_hash_per_event,
              r.subscriber_hash_per_event, r.publisher_hit_rate)
             for r in rows],
            title="Figure 11: key-cache effect",
        ))
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.name)
    return 0


def _cmd_verify(_args: argparse.Namespace) -> int:
    from repro.harness.verification import (
        format_verification,
        run_verification,
    )

    results = run_verification()
    print(format_verification(results))
    return 0 if all(result.passed for result in results) else 1


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.topology import TransitStubTopology

    topology = TransitStubTopology(seed=args.seed)
    overlay = topology.sample_overlay(args.nodes)
    stats = topology.overlay_stats(overlay)
    print(f"{args.nodes}-node overlay on a transit-stub topology "
          f"(seed {args.seed}):")
    print(f"  RTT min  {stats.min_rtt * 1e3:6.1f} ms")
    print(f"  RTT max  {stats.max_rtt * 1e3:6.1f} ms")
    print(f"  RTT mean {stats.mean_rtt * 1e3:6.1f} ms")
    print(f"  RTT sd   {stats.std_rtt * 1e3:6.1f} ms")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    sections = []
    try:
        if args.scenario in ("all", "overlay"):
            from repro.harness.chaos import (
                ChaosConfig,
                format_chaos_report,
                run_chaos,
            )

            config = ChaosConfig(
                seed=args.seed,
                duration=args.duration,
                publish_rate=args.rate,
                crash_probability=args.crash_prob,
                crash_duration=args.crash_duration,
                link_loss=args.link_loss,
                redundancy=args.redundancy,
                num_brokers=args.brokers,
            )
            sections.append(format_chaos_report(run_chaos(config)))
        if args.scenario in ("all", "kdc"):
            from repro.harness.kdcchaos import (
                KdcChaosConfig,
                format_kdc_chaos_report,
                run_kdc_chaos,
            )

            kdc_config = KdcChaosConfig(
                seed=args.seed,
                duration=args.duration,
                publish_rate=args.rate,
                epoch_length=args.epoch_length,
                replicas=args.kdc_replicas,
                subscribers=args.subscribers,
                grace_period=args.grace,
                outage_duration=args.outage,
            )
            sections.append(
                format_kdc_chaos_report(run_kdc_chaos(kdc_config))
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print("\n\n".join(sections))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PSGuard: secure event dissemination in pub-sub "
        "networks (ICDCS 2007 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="run the quickstart flow")
    demo.set_defaults(handler=_cmd_demo)

    grant = commands.add_parser(
        "grant", help="show the key material for a range subscription"
    )
    grant.add_argument("--topic", default="cancerTrail")
    grant.add_argument("--attribute", default="age")
    grant.add_argument("--range", type=int, default=128)
    grant.add_argument("low", type=int)
    grant.add_argument("high", type=int)
    grant.set_defaults(handler=_cmd_grant)

    calibrate = commands.add_parser(
        "calibrate", help="measure crypto primitive costs on this host"
    )
    calibrate.set_defaults(handler=_cmd_calibrate)

    experiment = commands.add_parser(
        "experiment", help="regenerate one experiment series"
    )
    experiment.add_argument(
        "name", choices=["keys", "entropy", "construction", "cache"]
    )
    experiment.add_argument("--events", type=int, default=4000)
    experiment.set_defaults(handler=_cmd_experiment)

    topology = commands.add_parser(
        "topology", help="generate a topology and report RTT statistics"
    )
    topology.add_argument("--nodes", type=int, default=63)
    topology.add_argument("--seed", type=int, default=7)
    topology.set_defaults(handler=_cmd_topology)

    verify = commands.add_parser(
        "verify",
        help="fast self-check of the reproduction's headline claims",
    )
    verify.set_defaults(handler=_cmd_verify)

    chaos = commands.add_parser(
        "chaos",
        help="measure delivery under injected broker crashes and link loss",
    )
    chaos.add_argument(
        "--scenario", choices=["all", "overlay", "kdc"], default="all",
        help="overlay = broker-crash delivery experiments, "
        "kdc = key-service outage across an epoch boundary",
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--duration", type=float, default=5.0)
    chaos.add_argument("--rate", type=float, default=40.0,
                       help="publications per second")
    chaos.add_argument("--crash-prob", type=float, default=0.2,
                       help="per-broker crash probability")
    chaos.add_argument("--crash-duration", type=float, default=0.5,
                       help="seconds a crashed broker stays down")
    chaos.add_argument("--link-loss", type=float, default=0.05,
                       help="per-transmission link loss probability")
    chaos.add_argument("--redundancy", type=int, default=2,
                       help="multipath redundancy k for the reliable run")
    chaos.add_argument("--brokers", type=int, default=15,
                       help="tree overlay size")
    chaos.add_argument("--epoch-length", type=float, default=2.0,
                       help="kdc scenario: topic epoch length in seconds")
    chaos.add_argument("--kdc-replicas", type=int, default=3,
                       help="kdc scenario: replicas in the replicated run")
    chaos.add_argument("--subscribers", type=int, default=8,
                       help="kdc scenario: subscriber count")
    chaos.add_argument("--grace", type=float, default=1.0,
                       help="kdc scenario: post-expiry grace window")
    chaos.add_argument("--outage", type=float, default=1.0,
                       help="kdc scenario: outage straddling the boundary")
    chaos.set_defaults(handler=_cmd_chaos)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
