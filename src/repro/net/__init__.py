"""Discrete-event network simulation substrate.

The paper's evaluation ran on a 64-CPU testbed with WAN delays replayed
from a GT-ITM topology (Section 5.2).  This package replaces that testbed
with a discrete-event simulator:

- :mod:`repro.net.sim` -- the virtual clock and event loop;
- :mod:`repro.net.node` -- single-server FIFO processing nodes (broker
  CPUs) with queue-growth saturation detection matching the paper's
  throughput methodology;
- :mod:`repro.net.links` -- fixed-latency links;
- :mod:`repro.net.simnet` -- a timed broker overlay combining the Siena
  routing core with nodes and links, optionally with per-hop acks,
  retries, and a heartbeat failure detector (at-least-once delivery);
- :mod:`repro.net.faults` -- seeded fault plans (broker crashes, lossy
  and partitioned links, latency spikes) replayed deterministically
  against the simulator.
"""

from repro.net.faults import (
    ANY,
    BrokerCrash,
    BrokerSlowdown,
    FaultInjector,
    FaultPlan,
    LinkFault,
    PartitionFault,
)
from repro.net.links import Link
from repro.net.node import ProcessingNode
from repro.net.service import ServiceNetwork, ServiceStats
from repro.net.sim import Simulator
from repro.net.simnet import (
    ReliabilityStats,
    RetryPolicy,
    SimulatedPubSub,
    TimedBrokerTree,
)

__all__ = [
    "ANY",
    "BrokerCrash",
    "BrokerSlowdown",
    "FaultInjector",
    "FaultPlan",
    "Link",
    "LinkFault",
    "PartitionFault",
    "ProcessingNode",
    "ReliabilityStats",
    "RetryPolicy",
    "ServiceNetwork",
    "ServiceStats",
    "SimulatedPubSub",
    "Simulator",
    "TimedBrokerTree",
]
