"""Single-server FIFO processing nodes.

Each broker's CPU is modeled as a work-conserving single server: a message
arriving at virtual time ``t`` with service cost ``c`` completes at
``max(t, server_free) + c``.  The node tracks its backlog so the harness
can apply the paper's saturation criterion -- *"if at any node the number
of outstanding publications monotonically increased for five consecutive
observations, the node is saturated"* (Section 5.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.net.sim import Simulator


@dataclass
class NodeStats:
    """Load counters for one processing node."""

    messages_processed: int = 0
    busy_time: float = 0.0
    work_submitted: float = 0.0
    peak_backlog: int = 0
    backlog_samples: list[int] = field(default_factory=list)


class ProcessingNode:
    """A broker CPU: FIFO queue plus a deterministic service time."""

    def __init__(self, sim: Simulator, node_id: object = None):
        self.sim = sim
        self.node_id = node_id
        self._free_at = 0.0
        self.outstanding = 0
        self.stats = NodeStats()

    def submit(self, cost: float, on_done: Callable[[], None]) -> float:
        """Enqueue work costing *cost* seconds; fire *on_done* at completion.

        Returns the completion time.
        """
        if cost < 0:
            raise ValueError(f"negative service cost {cost}")
        start = max(self.sim.now, self._free_at)
        finish = start + cost
        self._free_at = finish
        self.outstanding += 1
        self.stats.work_submitted += cost
        self.stats.peak_backlog = max(self.stats.peak_backlog, self.outstanding)

        def complete() -> None:
            self.outstanding -= 1
            self.stats.messages_processed += 1
            self.stats.busy_time += cost
            on_done()

        self.sim.schedule(finish - self.sim.now, complete)
        return finish

    def sample_backlog(self) -> int:
        """Record and return the current backlog (for saturation checks)."""
        self.stats.backlog_samples.append(self.outstanding)
        return self.outstanding

    def is_saturating(self, window: int = 5) -> bool:
        """The paper's criterion: backlog strictly rose *window* times in a row."""
        samples = self.stats.backlog_samples
        if len(samples) < window + 1:
            return False
        recent = samples[-(window + 1):]
        return all(b > a for a, b in zip(recent, recent[1:]))

    def was_saturating(self, window: int = 5) -> bool:
        """Whether the backlog rose *window* consecutive samples at any point.

        The live :meth:`is_saturating` misses overloads that end before the
        measurement does (the queue drains after publishing stops), so this
        scans the whole history; delivery fan-out makes raw backlogs noisy,
        so the test runs on a moving average of width *window*.
        """
        samples = self.stats.backlog_samples
        if len(samples) < 2 * window:
            return False
        smoothed = [
            sum(samples[i: i + window]) / window
            for i in range(len(samples) - window + 1)
        ]
        run_length = 0
        run_start_value = smoothed[0]
        for index, (previous, current) in enumerate(
            zip(smoothed, smoothed[1:])
        ):
            if current > previous:
                if run_length == 0:
                    run_start_value = previous
                run_length += 1
            else:
                run_length = 0
            # A transient burst also yields a short monotone ramp after
            # smoothing, so demand a material rise, not just monotonicity.
            if run_length >= window and current - run_start_value >= window:
                return True
        return False

    def demand_exceeds(self, duration: float, slack: float = 1.02) -> bool:
        """Whether submitted work exceeds *duration* (offered load > 1).

        Exact saturation test for a deterministic single-server queue,
        complementing the paper's backlog-growth observation.
        """
        return self.stats.work_submitted > duration * slack

    def utilization(self, elapsed: float) -> float:
        """Fraction of *elapsed* this node spent busy."""
        return self.stats.busy_time / elapsed if elapsed > 0 else 0.0
